//! Seeded random generator of well-typed IR programs.
//!
//! Programs are drawn from a grammar that covers the paper's host and
//! kernel shapes — data regions, update sandwiches, BFS-style
//! `WhileFlag` countdowns, triangular nests, CAPS-shaped `reduction`
//! kernels, hand-written grouped (OpenCL-style) bodies, region
//! reductions, atomics — while staying inside the envelope where the
//! reference oracle and every compiler lowering are *bitwise*
//! comparable:
//!
//! * **Type-directed expressions.** Float expressions never have
//!   integer-constant operands and never use the literals `0.0`/`1.0`
//!   in value positions, so `simplify`'s identity and reassociation
//!   folds (`x+0→x`, `(a+c1)+c2→a+c`) only ever fire on integer
//!   subtrees, where they are value-exact. Integers reach float
//!   context only through an explicit `Cast(F32, ·)`, which folds
//!   exactly.
//! * **Integer-valued reduction inputs.** Arrays feeding `reduction`
//!   kernels and grouped tree sums hold small positive integers, so
//!   f32 sums stay below 2^24 and any re-association (tree lowering,
//!   per-lane partials) is bitwise-exact — and the CAPS
//!   dropped-phases bug still produces a *nonzero* observable error.
//! * **Provably in-bounds indices.** Index expressions come from a
//!   per-length grammar (`i`, `i*n+j`, `(i+c)%n`, `min(i+c,n-1)`,
//!   small constants, loads from an index array valued `0..n-1`).
//! * **Flat-equivalent data movement.** Kernels never write `copyin`
//!   arrays, data regions only list `In`/`InOut` arrays, host stores
//!   happen outside regions, and `update` sandwiches only wrap
//!   plain-affine kernels no compiler personality can demote to a
//!   host fallback — so the simulator's transfer machinery is
//!   exercised without ever changing observable values.
//!
//! Every emitted program is gated by `paccport_ir::validate`; the
//! generator retries (deterministically) on the rare invalid draw.

use crate::rng::Rng;
use paccport_devsim::Buffer;
use paccport_ir::builder::ProgramBuilder;
use paccport_ir::expr::{Expr, SpecialVar};
use paccport_ir::kernel::{
    AccDeviceType, DeviceTypeClause, GroupedBody, Kernel, KernelBody, LoopClauses, ParallelLoop,
    ReduceOp, Reduction, RegionReduction,
};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{ArrayId, Intent, LocalArrayDecl, MemSpace, ParamId, Scalar, VarId};
use paccport_ir::{
    assign, for_, if_, if_else, ld, ld_local, let_, st, st_local, Dir, HostStmt, Program, E,
};

/// One generated conformance test case: a program plus the concrete
/// parameter values and input buffers it runs with.
#[derive(Debug, Clone)]
pub struct Case {
    pub seed: u64,
    pub index: u64,
    pub program: Program,
    pub params: Vec<(String, f64)>,
    pub inputs: Vec<(String, Buffer)>,
}

/// Generate case `index` of the stream for `seed`. Deterministic: the
/// same `(seed, index)` always yields the same case, independent of
/// any other case.
pub fn generate(seed: u64, index: u64) -> Case {
    for attempt in 0u64..100 {
        let rng = Rng::for_index(seed ^ attempt.wrapping_mul(0xD1B5_4A32_D192_ED03), index);
        let case = Gen::new(rng, seed, index).build();
        if paccport_ir::validate(&case.program).is_ok() {
            return case;
        }
    }
    panic!("generator failed to produce a valid program for seed={seed}, index={index}");
}

#[derive(Clone, Copy, PartialEq)]
enum LenKind {
    /// Length `n`.
    N,
    /// Length `n*n`.
    NN,
    /// Length 1.
    One,
}

#[derive(Clone)]
struct ArrInfo {
    id: ArrayId,
    name: &'static str,
    elem: Scalar,
    kind: LenKind,
    intent: Intent,
}

impl ArrInfo {
    fn writable(&self) -> bool {
        self.intent != Intent::In
    }
}

/// Loop/local variables visible to expression generation at one point
/// of a kernel body.
#[derive(Clone, Default)]
struct Env {
    /// Integer vars provably in `0..n` — usable as array indices.
    idx_vars: Vec<VarId>,
    /// Integer-valued vars of any small magnitude.
    int_vars: Vec<VarId>,
    /// Float-valued locals (`Let` at body top level).
    float_vars: Vec<VarId>,
}

struct Gen {
    rng: Rng,
    seed: u64,
    index: u64,
    b: ProgramBuilder,
    n: ParamId,
    n_val: i64,
    alpha: Option<ParamId>,
    alpha_val: f64,
    arrays: Vec<ArrInfo>,
    /// F32 `In` array of length n: safe source for exact reductions.
    x: ArrayId,
    /// The always-present observable F32 InOut array of length n.
    y: ArrayId,
    /// F32 `In` array of length n*n, if present (grouped kernels).
    nn_in: Option<ArrayId>,
    /// I32 `In` array valued 0..n-1, if present (indirect accesses).
    idx_arr: Option<ArrayId>,
    flag: Option<ArrayId>,
    rr_dest: Option<ArrayId>,
    kernels: usize,
    wrote_observable: bool,
}

impl Gen {
    fn new(mut rng: Rng, seed: u64, index: u64) -> Gen {
        let mut b = ProgramBuilder::new(format!("gen_{index}"));
        let n = b.iparam("n");
        let n_val = rng.range(4, 8);
        let (alpha, alpha_val) = if rng.chance(1, 2) {
            (
                Some(b.param("alpha", Scalar::F32)),
                *rng.pick(&[1.5, 2.0, 2.5, 3.0]),
            )
        } else {
            (None, 0.0)
        };

        let mut arrays = Vec::new();
        let x = b.array("x", Scalar::F32, n, Intent::In);
        arrays.push(ArrInfo {
            id: x,
            name: "x",
            elem: Scalar::F32,
            kind: LenKind::N,
            intent: Intent::In,
        });
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        arrays.push(ArrInfo {
            id: y,
            name: "y",
            elem: Scalar::F32,
            kind: LenKind::N,
            intent: Intent::InOut,
        });

        let mut nn_in = None;
        if rng.chance(1, 2) {
            let intent = if rng.chance(1, 2) {
                Intent::In
            } else {
                Intent::InOut
            };
            let z = b.array("z", Scalar::F32, E::from(n) * E::from(n), intent);
            arrays.push(ArrInfo {
                id: z,
                name: "z",
                elem: Scalar::F32,
                kind: LenKind::NN,
                intent,
            });
            if intent == Intent::In {
                nn_in = Some(z);
            }
        }
        if rng.chance(1, 2) {
            let intent = if rng.chance(1, 2) {
                Intent::Out
            } else {
                Intent::Scratch
            };
            let w = b.array("w", Scalar::F32, n, intent);
            arrays.push(ArrInfo {
                id: w,
                name: "w",
                elem: Scalar::F32,
                kind: LenKind::N,
                intent,
            });
        }
        if rng.chance(1, 3) {
            let m = b.array("m", Scalar::I32, n, Intent::InOut);
            arrays.push(ArrInfo {
                id: m,
                name: "m",
                elem: Scalar::I32,
                kind: LenKind::N,
                intent: Intent::InOut,
            });
        }
        let mut idx_arr = None;
        if rng.chance(1, 3) {
            let ia = b.array("idx", Scalar::I32, n, Intent::In);
            arrays.push(ArrInfo {
                id: ia,
                name: "idx",
                elem: Scalar::I32,
                kind: LenKind::N,
                intent: Intent::In,
            });
            idx_arr = Some(ia);
        }
        let mut rr_dest = None;
        if rng.chance(1, 3) {
            let r = b.array("r", Scalar::F32, 1i64, Intent::Out);
            arrays.push(ArrInfo {
                id: r,
                name: "r",
                elem: Scalar::F32,
                kind: LenKind::One,
                intent: Intent::Out,
            });
            rr_dest = Some(r);
        }
        let mut flag = None;
        if rng.chance(1, 3) {
            let f = b.array("flag", Scalar::I32, 1i64, Intent::InOut);
            arrays.push(ArrInfo {
                id: f,
                name: "flag",
                elem: Scalar::I32,
                kind: LenKind::One,
                intent: Intent::InOut,
            });
            flag = Some(f);
        }

        Gen {
            rng,
            seed,
            index,
            b,
            n,
            n_val,
            alpha,
            alpha_val,
            arrays,
            x,
            y,
            nn_in,
            idx_arr,
            flag,
            rr_dest,
            kernels: 0,
            wrote_observable: false,
        }
    }

    fn build(mut self) -> Case {
        let mut body: Vec<HostStmt> = Vec::new();
        let n_features = 1 + self.rng.below(3);
        for _ in 0..n_features {
            let stmts = self.gen_feature();
            body.extend(stmts);
            if self.rng.chance(1, 8) {
                body.push(HostStmt::HostCompute {
                    label: "bookkeeping".into(),
                    instr: Expr::param(self.n),
                });
            }
        }
        if !self.wrote_observable {
            // Guarantee the program has an observable effect.
            let k = self.gen_affine_kernel(self.y);
            body.push(HostStmt::Launch(k));
        }

        let mut params = vec![("n".to_string(), self.n_val as f64)];
        if self.alpha.is_some() {
            params.push(("alpha".to_string(), self.alpha_val));
        }
        let inputs = self.make_inputs();
        let program = self.b.finish(body);
        Case {
            seed: self.seed,
            index: self.index,
            program,
            params,
            inputs,
        }
    }

    fn make_inputs(&mut self) -> Vec<(String, Buffer)> {
        let n = self.n_val;
        let mut out = Vec::new();
        for info in self.arrays.clone() {
            if !info.intent.copies_in() {
                continue;
            }
            let len = match info.kind {
                LenKind::N => n,
                LenKind::NN => n * n,
                LenKind::One => 1,
            } as usize;
            let buf = if Some(info.id) == self.idx_arr {
                Buffer::I32((0..len).map(|_| self.rng.range(0, n - 1) as i32).collect())
            } else if Some(info.id) == self.flag {
                Buffer::I32(vec![self.rng.range(1, 3) as i32])
            } else {
                match info.elem {
                    Scalar::F32 => {
                        Buffer::F32((0..len).map(|_| self.rng.range(1, 8) as f32).collect())
                    }
                    Scalar::I32 => {
                        Buffer::I32((0..len).map(|_| self.rng.range(1, 8) as i32).collect())
                    }
                    _ => Buffer::zeroed(info.elem, len),
                }
            };
            out.push((info.name.to_string(), buf));
        }
        out
    }

    // ---------------------------------------------------------------
    // Host-level features
    // ---------------------------------------------------------------

    fn gen_feature(&mut self) -> Vec<HostStmt> {
        match self.rng.below(12) {
            0..=2 => vec![HostStmt::Launch(self.gen_map_kernel(None, None))],
            3 | 4 => self.gen_data_region(),
            5 => {
                let t = self.b.var("t");
                let k = self.gen_map_kernel(Some(t), None);
                vec![HostStmt::HostLoop {
                    var: t,
                    lo: Expr::iconst(0),
                    hi: Expr::iconst(2),
                    body: vec![HostStmt::Launch(k)],
                }]
            }
            6 => match self.flag {
                Some(f) => {
                    let work = self.gen_map_kernel(None, None);
                    let countdown = self.gen_countdown(f);
                    vec![HostStmt::WhileFlag {
                        flag: f,
                        max_iters: 4,
                        body: vec![HostStmt::Launch(work), HostStmt::Launch(countdown)],
                    }]
                }
                None => vec![HostStmt::Launch(self.gen_map_kernel(None, None))],
            },
            7 | 8 => vec![HostStmt::Launch(self.gen_reduction_kernel())],
            9 => match self.rr_dest {
                Some(r) => vec![HostStmt::Launch(self.gen_rr_kernel(r))],
                None => vec![HostStmt::Launch(self.gen_map_kernel(None, None))],
            },
            10 => match self.nn_in {
                Some(src) => vec![HostStmt::Launch(self.gen_grouped_kernel(src))],
                None => vec![HostStmt::Launch(self.gen_reduction_kernel())],
            },
            _ => {
                // Host-side scalar work feeding a launch.
                if self.rng.chance(1, 2) {
                    let idx = self.rng.range(0, 3);
                    let fc = self.fconst();
                    vec![
                        HostStmt::HostStore {
                            array: self.y,
                            index: Expr::iconst(idx),
                            value: Expr::fconst(fc),
                        },
                        HostStmt::Launch(self.gen_map_kernel(None, None)),
                    ]
                } else {
                    let v = self.b.var("hv");
                    let k = self.gen_map_kernel(None, Some(v));
                    vec![
                        HostStmt::HostAssign {
                            var: v,
                            ty: Scalar::I32,
                            value: Expr::bin(
                                paccport_ir::expr::BinOp::Sub,
                                Expr::param(self.n),
                                Expr::iconst(1),
                            ),
                        },
                        HostStmt::Launch(k),
                    ]
                }
            }
        }
    }

    /// A structured data region (or an equivalent unstructured
    /// `EnterData`/`ExitData` pair) covering `In`/`InOut` arrays, with
    /// one or two launches and an optional `update` sandwich.
    fn gen_data_region(&mut self) -> Vec<HostStmt> {
        let mut cov: Vec<ArrayId> = self
            .arrays
            .iter()
            .filter(|a| a.intent.copies_in())
            .filter(|_| true)
            .map(|a| a.id)
            .collect();
        // Keep a random nonempty subset, always including y.
        cov.retain(|a| *a == self.y || self.rng.chance(2, 3));
        let sandwich = self.rng.chance(1, 2);
        let mut inner = Vec::new();
        if sandwich {
            // Launch(writes y) → update host(y) [→ update device(y)]:
            // the kernel is plain-affine, so no personality can demote
            // it to a host fallback and make the forced device→host
            // copy publish stale data.
            let k = self.gen_affine_kernel(self.y);
            inner.push(HostStmt::Launch(k));
            inner.push(HostStmt::Update {
                array: self.y,
                dir: Dir::ToHost,
            });
            if self.rng.chance(1, 2) {
                inner.push(HostStmt::Update {
                    array: self.y,
                    dir: Dir::ToDevice,
                });
            }
            if self.rng.chance(1, 2) {
                inner.push(HostStmt::Launch(self.gen_map_kernel(None, None)));
            }
        } else {
            inner.push(HostStmt::Launch(self.gen_map_kernel(None, None)));
            if self.rng.chance(1, 2) {
                inner.push(HostStmt::Launch(self.gen_map_kernel(None, None)));
            }
        }
        if self.rng.chance(1, 4) {
            // OpenACC 2.0 unstructured form of the same lifetime.
            let mut out = vec![HostStmt::EnterData {
                arrays: cov.clone(),
            }];
            out.extend(inner);
            out.push(HostStmt::ExitData { arrays: cov });
            out
        } else {
            vec![HostStmt::DataRegion {
                arrays: cov,
                body: inner,
            }]
        }
    }

    // ---------------------------------------------------------------
    // Kernels
    // ---------------------------------------------------------------

    fn next_kernel_name(&mut self, prefix: &str) -> String {
        self.kernels += 1;
        format!("{prefix}{}", self.kernels)
    }

    /// A general map kernel: rank 1 or 2 (optionally triangular),
    /// straight-line body with lets, stores, conditionals, sequential
    /// inner loops and the odd atomic.
    fn gen_map_kernel(&mut self, lo_var: Option<VarId>, hi_var: Option<VarId>) -> Kernel {
        let name = self.next_kernel_name("k");
        let rank = if self.rng.chance(1, 3) { 2 } else { 1 };
        let mut env = Env::default();
        if let Some(v) = lo_var {
            // Host loop variable: bound 0..2, valid as an index.
            env.idx_vars.push(v);
            env.int_vars.push(v);
        }
        let hi: Expr = match hi_var {
            Some(v) => Expr::var(v),
            None => Expr::param(self.n),
        };
        let mut loops = Vec::new();
        let i = self.b.var(&format!("i_{name}"));
        let lo: Expr = match lo_var {
            Some(v) => Expr::var(v),
            None => Expr::iconst(0),
        };
        loops.push(ParallelLoop {
            var: i,
            lo,
            hi: hi.clone(),
            clauses: self.gen_clauses(),
        });
        env.idx_vars.push(i);
        env.int_vars.push(i);
        if rank == 2 {
            let j = self.b.var(&format!("j_{name}"));
            let jlo = if self.rng.chance(1, 3) {
                Expr::var(i) // triangular, as in Gaussian elimination
            } else {
                Expr::iconst(0)
            };
            loops.push(ParallelLoop {
                var: j,
                lo: jlo,
                hi: Expr::param(self.n),
                clauses: self.gen_clauses(),
            });
            env.idx_vars.push(j);
            env.int_vars.push(j);
        }

        let mut stmts = Vec::new();
        for l in 0..self.rng.below(3) {
            let v = self.b.var(&format!("t{l}_{name}"));
            if self.rng.chance(1, 4) {
                let e = self.gen_iexpr(&env, 2);
                stmts.push(let_(v, Scalar::I32, e));
                env.int_vars.push(v);
            } else {
                let e = self.gen_fexpr(&env, 2);
                stmts.push(let_(v, Scalar::F32, e));
                env.float_vars.push(v);
            }
        }
        let n_eff = 1 + self.rng.below(3);
        for e in 0..n_eff {
            let s = self.gen_effect(&name, e, &env);
            stmts.push(s);
        }
        Kernel::simple(name, loops, Block::new(stmts))
    }

    fn gen_effect(&mut self, kname: &str, eid: u64, env: &Env) -> Stmt {
        match self.rng.below(8) {
            0..=3 => self.gen_store(env),
            4 => {
                let c = self.gen_cond(env);
                let s = self.gen_store(env);
                if_(c, vec![s])
            }
            5 => {
                let c = self.gen_cond(env);
                let a = self.gen_store(env);
                let b = self.gen_store(env);
                if_else(c, vec![a], vec![b])
            }
            6 => {
                let kv = self.b.var(&format!("kv{eid}_{kname}"));
                let hi: E = if self.rng.chance(1, 2) {
                    E::from(self.n)
                } else {
                    E::from(self.rng.range(2, 4))
                };
                let mut inner_env = env.clone();
                inner_env.idx_vars.push(kv);
                inner_env.int_vars.push(kv);
                let inner = if !env.float_vars.is_empty() && self.rng.chance(1, 2) {
                    // Scalar accumulation — the loop shape PGI's
                    // -Munroll skips.
                    let fv = *self.rng.pick(&env.float_vars);
                    let term = self.gen_fexpr(&inner_env, 1);
                    vec![assign(fv, E::from(fv) + term)]
                } else {
                    vec![self.gen_store(&inner_env)]
                };
                for_(kv, 0i64, hi, inner)
            }
            _ => {
                // Atomic accumulation into a float array.
                let target = self.pick_writable(Scalar::F32);
                let index = self.gen_index(env, target.kind);
                let value = self.gen_fexpr(env, 1);
                if target.intent.copies_out() {
                    self.wrote_observable = true;
                }
                Stmt::Atomic {
                    op: ReduceOp::Add,
                    array: target.id,
                    index: index.expr(),
                    value: value.expr(),
                }
            }
        }
    }

    fn pick_writable(&mut self, prefer: Scalar) -> ArrInfo {
        let pool: Vec<ArrInfo> = self
            .arrays
            .iter()
            .filter(|a| a.writable() && a.elem == prefer)
            .cloned()
            .collect();
        if pool.is_empty() {
            // y is always writable F32.
            self.arrays.iter().find(|a| a.id == self.y).unwrap().clone()
        } else {
            pool[self.rng.below(pool.len() as u64) as usize].clone()
        }
    }

    fn gen_store(&mut self, env: &Env) -> Stmt {
        let pool: Vec<ArrInfo> = self
            .arrays
            .iter()
            .filter(|a| a.writable())
            .cloned()
            .collect();
        let target = pool[self.rng.below(pool.len() as u64) as usize].clone();
        let index = self.gen_index(env, target.kind);
        let value = match target.elem {
            Scalar::I32 => self.gen_iexpr(env, 2),
            _ => self.gen_fexpr(env, 2),
        };
        if target.intent.copies_out() {
            self.wrote_observable = true;
        }
        Stmt::Store {
            space: MemSpace::Global,
            array: target.id,
            index: index.expr(),
            value: value.expr(),
        }
    }

    /// The plain-affine saxpy shape used inside `update` sandwiches:
    /// one store at `[i]`, loads only at `[i]` — nothing any compiler
    /// personality demotes to a host fallback.
    fn gen_affine_kernel(&mut self, target: ArrayId) -> Kernel {
        let name = self.next_kernel_name("ax");
        let i = self.b.var(&format!("i_{name}"));
        let coef: E = match self.alpha {
            Some(a) if self.rng.chance(1, 2) => E::from(a),
            _ => E::from(*self.rng.pick(&[2.0, 0.5, 3.0, -1.5])),
        };
        let value = match self.rng.below(3) {
            0 => coef * ld(self.x, i) + ld(target, i),
            1 => ld(self.x, i).fma(coef, ld(target, i)),
            _ => ld(target, i) + coef,
        };
        let mut clauses = LoopClauses::independent();
        if self.rng.chance(1, 3) {
            clauses.vector = Some(128);
        }
        self.wrote_observable = true;
        Kernel::simple(
            name,
            vec![ParallelLoop {
                var: i,
                lo: Expr::iconst(0),
                hi: Expr::param(self.n),
                clauses,
            }],
            Block::new(vec![st(target, i, value)]),
        )
    }

    /// The exact `let acc = 0; for k { acc += term }; dest[i] = acc`
    /// prefix CAPS and PGI recognize for the `reduction` directive.
    /// All term inputs are integer-valued, so the 128-lane tree
    /// lowering is bitwise-exact — and the MIC dropped-phase bug is
    /// guaranteed to lose nonzero partials.
    fn gen_reduction_kernel(&mut self) -> Kernel {
        let name = self.next_kernel_name("red");
        let i = self.b.var(&format!("i_{name}"));
        let acc = self.b.var(&format!("acc_{name}"));
        let kv = self.b.var(&format!("k_{name}"));
        let x = self.x;
        let update = match self.rng.below(4) {
            0 => assign(acc, E::from(acc) + ld(x, kv)),
            1 => assign(acc, ld(x, kv) * ld(x, kv) + E::from(acc)),
            2 => assign(
                acc,
                E::from(acc) + ld(x, kv) * E::from(*self.rng.pick(&[2.0, 3.0, 4.0])),
            ),
            _ => assign(acc, ld(x, kv).fma(E::from(2.0), acc)),
        };
        let dest = self.pick_writable(Scalar::F32);
        if dest.intent.copies_out() {
            self.wrote_observable = true;
        }
        let dest_index: E = match dest.kind {
            LenKind::N => E::from(i),
            LenKind::NN => E::from(i) * E::from(self.n),
            LenKind::One => E::from(0i64),
        };
        let mut k = Kernel::simple(
            name,
            vec![ParallelLoop {
                var: i,
                lo: Expr::iconst(0),
                hi: Expr::param(self.n),
                clauses: self.gen_clauses(),
            }],
            Block::new(vec![
                let_(acc, Scalar::F32, 0.0f64),
                for_(kv, 0i64, E::from(self.n), vec![update]),
                st(dest.id, dest_index, acc),
            ]),
        );
        k.reduction = Some(Reduction {
            op: ReduceOp::Add,
            acc,
        });
        k
    }

    /// A kernel whose result is a whole-iteration-space reduction into
    /// `dest[0]` (Hydro's Courant number shape).
    fn gen_rr_kernel(&mut self, dest: ArrayId) -> Kernel {
        let name = self.next_kernel_name("rr");
        let i = self.b.var(&format!("i_{name}"));
        let mut env = Env::default();
        env.idx_vars.push(i);
        env.int_vars.push(i);
        let mut stmts = Vec::new();
        if self.rng.chance(1, 2) {
            let v = self.b.var(&format!("t_{name}"));
            let e = self.gen_fexpr(&env, 1);
            stmts.push(let_(v, Scalar::F32, e));
            env.float_vars.push(v);
        }
        if self.rng.chance(1, 3) {
            let s = self.gen_store(&env);
            stmts.push(s);
        }
        let value = self.gen_fexpr(&env, 2);
        let op = *self
            .rng
            .pick(&[ReduceOp::Add, ReduceOp::Max, ReduceOp::Min]);
        self.wrote_observable = true; // dest is copyout
        let mut k = Kernel::simple(
            name,
            vec![ParallelLoop {
                var: i,
                lo: Expr::iconst(0),
                hi: Expr::param(self.n),
                clauses: self.gen_clauses(),
            }],
            Block::new(stmts),
        );
        k.region_reduction = Some(RegionReduction {
            op,
            value: value.expr(),
            dest,
        });
        k
    }

    /// Hand-written OpenCL-style grouped kernel: 4 lanes stage
    /// `src[g*4+lid]` into local memory, tree-combine, lane 0 stores
    /// the group sum. The 4-phase form diverges observably under the
    /// CAPS dropped-phases bug; the 2-phase form (no interior phases)
    /// is *benignly* miscompiled — flagged wrong, yet value-correct.
    fn gen_grouped_kernel(&mut self, src: ArrayId) -> Kernel {
        let name = self.next_kernel_name("grp");
        let g = self.b.var(&format!("g_{name}"));
        let sdata = ArrayId(0); // index into the kernel's local table
        let lid = || E(Expr::Special(SpecialVar::LocalId(0)));
        let tall = self.rng.chance(2, 3);
        let p0 = Block::new(vec![st_local(
            sdata,
            lid(),
            ld(src, E::from(g) * 4i64 + lid()),
        )]);
        let phases = if tall {
            let p1 = Block::new(vec![if_(
                lid().lt(2i64),
                vec![st_local(
                    sdata,
                    lid(),
                    ld_local(sdata, lid()) + ld_local(sdata, lid() + 2i64),
                )],
            )]);
            let p2 = Block::new(vec![if_(
                lid().lt(1i64),
                vec![st_local(
                    sdata,
                    lid(),
                    ld_local(sdata, lid()) + ld_local(sdata, lid() + 1i64),
                )],
            )]);
            let p3 = Block::new(vec![if_(
                lid().eq_(0i64),
                vec![st(self.y, g, ld_local(sdata, 0i64))],
            )]);
            vec![p0, p1, p2, p3]
        } else {
            let p1 = Block::new(vec![if_(
                lid().eq_(0i64),
                vec![st(
                    self.y,
                    g,
                    ld_local(sdata, 0i64)
                        + ld_local(sdata, 1i64)
                        + ld_local(sdata, 2i64)
                        + ld_local(sdata, 3i64),
                )],
            )]);
            vec![p0, p1]
        };
        self.wrote_observable = true;
        Kernel {
            name,
            loops: vec![ParallelLoop::new(g, Expr::iconst(0), Expr::param(self.n))],
            body: KernelBody::Grouped(GroupedBody {
                group_size: 4,
                locals: vec![LocalArrayDecl {
                    name: "sdata".into(),
                    elem: Scalar::F32,
                    len: 4,
                }],
                phases,
            }),
            locals: Vec::new(),
            region_reduction: None,
            reduction: None,
            launch_hint: None,
        }
    }

    /// `flag[0] = max(flag[0]-1, 0)` — drives WhileFlag to terminate
    /// after exactly the flag's initial value of iterations.
    fn gen_countdown(&mut self, flag: ArrayId) -> Kernel {
        let name = self.next_kernel_name("cd");
        let c = self.b.var(&format!("c_{name}"));
        Kernel::simple(
            name,
            vec![ParallelLoop::new(c, Expr::iconst(0), Expr::iconst(1))],
            Block::new(vec![st(flag, 0i64, (ld(flag, 0i64) - 1i64).max(0i64))]),
        )
    }

    // ---------------------------------------------------------------
    // Clauses
    // ---------------------------------------------------------------

    fn gen_clauses(&mut self) -> LoopClauses {
        let mut c = LoopClauses {
            independent: self.rng.chance(1, 2),
            ..Default::default()
        };
        if self.rng.chance(1, 4) {
            c.gang = Some(*self.rng.pick(&[64u32, 128, 256]));
        }
        if self.rng.chance(1, 6) {
            c.worker = Some(*self.rng.pick(&[2u32, 4]));
        }
        if self.rng.chance(1, 4) {
            c.vector = Some(*self.rng.pick(&[64u32, 128]));
        }
        if self.rng.chance(1, 6) {
            c.tile = Some(*self.rng.pick(&[2u32, 4]));
        }
        if self.rng.chance(1, 8) {
            c.unroll_jam = Some(2);
        }
        if self.rng.chance(1, 8) {
            c.device_overrides = vec![DeviceTypeClause {
                device: *self.rng.pick(&[
                    AccDeviceType::Nvidia,
                    AccDeviceType::Radeon,
                    AccDeviceType::XeonPhi,
                ]),
                gang: Some(128),
                worker: None,
                vector: Some(64),
            }];
        }
        c
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    /// Float constants that are exact in f32 and never hit a simplify
    /// identity (no 0.0, no ±1.0).
    fn fconst(&mut self) -> f64 {
        *self.rng.pick(&[2.0, 0.5, -1.5, 3.0, 4.0, -2.5, 1.25])
    }

    /// Provably in-bounds index expression for an array of `kind`.
    fn gen_index(&mut self, env: &Env, kind: LenKind) -> E {
        match kind {
            LenKind::One => E::from(0i64),
            LenKind::N => {
                if env.idx_vars.is_empty() {
                    return E::from(self.rng.range(0, 3));
                }
                let v = *self.rng.pick(&env.idx_vars);
                match self.rng.below(10) {
                    0..=4 => E::from(v),
                    5 => (E::from(v) + self.rng.range(1, 3)) % E::from(self.n),
                    6 => (E::from(v) + self.rng.range(1, 3)).min(E::from(self.n) - 1i64),
                    7 => E::from(self.rng.range(0, 3)),
                    8 => match self.idx_arr {
                        Some(ia) => ld(ia, E::from(v)), // values 0..n-1
                        None => E::from(v),
                    },
                    _ => E::from(v),
                }
            }
            LenKind::NN => {
                if env.idx_vars.len() >= 2 && self.rng.chance(3, 4) {
                    let a = env.idx_vars[env.idx_vars.len() - 2];
                    let b = env.idx_vars[env.idx_vars.len() - 1];
                    E::from(a) * E::from(self.n) + E::from(b)
                } else if !env.idx_vars.is_empty() {
                    let v = *self.rng.pick(&env.idx_vars);
                    match self.rng.below(3) {
                        0 => E::from(v) * E::from(self.n) + self.rng.range(0, 3),
                        1 => E::from(v),
                        _ => (E::from(v) * 3i64 + 1i64) % (E::from(self.n) * E::from(self.n)),
                    }
                } else {
                    E::from(self.rng.range(0, 15))
                }
            }
        }
    }

    /// Float-typed value expression. Integer subexpressions only enter
    /// through an explicit f32 cast.
    fn gen_fexpr(&mut self, env: &Env, depth: u32) -> E {
        if depth == 0 || self.rng.chance(2, 5) {
            return match self.rng.below(6) {
                0 => E::from(self.fconst()),
                1 => match self.alpha {
                    Some(a) => E::from(a),
                    None => E::from(self.fconst()),
                },
                2 if !env.float_vars.is_empty() => E::from(*self.rng.pick(&env.float_vars)),
                _ => {
                    let pool: Vec<ArrInfo> = self
                        .arrays
                        .iter()
                        .filter(|a| a.elem == Scalar::F32 && a.kind != LenKind::One)
                        .cloned()
                        .collect();
                    let a = pool[self.rng.below(pool.len() as u64) as usize].clone();
                    let idx = self.gen_index(env, a.kind);
                    ld(a.id, idx)
                }
            };
        }
        let d = depth - 1;
        match self.rng.below(10) {
            0 => self.gen_fexpr(env, d) + self.gen_fexpr(env, d),
            1 => self.gen_fexpr(env, d) - self.gen_fexpr(env, d),
            2 => self.gen_fexpr(env, d) * self.gen_fexpr(env, d),
            3 => self.gen_fexpr(env, d).min(self.gen_fexpr(env, d)),
            4 => self.gen_fexpr(env, d).max(self.gen_fexpr(env, d)),
            5 => self.gen_fexpr(env, d) / E::from(*self.rng.pick(&[2.0, 4.0, -2.0, 8.0])),
            6 => {
                let a = self.gen_fexpr(env, d);
                let b = self.gen_fexpr(env, d);
                let c = self.gen_fexpr(env, d);
                a.fma(b, c)
            }
            7 => {
                let a = self.gen_fexpr(env, d);
                if self.rng.chance(1, 2) {
                    -a
                } else {
                    a.abs()
                }
            }
            8 => self.gen_iexpr(env, d).cast(Scalar::F32),
            _ => {
                let c = self.gen_cond(env);
                let a = self.gen_fexpr(env, d);
                let b = self.gen_fexpr(env, d);
                c.select(a, b)
            }
        }
    }

    /// Integer-typed value expression, magnitude-bounded.
    fn gen_iexpr(&mut self, env: &Env, depth: u32) -> E {
        if depth == 0 || self.rng.chance(2, 5) {
            return match self.rng.below(5) {
                0 => E::from(self.rng.range(0, 4)),
                1 => E::from(self.rng.range(-2, 4)),
                2 if !env.int_vars.is_empty() => E::from(*self.rng.pick(&env.int_vars)),
                3 => E::from(self.n),
                _ => {
                    let pool: Vec<ArrInfo> = self
                        .arrays
                        .iter()
                        .filter(|a| a.elem == Scalar::I32 && a.kind == LenKind::N)
                        .cloned()
                        .collect();
                    if pool.is_empty() {
                        E::from(self.n)
                    } else {
                        let a = pool[self.rng.below(pool.len() as u64) as usize].clone();
                        let idx = self.gen_index(env, a.kind);
                        ld(a.id, idx)
                    }
                }
            };
        }
        let d = depth - 1;
        match self.rng.below(9) {
            0 => self.gen_iexpr(env, d) + self.gen_iexpr(env, d),
            1 => self.gen_iexpr(env, d) - self.gen_iexpr(env, d),
            2 => self.gen_iexpr(env, d) * self.gen_iexpr(env, d),
            3 => self.gen_iexpr(env, d).min(self.gen_iexpr(env, d)),
            4 => self.gen_iexpr(env, d).max(self.gen_iexpr(env, d)),
            5 => self.gen_iexpr(env, d) / E::from(self.rng.range(2, 4)),
            6 => self.gen_iexpr(env, d) % E::from(self.rng.range(2, 4)),
            7 => {
                let sh = self.rng.range(1, 3);
                let a = self.gen_iexpr(env, d);
                let op = if self.rng.chance(1, 2) {
                    paccport_ir::expr::BinOp::Shl
                } else {
                    paccport_ir::expr::BinOp::Shr
                };
                E(Expr::bin(op, a.expr(), Expr::iconst(sh)))
            }
            _ => {
                let c = self.gen_cond(env);
                let a = self.gen_iexpr(env, d);
                let b = self.gen_iexpr(env, d);
                c.select(a, b)
            }
        }
    }

    fn gen_cond(&mut self, env: &Env) -> E {
        let cmp_i = |g: &mut Gen, env: &Env| {
            let a = g.gen_iexpr(env, 1);
            let b = g.gen_iexpr(env, 1);
            match g.rng.below(6) {
                0 => a.lt(b),
                1 => a.le(b),
                2 => a.gt(b),
                3 => a.ge(b),
                4 => a.eq_(b),
                _ => a.ne_(b),
            }
        };
        match self.rng.below(6) {
            0..=2 => cmp_i(self, env),
            3 => {
                let a = self.gen_fexpr(env, 1);
                let b = self.gen_fexpr(env, 1);
                if self.rng.chance(1, 2) {
                    a.lt(b)
                } else {
                    a.ge(b)
                }
            }
            4 => {
                let a = cmp_i(self, env);
                let b = cmp_i(self, env);
                a.and(b)
            }
            _ => !cmp_i(self, env),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::program_to_string;

    #[test]
    fn generation_is_deterministic_per_seed_and_index() {
        for idx in 0..10 {
            let a = generate(42, idx);
            let b = generate(42, idx);
            assert_eq!(program_to_string(&a.program), program_to_string(&b.program));
            assert_eq!(a.params, b.params);
            assert_eq!(a.inputs, b.inputs);
        }
    }

    #[test]
    fn generated_programs_validate() {
        for idx in 0..50 {
            let c = generate(7, idx);
            paccport_ir::validate(&c.program).expect("generated program must validate");
        }
    }

    #[test]
    fn different_indices_differ() {
        let a = generate(42, 0);
        let b = generate(42, 1);
        assert_ne!(program_to_string(&a.program), program_to_string(&b.program));
    }

    #[test]
    fn every_program_has_an_observable_array() {
        for idx in 0..30 {
            let c = generate(3, idx);
            assert!(
                c.program.arrays.iter().any(|a| a.intent.copies_out()),
                "program {idx} has no observable array"
            );
        }
    }
}
