//! Protocol and snapshot tests for the experiment server (ISSUE 9):
//! typed 4xx refusals, deterministic bodies across `--jobs` levels,
//! chunk framing on the streaming route, 429 backpressure with
//! `Retry-After`, and graceful drain. Response-body snapshots are
//! blessed files — re-bless with
//! `UPDATE_SNAPSHOTS=1 cargo test -p paccport-server`.

use paccport_core::coalesce::Gate;
use paccport_server::{http, Server, ServerConfig};

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr().to_string();
    (server, addr)
}

fn stop(server: Server) {
    server.shutdown();
    server.join();
}

fn snapshot(name: &str, got: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).expect("re-bless snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read blessed snapshot {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "response for `{name}` drifted from the blessed snapshot; if \
         intentional, re-bless with UPDATE_SNAPSHOTS=1 cargo test -p paccport-server"
    );
}

#[test]
fn health_and_routing() {
    let (server, addr) = start(ServerConfig::default());
    let r = http::request(&addr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(r.status, 200);
    let v = paccport_trace::json::parse(&r.body).expect("healthz is JSON");
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    assert_eq!(v.get("queue_depth").and_then(|n| n.as_f64()), Some(0.0));
    // This very request is the one in flight.
    assert_eq!(v.get("in_flight").and_then(|n| n.as_f64()), Some(1.0));
    let rec = v.get("recorder").expect("recorder block");
    assert_eq!(rec.get("occupancy").and_then(|n| n.as_f64()), Some(0.0));
    assert_eq!(rec.get("cap").and_then(|n| n.as_f64()), Some(64.0));
    // `requests_served` counts completed requests; this one hasn't
    // finished yet, and a second probe sees it counted.
    assert_eq!(v.get("requests_served").and_then(|n| n.as_f64()), Some(0.0));
    let r2 = http::request(&addr, "GET", "/healthz", &[], "").unwrap();
    let v2 = paccport_trace::json::parse(&r2.body).unwrap();
    assert_eq!(
        v2.get("requests_served").and_then(|n| n.as_f64()),
        Some(1.0)
    );

    let r = http::request(&addr, "GET", "/nope", &[], "").unwrap();
    assert_eq!(r.status, 404);
    assert!(r.body.contains("no route `GET /nope`"));
    assert!(r.body.contains("POST /run"), "404 lists the routes");

    let r = http::request(&addr, "GET", "/run", &[], "").unwrap();
    assert_eq!(r.status, 405, "wrong method on a real route");
    stop(server);
}

#[test]
fn protocol_refusals_are_one_line_4xx() {
    let (server, addr) = start(ServerConfig::default());
    for (body, tenant, status, want) in [
        ("{not json", None, 400, "malformed JSON"),
        ("[1,2]", None, 400, "must be a JSON object"),
        ("", None, 400, "empty body"),
        (
            "{\"benchmark\":\"FFT\"}",
            None,
            400,
            "unknown benchmark `FFT`; known: BFS, BP, GE, Hydro, LUD",
        ),
        (
            "{\"benchmark\":\"LUD\",\"variant\":\"Fused\"}",
            None,
            400,
            "unknown variant `Fused`; known:",
        ),
        (
            "{\"benchmark\":\"LUD\",\"target\":\"A100\"}",
            None,
            400,
            "unknown target `A100`; known:",
        ),
        (
            "{\"scale\":\"galactic\"}",
            None,
            400,
            "unknown scale `galactic`; known: smoke, quick, paper",
        ),
        (
            "{\"benchmark\":\"Hydro\",\"target\":\"PGI-K40\"}",
            None,
            400,
            "no cell matches",
        ),
        ("{}", Some("bad tenant!"), 400, "invalid X-Tenant"),
    ] {
        let headers: Vec<(&str, &str)> = tenant.map(|t| ("X-Tenant", t)).into_iter().collect();
        let r = http::request(&addr, "POST", "/run", &headers, body).unwrap();
        assert_eq!(r.status, status, "{body:?}: {}", r.body);
        assert!(r.body.contains(want), "{body:?} => {}", r.body);
        assert_eq!(r.body.matches('\n').count(), 1, "one-line error");
        paccport_trace::json::parse(&r.body).expect("error bodies are JSON");
    }

    // Oversized body: refused before any parsing.
    let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(http::MAX_BODY_BYTES));
    let r = http::request(&addr, "POST", "/run", &[], &big).unwrap();
    assert_eq!(r.status, 413);
    assert!(r.body.contains("exceeds"));
    stop(server);
}

#[test]
fn run_bodies_are_deterministic_across_jobs_and_snapshot() {
    let single = "{\"benchmark\":\"LUD\",\"variant\":\"Base\",\
                  \"target\":\"CAPS-CUDA-K40\",\"scale\":\"smoke\",\"seed\":7}";
    let multi = "{\"benchmark\":\"GE\",\"variant\":\"Base\",\
                 \"target\":\"*\",\"scale\":\"smoke\",\"seed\":7}";
    let mut bodies: Vec<(String, String)> = Vec::new();
    for jobs in [1usize, 4] {
        let (server, addr) = start(ServerConfig {
            jobs,
            ..Default::default()
        });
        let a = http::request(&addr, "POST", "/run", &[], single).unwrap();
        assert_eq!(a.status, 200, "{}", a.body);
        let b = http::request(&addr, "POST", "/run", &[], multi).unwrap();
        assert_eq!(b.status, 200, "{}", b.body);
        // Repeats are byte-stable within one server life.
        let a2 = http::request(&addr, "POST", "/run", &[], single).unwrap();
        assert_eq!(a.body, a2.body);
        bodies.push((a.body, b.body));
        stop(server);
    }
    assert_eq!(
        bodies[0], bodies[1],
        "response bodies are byte-identical at --jobs 1 and --jobs 4"
    );
    let (single_body, multi_body) = &bodies[0];
    assert!(
        multi_body.contains("\"ok\":3"),
        "GE Base matches 3 OpenACC targets"
    );
    // Every body is parseable JSON with the documented shape.
    let v = paccport_trace::json::parse(single_body).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(
        v.get("cells").and_then(|c| c.as_arr()).map(|c| c.len()),
        Some(1)
    );
    snapshot("run_lud_base_caps_seed7.json", single_body);
    snapshot("run_ge_base_all_seed7.json", multi_body);
}

#[test]
fn streaming_frames_one_event_per_chunk() {
    let body = "{\"benchmark\":\"GE\",\"variant\":\"Base\",\"target\":\"*\",\
                \"scale\":\"smoke\",\"seed\":3}";
    let mut streams: Vec<Vec<String>> = Vec::new();
    for jobs in [1usize, 4] {
        let (server, addr) = start(ServerConfig {
            jobs,
            ..Default::default()
        });
        let r = http::request(&addr, "POST", "/stream", &[], body).unwrap();
        assert_eq!(r.status, 200);
        let chunks = r.chunks.expect("streaming route is chunked");
        streams.push(chunks);
        stop(server);
    }
    assert_eq!(streams[0], streams[1], "event stream is jobs-invariant");
    let chunks = &streams[0];
    assert_eq!(chunks.len(), 3 + 2, "start + one per cell + done");
    assert!(chunks[0].contains("\"event\":\"start\""));
    assert!(chunks[0].contains("\"cells\":3"));
    for (i, c) in chunks[1..4].iter().enumerate() {
        assert!(c.contains("\"event\":\"cell\""));
        assert!(c.contains(&format!("\"index\":{i}")), "events in order");
        paccport_trace::json::parse(c).expect("each chunk is one JSON line");
    }
    assert!(chunks[4].contains("\"event\":\"done\""));
    assert!(chunks[4].contains("\"ok\":3"));
    snapshot("stream_ge_base_all_seed3.ndjson", &chunks.concat());
}

#[test]
fn backpressure_answers_429_with_retry_after() {
    // One worker parked on the request gate + a queue of one: the
    // third concurrent request must be refused, deterministically.
    let request_gate = Gate::new();
    let (server, addr) = start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        request_gate: Some(request_gate.clone()),
        ..Default::default()
    });
    let addr1 = addr.clone();
    let addr2 = addr.clone();
    let h1 = std::thread::spawn(move || http::request(&addr1, "GET", "/healthz", &[], "").unwrap());
    // The single worker picks up request 1 and parks at the gate.
    request_gate.wait_parked(1);
    let h2 = std::thread::spawn(move || http::request(&addr2, "GET", "/healthz", &[], "").unwrap());
    // Request 2 lands in the admission queue (cap 1: now full).
    while server.queued() < 1 {
        std::thread::yield_now();
    }
    // Request 3 must bounce with Retry-After.
    let r = http::request(&addr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(r.status, 429);
    assert_eq!(r.header("retry-after"), Some("1"));
    assert!(r.body.contains("admission queue full (cap 1)"));
    // Release the worker: both queued requests complete normally.
    request_gate.open();
    assert_eq!(h1.join().unwrap().status, 200);
    assert_eq!(h2.join().unwrap().status, 200);
    stop(server);
}

#[test]
fn shutdown_drains_gracefully() {
    let (server, addr) = start(ServerConfig::default());
    let warm = "{\"benchmark\":\"LUD\",\"variant\":\"Base\",\
                \"target\":\"CAPS-CUDA-K40\",\"scale\":\"smoke\",\"seed\":1}";
    assert_eq!(
        http::request(&addr, "POST", "/run", &[], warm)
            .unwrap()
            .status,
        200
    );
    let r = http::request(&addr, "POST", "/shutdown", &[], "").unwrap();
    assert_eq!((r.status, r.body.as_str()), (200, "{\"draining\":true}\n"));
    // New work is refused while draining…
    // (tolerating the race where the listener has already exited).
    match http::request(&addr, "GET", "/healthz", &[], "") {
        Ok(refused) => {
            assert_eq!(refused.status, 503);
            assert!(refused.body.contains("draining"));
        }
        Err(_) => {} // drain completed first: socket already closed
    }
    // …and join() returns: every thread exits once in-flight work is
    // done (a hang here fails the test by timeout).
    server.join();
    assert!(
        http::request(&addr, "GET", "/healthz", &[], "").is_err(),
        "socket is closed after drain"
    );
}
