//! Coalescing proof (ISSUE 9): N identical concurrent requests yield
//! byte-identical bodies while the computation — and the compile
//! underneath it — runs exactly once.
//!
//! Scheduling is made deterministic with the server's test gates: the
//! flight leader parks inside its computation on `run_gate`, the test
//! waits until every other request has piled onto the flight
//! (observable via [`Singleflight::waiting`]), and only then releases
//! the leader. No sleeps, no races.

use std::sync::atomic::{AtomicBool, Ordering};

use paccport_core::coalesce::Gate;
use paccport_server::{http, Server, ServerConfig};

/// The metrics registry is process-global; serialize the tests that
/// read counter deltas.
static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const BODY: &str = "{\"benchmark\":\"LUD\",\"variant\":\"Base\",\
                    \"target\":\"CAPS-CUDA-K40\",\"scale\":\"smoke\",\"seed\":7}";

#[test]
fn identical_concurrent_requests_run_once_and_share_bytes() {
    let _m = METRICS_LOCK.lock().unwrap();
    paccport_trace::metrics::set_metrics_enabled(true);
    let compile_label: &[(&str, &str)] = &[("compiler", "CAPS 3.4.1")];
    let compiles_before = paccport_trace::metrics::counter_value("compile_total", compile_label);

    let run_gate = Gate::new();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            run_gate: Some(run_gate.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    const N: usize = 6;
    let released = AtomicBool::new(false);
    let bodies: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let r = http::request(&addr, "POST", "/run", &[], BODY).unwrap();
                    (r.status, r.body)
                })
            })
            .collect();
        // Exactly one request leads and parks inside the flight…
        run_gate.wait_parked(1);
        // …and the other five pile on as followers before any result
        // exists. `waiting()` counts followers blocked on the flight.
        while server.flights().waiting() < (N - 1) as u64 {
            std::thread::yield_now();
        }
        released.store(true, Ordering::SeqCst);
        run_gate.open();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(released.load(Ordering::SeqCst));

    // All six bodies byte-identical, all 200.
    for (status, body) in &bodies {
        assert_eq!(*status, 200);
        assert_eq!(
            body, &bodies[0].1,
            "duplicate responses must be byte-identical"
        );
        assert!(body.contains("\"status\":\"ok\""));
    }

    // One flight led, five coalesced, one compile.
    assert_eq!(server.flights().led(), 1, "the computation ran once");
    assert_eq!(server.flights().coalesced(), 5);
    assert_eq!(
        server.cache().misses(),
        1,
        "one unique (compiler, options, IR) triple -> one compile"
    );
    let compiles_after = paccport_trace::metrics::counter_value("compile_total", compile_label);
    assert_eq!(
        compiles_after - compiles_before,
        1,
        "compile_total grew by exactly the one unique triple"
    );

    // A later identical request is NOT coalesced (the flight is gone)
    // but hits the artifact cache and returns the same bytes.
    let again = http::request(&addr, "POST", "/run", &[], BODY).unwrap();
    assert_eq!(again.body, bodies[0].1, "repeat requests are byte-stable");
    assert_eq!(server.flights().led(), 2);
    assert_eq!(server.cache().misses(), 1, "no recompile on repeat");
    assert_eq!(
        paccport_trace::metrics::counter_value("compile_total", compile_label),
        compiles_after,
        "repeat request compiled nothing"
    );

    server.shutdown();
    server.join();
}

#[test]
fn distinct_requests_do_not_coalesce_and_share_the_cache() {
    let _m = METRICS_LOCK.lock().unwrap();
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    // Same cell, two different seeds: different flight keys (bodies
    // embed the seed), same compiled artifact.
    let a = http::request(&addr, "POST", "/run", &[], BODY).unwrap();
    let b = http::request(
        &addr,
        "POST",
        "/run",
        &[],
        &BODY.replace("\"seed\":7", "\"seed\":8"),
    )
    .unwrap();
    assert_eq!((a.status, b.status), (200, 200));
    assert_ne!(a.body, b.body, "the seed is echoed in the body");
    assert_eq!(server.flights().coalesced(), 0);
    assert_eq!(
        server.cache().misses(),
        1,
        "both seeds share one compiled artifact"
    );
    assert_eq!(server.cache().hits(), 1);
    server.shutdown();
    server.join();
}

#[test]
fn tenant_header_keys_cache_attribution() {
    let _m = METRICS_LOCK.lock().unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            tenant_quota: Some(1 << 20),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let r = http::request(&addr, "POST", "/run", &[("X-Tenant", "alice")], BODY).unwrap();
    assert_eq!(r.status, 200);
    assert!(
        server.cache().tenant_bytes("alice") > 0,
        "alice's compile counts against alice's quota"
    );
    assert_eq!(server.cache().tenant_bytes("bob"), 0);
    server.shutdown();
    server.join();
}
