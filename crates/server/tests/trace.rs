//! End-to-end tracing checks (ISSUE 10): a request's trace id is a
//! pure function of `(request fingerprint, seed)`, `GET /trace/<id>`
//! bodies are byte-identical across `--jobs` levels, repeats, and
//! server restarts, coalesced duplicates answer with the leader's
//! trace, the access log records who led, `/metrics` latency
//! histograms carry exemplars naming recorded traces, and the loadgen
//! report's service histogram matches a `/metrics` scrape bucket for
//! bucket.

use std::sync::atomic::{AtomicBool, Ordering};

use paccport_core::coalesce::Gate;
use paccport_server::{http, loadgen, Server, ServerConfig};
use paccport_trace::json::{self, Json};

/// The metrics registry and the trace-event stream are process-global;
/// every test here issues requests that feed both, so serialize them.
static GLOBALS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const MULTI: &str = "{\"benchmark\":\"GE\",\"variant\":\"Base\",\
                     \"target\":\"*\",\"scale\":\"smoke\",\"seed\":7}";

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr().to_string();
    (server, addr)
}

fn stop(server: Server) {
    server.shutdown();
    server.join();
}

/// POST a body to /run and return (trace id, response body).
fn run_traced(addr: &str, body: &str, headers: &[(&str, &str)]) -> (String, String) {
    let r = http::request(addr, "POST", "/run", headers, body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let id = r.header("x-request-id").expect("responses carry an id");
    (id.to_string(), r.body)
}

fn fetch_trace(addr: &str, id: &str, query: &str) -> (u16, String) {
    let r = http::request(addr, "GET", &format!("/trace/{id}{query}"), &[], "").unwrap();
    (r.status, r.body)
}

#[test]
fn trace_bodies_are_byte_identical_across_jobs_repeats_and_restarts() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    let mut observed: Vec<(String, String)> = Vec::new();
    for jobs in [1usize, 4] {
        let (server, addr) = start(ServerConfig {
            jobs,
            ..Default::default()
        });
        let (id, _) = run_traced(&addr, MULTI, &[]);
        let (status, trace) = fetch_trace(&addr, &id, "");
        assert_eq!(status, 200, "{trace}");

        // A repeat of the same request re-records the same trace.
        let (id2, _) = run_traced(&addr, MULTI, &[]);
        assert_eq!(id, id2, "trace id is a pure function of the request");
        let (_, trace2) = fetch_trace(&addr, &id, "");
        assert_eq!(trace, trace2, "re-recorded trace is byte-stable");

        // Export formats render from the same normalized tree.
        let (cs, chrome) = fetch_trace(&addr, &id, "?format=chrome");
        assert_eq!(cs, 200);
        json::parse(&chrome).expect("chrome export is valid JSON");
        let (fs, folded) = fetch_trace(&addr, &id, "?format=folded");
        assert_eq!(fs, 200);
        assert!(
            folded.contains("engine.job;engine.attempt;serve.run_cell;devsim.run "),
            "folded stacks show the span chain:\n{folded}"
        );
        observed.push((id, trace));
        stop(server);
    }
    assert_eq!(
        observed[0], observed[1],
        "trace id and body are byte-identical at --jobs 1 and --jobs 4 \
         and across server restarts"
    );

    // The recorded tree has the documented shape.
    let v = json::parse(&observed[0].1).unwrap();
    assert_eq!(v.get("route").and_then(Json::as_str), Some("run"));
    assert_eq!(v.get("status").and_then(Json::as_f64), Some(200.0));
    assert_eq!(v.get("ok").and_then(Json::as_f64), Some(3.0));
    let cells = v.get("cells").and_then(Json::as_arr).unwrap();
    assert_eq!(cells.len(), 3, "one cell trace per matrix cell");
    for c in cells {
        let spans = c.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 1, "one engine.job root per cell");
        assert_eq!(
            spans[0].get("name").and_then(Json::as_str),
            Some("engine.job")
        );
    }
}

#[test]
fn coalesced_requests_share_the_leaders_trace_and_the_log_says_who_led() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    let log_path = std::env::temp_dir().join(format!(
        "paccport-access-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&log_path);
    let run_gate = Gate::new();
    let (server, addr) = start(ServerConfig {
        workers: 8,
        run_gate: Some(run_gate.clone()),
        access_log: Some(log_path.clone()),
        ..Default::default()
    });

    const N: usize = 4;
    let released = AtomicBool::new(false);
    let results: Vec<(String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || run_traced(&addr, MULTI, &[]))
            })
            .collect();
        run_gate.wait_parked(1);
        while server.flights().waiting() < (N - 1) as u64 {
            std::thread::yield_now();
        }
        released.store(true, Ordering::SeqCst);
        run_gate.open();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(released.load(Ordering::SeqCst));
    assert_eq!(server.flights().led(), 1);
    assert_eq!(server.flights().coalesced(), (N - 1) as u64);

    // Every follower's response names the leader's trace…
    for (id, body) in &results {
        assert_eq!(id, &results[0].0, "one flight, one trace id");
        assert_eq!(body, &results[0].1);
    }
    // …and the recorder holds exactly that one execution.
    assert_eq!(server.recorder().occupancy(), 1);
    let (status, _) = fetch_trace(&addr, &results[0].0, "");
    assert_eq!(status, 200);

    stop(server);
    let log = std::fs::read_to_string(&log_path).unwrap();
    let _ = std::fs::remove_file(&log_path);
    let runs: Vec<Json> = log
        .lines()
        .map(|l| json::parse(l).expect("access log lines are JSON"))
        .filter(|v| v.get("route").and_then(Json::as_str) == Some("run"))
        .collect();
    assert_eq!(runs.len(), N, "one access-log line per handled request");
    let led = runs
        .iter()
        .filter(|v| v.get("role").and_then(Json::as_str) == Some("led"))
        .count();
    let coalesced = runs
        .iter()
        .filter(|v| v.get("role").and_then(Json::as_str) == Some("coalesced"))
        .count();
    assert_eq!((led, coalesced), (1, N - 1), "the log says which led");
    for v in &runs {
        assert_eq!(
            v.get("trace_id").and_then(Json::as_str),
            Some(results[0].0.as_str())
        );
        assert_eq!(v.get("status").and_then(Json::as_f64), Some(200.0));
        assert!(v.get("queue_depth").and_then(Json::as_f64).is_some());
        assert!(v.get("service_s").and_then(Json::as_f64).unwrap() > 0.0);
    }
}

#[test]
fn client_supplied_trace_identity_wins_and_is_echoed() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    let (server, addr) = start(ServerConfig::default());

    // X-Request-Id (a valid 32-hex id) is adopted verbatim.
    let custom = "deadbeefdeadbeefdeadbeefdeadbeef";
    let (id, _) = run_traced(&addr, MULTI, &[("X-Request-Id", custom)]);
    assert_eq!(id, custom);
    assert_eq!(fetch_trace(&addr, custom, "").0, 200);

    // A W3C traceparent header outranks X-Request-Id.
    let parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01";
    let r = http::request(
        &addr,
        "POST",
        "/run",
        &[("traceparent", parent), ("X-Request-Id", custom)],
        MULTI,
    )
    .unwrap();
    assert_eq!(
        r.header("x-request-id"),
        Some("0123456789abcdef0123456789abcdef")
    );
    let echoed = r.header("traceparent").expect("traceparent echoed");
    assert!(echoed.starts_with("00-0123456789abcdef0123456789abcdef-"));

    // An invalid X-Request-Id falls back to the derived id — which is
    // the same id an unadorned request gets.
    let (derived, _) = run_traced(&addr, MULTI, &[]);
    let (fallback, _) = run_traced(&addr, MULTI, &[("X-Request-Id", "not hex!")]);
    assert_eq!(derived, fallback);
    stop(server);
}

#[test]
fn unknown_traces_404_and_the_index_lists_recent_flights() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    let (server, addr) = start(ServerConfig {
        recorder_cap: 2,
        ..Default::default()
    });
    let (status, body) = fetch_trace(&addr, "ffffffffffffffffffffffffffffffff", "");
    assert_eq!(status, 404);
    assert!(body.contains("flight recorder keeps the last 2"), "{body}");

    let (id, _) = run_traced(&addr, MULTI, &[]);
    let r = http::request(&addr, "GET", "/traces", &[], "").unwrap();
    assert_eq!(r.status, 200);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("cap").and_then(Json::as_f64), Some(2.0));
    assert_eq!(v.get("occupancy").and_then(Json::as_f64), Some(1.0));
    let traces = v.get("traces").and_then(Json::as_arr).unwrap();
    assert_eq!(
        traces[0].get("trace_id").and_then(Json::as_str),
        Some(id.as_str())
    );

    // Bad query parameters are typed 400s, not silent defaults.
    let (s, b) = fetch_trace(&addr, &id, "?format=svg");
    assert_eq!(s, 400, "{b}");
    let (s, b) = fetch_trace(&addr, &id, "?fmt=chrome");
    assert_eq!(s, 400);
    assert!(b.contains("unknown query parameter"), "{b}");
    stop(server);
}

#[test]
fn metrics_histograms_carry_exemplars_naming_recorded_traces() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    let (server, addr) = start(ServerConfig::default());
    let (id, _) = run_traced(&addr, MULTI, &[]);
    let m = http::request(&addr, "GET", "/metrics", &[], "").unwrap();
    assert_eq!(m.status, 200);
    let bucket_line = m
        .body
        .lines()
        .find(|l| {
            l.starts_with("serve_request_seconds_bucket")
                && l.contains("route=\"run\"")
                && l.contains(&format!("# {{trace_id=\"{id}\"}}"))
        })
        .unwrap_or_else(|| panic!("no exemplar naming trace {id} in:\n{}", m.body));
    assert!(bucket_line.contains("status=\"200\""), "{bucket_line}");
    stop(server);
}

#[test]
fn loadgen_service_hist_matches_a_metrics_scrape_bucket_for_bucket() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    // The registry is process-global and other tests in this binary
    // also observe serve_request_seconds; reset so the scrape counts
    // exactly this loadgen run against this fresh server.
    paccport_trace::metrics::reset_metrics();
    let (server, addr) = start(ServerConfig::default());
    let trace_dir = std::env::temp_dir().join(format!(
        "paccport-traces-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let report = loadgen::run(&loadgen::LoadgenConfig {
        addr: addr.clone(),
        rps: 4,
        steps: 3,
        seed: 42,
        sample_traces: 2,
        trace_dir: Some(trace_dir.display().to_string()),
        ..Default::default()
    })
    .unwrap();
    let v = json::parse(&report).unwrap();

    // Sampled traces landed on disk and re-fetch byte-identically.
    let sampled = v.get("sampled_traces").and_then(Json::as_arr).unwrap();
    assert_eq!(sampled.len(), 2);
    for s in sampled {
        let id = s.get("trace_id").and_then(Json::as_str).unwrap();
        let on_disk = std::fs::read_to_string(trace_dir.join(format!("{id}.json"))).unwrap();
        let (status, live) = fetch_trace(&addr, id, "");
        assert_eq!(status, 200);
        assert_eq!(on_disk, live, "sampled trace file matches the recorder");
    }
    let _ = std::fs::remove_dir_all(&trace_dir);

    // Cross-check: the report's cumulative buckets equal the server's
    // own serve_request_seconds rendering, le for le.
    let hist = v.get("service_hist").unwrap();
    let s200 = hist.get("by_status").and_then(|s| s.get("200")).unwrap();
    let pairs: Vec<(String, u64)> = s200
        .get("buckets")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|b| {
            (
                b.get("le").and_then(Json::as_str).unwrap().to_string(),
                b.get("cum").and_then(Json::as_f64).unwrap() as u64,
            )
        })
        .collect();
    assert!(!pairs.is_empty());
    let m = http::request(&addr, "GET", "/metrics", &[], "").unwrap();
    for (le, cum) in &pairs {
        let want = format!(
            "serve_request_seconds_bucket{{route=\"run\",status=\"200\",le=\"{le}\"}} {cum}"
        );
        assert!(
            m.body.lines().any(|l| l.starts_with(&want)),
            "scrape disagrees with report at le={le}: wanted `{want}` in:\n{}",
            m.body
        );
    }
    // Totals agree too.
    let count = s200.get("count").and_then(Json::as_f64).unwrap() as u64;
    assert!(m.body.lines().any(|l| l.starts_with(&format!(
        "serve_request_seconds_count{{route=\"run\",status=\"200\"}} {count}"
    ))));
    stop(server);
}
