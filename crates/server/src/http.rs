//! A deliberately small HTTP/1.1 implementation over `std::net` —
//! just the subset the experiment server speaks: one request per
//! connection (`Connection: close`), `Content-Length` bodies, chunked
//! transfer encoding for streamed responses, and a matching client
//! used by the load generator and the protocol tests. No third-party
//! dependencies, by design (see ROADMAP: the offline build is a
//! feature).
//!
//! Parsing is defensive and failures are *typed*: a malformed request
//! maps to a status code plus an actionable one-line message, never a
//! panic or a hang. Bodies and header blocks are size-capped so a
//! misbehaving client cannot balloon server memory.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body; larger bodies are refused with 413.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Upper bound on the request line + headers together.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed inbound request. Header names are lowercased at parse
/// time; values keep their bytes.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request we refuse: HTTP status plus a one-line human message.
#[derive(Debug)]
pub struct Refusal {
    pub status: u16,
    pub message: String,
}

impl Refusal {
    fn new(status: u16, message: impl Into<String>) -> Refusal {
        Refusal {
            status,
            message: message.into(),
        }
    }
}

/// Read one request off the connection. The outer `io::Result` is
/// transport failure (peer vanished — just drop the connection); the
/// inner result is a protocol refusal to answer with a 4xx.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, Refusal>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;
    reader.read_line(&mut line)?;
    head_bytes += line.len();
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v)
        }
        _ => {
            return Ok(Err(Refusal::new(
                400,
                format!("malformed request line: `{request_line}`"),
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(Refusal::new(
            505,
            format!("unsupported protocol version `{version}`"),
        )));
    }
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(Err(Refusal::new(400, "connection closed mid-headers")));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(Err(Refusal::new(
                431,
                format!("header block exceeds {MAX_HEAD_BYTES} bytes"),
            )));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(Err(Refusal::new(
                400,
                format!("malformed header line: `{trimmed}`"),
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => {
                    return Ok(Err(Refusal::new(
                        400,
                        format!("unparseable Content-Length: `{value}`"),
                    )))
                }
            }
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(Refusal::new(
            413,
            format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        )));
    }
    let mut body_bytes = vec![0u8; content_length];
    reader.read_exact(&mut body_bytes)?;
    let body = match String::from_utf8(body_bytes) {
        Ok(b) => b,
        Err(_) => return Ok(Err(Refusal::new(400, "request body is not valid UTF-8"))),
    };
    Ok(Ok(Request {
        method,
        path,
        headers,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Write a complete (non-chunked) response and flush it.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One-line JSON error body (always newline-terminated).
pub fn error_body(message: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}\n",
        paccport_trace::json::escape(message)
    )
}

/// Answer a [`Refusal`] (or any error) as a one-line JSON 4xx/5xx.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    respond(
        stream,
        status,
        "application/json",
        &[],
        &error_body(message),
    )
}

/// Open a chunked response; follow with [`write_chunk`] calls and a
/// final [`finish_chunked`].
pub fn start_chunked(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        reason(status)
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())
}

/// Emit one chunk (one progress event, in the server's usage) and
/// flush so the peer sees it immediately.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the stream
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// A client-side response. For chunked responses, `chunks` preserves
/// the wire framing (one element per chunk) and `body` is their
/// concatenation.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
    pub chunks: Option<Vec<String>>,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one request on a fresh connection and read the full
/// response (decoding chunked framing when the server streams).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Parse a response off `stream` (client side).
pub fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status_line = line.trim_end_matches(['\r', '\n']);
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("malformed status line: `{status_line}`")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| bad(&format!("malformed header: `{trimmed}`")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().ok();
        }
        if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        headers.push((name, value));
    }
    if chunked {
        let mut chunks = Vec::new();
        loop {
            line.clear();
            reader.read_line(&mut line)?;
            let size = usize::from_str_radix(line.trim_end_matches(['\r', '\n']), 16)
                .map_err(|_| bad(&format!("malformed chunk size: `{}`", line.trim_end())))?;
            if size == 0 {
                // Trailing CRLF after the last-chunk marker.
                line.clear();
                let _ = reader.read_line(&mut line);
                break;
            }
            let mut data = vec![0u8; size];
            reader.read_exact(&mut data)?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            chunks.push(String::from_utf8(data).map_err(|_| bad("chunk is not UTF-8"))?);
        }
        let body = chunks.concat();
        return Ok(Response {
            status,
            headers,
            body,
            chunks: Some(chunks),
        });
    }
    let body = match content_length {
        Some(n) => {
            let mut bytes = vec![0u8; n];
            reader.read_exact(&mut bytes)?;
            String::from_utf8(bytes).map_err(|_| bad("body is not UTF-8"))?
        }
        None => {
            let mut s = String::new();
            reader.read_to_string(&mut s)?;
            s
        }
    };
    Ok(Response {
        status,
        headers,
        body,
        chunks: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serve exactly one connection with `f` on a background thread;
    /// returns the address to hit.
    fn one_shot(
        f: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            f(&mut stream);
        });
        (addr, h)
    }

    #[test]
    fn round_trips_a_simple_request() {
        let (addr, h) = one_shot(|stream| {
            let req = read_request(stream).unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.header("x-tenant"), Some("alice"));
            assert_eq!(req.body, "{\"k\":1}");
            respond(stream, 200, "application/json", &[], "{\"ok\":true}\n").unwrap();
        });
        let resp = request(&addr, "POST", "/run", &[("X-Tenant", "alice")], "{\"k\":1}").unwrap();
        h.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":true}\n");
        assert!(resp.chunks.is_none());
    }

    #[test]
    fn chunked_responses_preserve_framing() {
        let (addr, h) = one_shot(|stream| {
            let _ = read_request(stream).unwrap().unwrap();
            start_chunked(stream, 200, "application/x-ndjson", &[]).unwrap();
            write_chunk(stream, "{\"event\":\"start\"}\n").unwrap();
            write_chunk(stream, "{\"event\":\"cell\"}\n").unwrap();
            write_chunk(stream, "{\"event\":\"done\"}\n").unwrap();
            finish_chunked(stream).unwrap();
        });
        let resp = request(&addr, "POST", "/stream", &[], "{}").unwrap();
        h.join().unwrap();
        assert_eq!(resp.status, 200);
        let chunks = resp.chunks.expect("chunked framing visible to client");
        assert_eq!(chunks.len(), 3, "one chunk per event");
        assert!(chunks.iter().all(|c| c.ends_with('\n')));
        assert_eq!(resp.body, chunks.concat());
    }

    #[test]
    fn refusals_are_typed_not_fatal() {
        let (addr, h) = one_shot(|stream| {
            let refusal = read_request(stream).unwrap().unwrap_err();
            assert_eq!(refusal.status, 400);
            respond_error(stream, refusal.status, &refusal.message).unwrap();
        });
        // Hand-written garbage request line.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let resp = read_response(&mut stream).unwrap();
        h.join().unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body.starts_with("{\"error\":\"malformed request line"));
        assert!(resp.body.ends_with("\n"));
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let (addr, h) = one_shot(|stream| {
            let refusal = read_request(stream).unwrap().unwrap_err();
            assert_eq!(refusal.status, 413);
            respond_error(stream, refusal.status, &refusal.message).unwrap();
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let resp = read_response(&mut stream).unwrap();
        h.join().unwrap();
        assert_eq!(resp.status, 413);
        assert!(resp.body.contains("exceeds"));
    }
}
