//! The experiment-request wire protocol: JSON in, deterministic JSON
//! out.
//!
//! A request names a slice of the experiment matrix —
//! `(benchmark × variant × target × scale × seed)`, with `*`
//! wildcards — and the response reports one entry per matched cell in
//! matrix submission order. Everything rendered here is a pure
//! function of `(request, seed)`: modeled timings, transfer counts
//! and buffer checksums come from the deterministic simulator, float
//! formatting uses Rust's shortest-round-trip rendering, and no
//! wall-clock, thread or scheduling detail ever reaches the body.
//! That is the property the snapshot tests and the loadgen
//! determinism proof lean on.

use paccport_core::serve::CellOutcome;
use paccport_trace::json::{escape, Json};

/// A parsed `/run` / `/stream` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    pub benchmark: String,
    pub variant: String,
    pub target: String,
    pub scale: String,
    pub seed: u64,
}

fn field(obj: &Json, key: &str, default: &str) -> Result<String, String> {
    match obj.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("field `{key}` must be a JSON string")),
    }
}

impl RunRequest {
    /// Parse a request body. Coordinates default to `*` (the whole
    /// matrix), `scale` to `smoke`, `seed` to 0; errors are one-line
    /// and name the offending field.
    pub fn parse(body: &str) -> Result<RunRequest, String> {
        if body.trim().is_empty() {
            return Err("empty body; expected a JSON object like \
                 {\"benchmark\":\"LUD\",\"variant\":\"Base\",\"target\":\"CAPS-CUDA-K40\"}"
                .to_string());
        }
        let v = paccport_trace::json::parse(body).map_err(|e| format!("malformed JSON: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err("body must be a JSON object".to_string());
        }
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => {
                let f = s
                    .as_f64()
                    .ok_or_else(|| "field `seed` must be a non-negative integer".to_string())?;
                if f < 0.0 || f.fract() != 0.0 || f > 2f64.powi(53) {
                    return Err("field `seed` must be a non-negative integer".to_string());
                }
                f as u64
            }
        };
        Ok(RunRequest {
            benchmark: field(&v, "benchmark", "*")?,
            variant: field(&v, "variant", "*")?,
            target: field(&v, "target", "*")?,
            scale: field(&v, "scale", "smoke")?,
            seed,
        })
    }

    /// Canonical coalescing key: two requests with the same key are
    /// guaranteed the same response body, so concurrent duplicates
    /// can share one execution.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.benchmark.to_ascii_lowercase(),
            self.variant.to_ascii_lowercase(),
            self.target.to_ascii_lowercase(),
            self.scale,
            self.seed
        )
    }

    /// The request echo embedded in every response body.
    pub fn echo(&self) -> String {
        format!(
            "\"benchmark\":\"{}\",\"variant\":\"{}\",\"target\":\"{}\",\"scale\":\"{}\",\"seed\":{}",
            escape(&self.benchmark),
            escape(&self.variant),
            escape(&self.target),
            escape(&self.scale),
            self.seed
        )
    }
}

/// One cell's entry in a response: either its deterministic outcome
/// or a typed failure (quarantined under fault injection).
pub enum CellReport {
    Ok(CellOutcome),
    Failed {
        benchmark: String,
        variant: String,
        target: String,
        reason: String,
        attempts: u32,
        injected: bool,
    },
}

impl CellReport {
    pub fn render(&self) -> String {
        match self {
            CellReport::Ok(o) => format!(
                "{{\"benchmark\":\"{}\",\"variant\":\"{}\",\"target\":\"{}\",\"status\":\"ok\",\
                 \"seconds\":{},\"kernel_seconds\":{},\"transfer_seconds\":{},\
                 \"launches\":{},\"h2d\":{},\"d2h\":{},\"on_device\":{},\
                 \"while_iterations\":{},\"checksum\":\"{:016x}\"}}",
                escape(&o.benchmark),
                escape(&o.variant),
                escape(&o.target),
                o.seconds,
                o.kernel_seconds,
                o.transfer_seconds,
                o.launches,
                o.h2d,
                o.d2h,
                o.on_device,
                o.while_iterations,
                o.checksum
            ),
            CellReport::Failed {
                benchmark,
                variant,
                target,
                reason,
                attempts,
                injected,
            } => format!(
                "{{\"benchmark\":\"{}\",\"variant\":\"{}\",\"target\":\"{}\",\
                 \"status\":\"failed\",\"error\":\"{}\",\"attempts\":{},\"injected\":{}}}",
                escape(benchmark),
                escape(variant),
                escape(target),
                escape(reason),
                attempts,
                injected
            ),
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, CellReport::Ok(_))
    }
}

/// Assemble the full (non-streaming) response body for a request.
/// Returns `(http_status, body)`: 200 while at least one cell
/// succeeded, 500 when every matched cell failed (the typed-error
/// shape a single-cell request surfaces under quarantine).
pub fn render_response(req: &RunRequest, cells: &[CellReport]) -> (u16, String) {
    let ok = cells.iter().filter(|c| c.is_ok()).count();
    let failed = cells.len() - ok;
    let status_word = if failed == 0 {
        "ok"
    } else if ok == 0 {
        "failed"
    } else {
        "degraded"
    };
    let http = if ok == 0 && failed > 0 { 500 } else { 200 };
    let rendered: Vec<String> = cells.iter().map(|c| c.render()).collect();
    let body = format!(
        "{{\"status\":\"{status_word}\",{},\"cells\":[{}],\"ok\":{ok},\"failed\":{failed}}}\n",
        req.echo(),
        rendered.join(",")
    );
    (http, body)
}

/// One streamed progress event per line (the chunked route emits one
/// chunk per event).
pub fn event_start(req: &RunRequest, cells: usize) -> String {
    format!("{{\"event\":\"start\",{},\"cells\":{cells}}}\n", req.echo())
}

pub fn event_cell(index: usize, report: &CellReport) -> String {
    format!(
        "{{\"event\":\"cell\",\"index\":{index},\"cell\":{}}}\n",
        report.render()
    )
}

pub fn event_done(ok: usize, failed: usize) -> String {
    format!("{{\"event\":\"done\",\"ok\":{ok},\"failed\":{failed}}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = RunRequest::parse(
            "{\"benchmark\":\"LUD\",\"variant\":\"Base\",\"target\":\"CAPS-CUDA-K40\",\
             \"scale\":\"smoke\",\"seed\":7}",
        )
        .unwrap();
        assert_eq!(r.benchmark, "LUD");
        assert_eq!(r.seed, 7);
        assert_eq!(r.key(), "lud|base|caps-cuda-k40|smoke|7");
    }

    #[test]
    fn defaults_are_wildcards_smoke_and_seed_zero() {
        let r = RunRequest::parse("{}").unwrap();
        assert_eq!(
            r,
            RunRequest {
                benchmark: "*".into(),
                variant: "*".into(),
                target: "*".into(),
                scale: "smoke".into(),
                seed: 0
            }
        );
    }

    #[test]
    fn key_is_case_insensitive_on_coordinates() {
        let a = RunRequest::parse("{\"benchmark\":\"LUD\"}").unwrap();
        let b = RunRequest::parse("{\"benchmark\":\"lud\"}").unwrap();
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn errors_are_one_line_and_actionable() {
        for (body, want) in [
            ("", "empty body"),
            ("{not json", "malformed JSON"),
            ("{\"seed\":-1}", "`seed` must be a non-negative integer"),
            ("{\"seed\":1.5}", "`seed` must be a non-negative integer"),
            ("{\"benchmark\":7}", "`benchmark` must be a JSON string"),
        ] {
            let err = RunRequest::parse(body).unwrap_err();
            assert!(err.contains(want), "{body:?} => {err}");
            assert!(!err.contains('\n'), "one-line: {err}");
        }
    }

    #[test]
    fn failed_only_responses_are_500_with_typed_cells() {
        let req = RunRequest::parse("{\"benchmark\":\"LUD\"}").unwrap();
        let cells = vec![CellReport::Failed {
            benchmark: "LUD".into(),
            variant: "Base".into(),
            target: "CAPS-CUDA-K40".into(),
            reason: "[injected] device fault".into(),
            attempts: 3,
            injected: true,
        }];
        let (status, body) = render_response(&req, &cells);
        assert_eq!(status, 500);
        assert!(body.contains("\"status\":\"failed\""));
        assert!(body.contains("\"attempts\":3"));
        assert!(body.contains("\"injected\":true"));
        assert!(body.ends_with('\n'));
        // The body itself is valid JSON.
        paccport_trace::json::parse(&body).unwrap();
    }
}
