//! `reproduce loadgen` — a seeded, deterministic load generator and
//! SLO reporter for the experiment server.
//!
//! Two sources of nondeterminism normally make load-test reports
//! unreproducible: wall-clock scheduling on the client and wall-clock
//! service times on the server. This generator removes both.
//!
//! * The **schedule** is a pure function of `--seed`: which cell each
//!   request names, which requests are duplicates (exercising the
//!   server's coalescing), and which tenant issues them are all drawn
//!   from a splitmix64 stream.
//! * The **latency model** runs on a virtual clock: request *i* of
//!   step *s* arrives at `s·1e9 + slot·(1e9/rps)` virtual
//!   nanoseconds, and its service time is the *modeled* seconds the
//!   server reports in the response body (the simulator's analytic
//!   timings — themselves deterministic). Latencies come from
//!   replaying that arrival/service schedule through a fixed-width
//!   FCFS queue, not from measuring the wire.
//!
//! The report therefore depends only on `(seed, rps, steps,
//! dup-ratio, scale, server determinism)` — two runs against fresh
//! servers are byte-identical, which is exactly what the CI serve
//! gate `cmp`s. Per-request FNV body checksums are included, so the
//! report also *proves* duplicate responses were byte-identical.

use paccport_trace::json::{escape, Json};
use paccport_trace::metrics::{bucket_bound, Histogram};

use crate::http;

/// Knobs for one load run. `rps` is requests per virtual step (the
/// schedule is virtual-clock driven; the wire runs as fast as it
/// can).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    pub addr: String,
    pub rps: u32,
    pub steps: u32,
    pub seed: u64,
    /// Probability a request repeats the previous one (coalescing
    /// exercise); the schedule still comes out deterministic.
    pub dup_ratio: f64,
    pub scale: String,
    /// Rotate `X-Tenant: t0..t{n-1}` over requests; 0 sends none.
    pub tenants: u32,
    /// Virtual-latency SLO threshold, in virtual milliseconds.
    pub slo_ms: f64,
    /// Fixed width of the virtual FCFS service model.
    pub model_servers: u32,
    /// POST /shutdown after the run (graceful drain).
    pub shutdown_after: bool,
    /// Scrape /metrics after the run and embed deterministic
    /// counters (compile_total, serve_requests_total) in the report.
    pub scrape_metrics: bool,
    /// Fetch `GET /trace/<id>` for the first N distinct trace ids
    /// (in schedule order) and embed their body checksums.
    pub sample_traces: u32,
    /// Where to write sampled trace bodies as `<id>.json`; without a
    /// directory the bodies are fetched and checksummed only.
    pub trace_dir: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            rps: 4,
            steps: 3,
            seed: 42,
            dup_ratio: 0.25,
            scale: "smoke".into(),
            tenants: 0,
            slo_ms: 400.0,
            model_servers: 2,
            shutdown_after: false,
            scrape_metrics: false,
            sample_traces: 0,
            trace_dir: None,
        }
    }
}

/// splitmix64: the same construction the proptest shim uses; cheap,
/// seedable, and good enough to decorrelate schedule draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One scheduled request: coordinates plus schedule metadata.
struct Planned {
    step: u32,
    slot: u32,
    body: String,
    benchmark: String,
    variant: String,
    target: String,
    tenant: Option<String>,
    dup: bool,
}

/// One served request: the plan plus what came back.
struct Served {
    plan: Planned,
    status: u16,
    body_fnv: u64,
    /// Modeled service seconds summed over the response's cells.
    service_s: f64,
    failed_cells: u64,
    /// The `X-Request-Id` the server answered with: names the flight
    /// recorder entry this response came from (coalesced duplicates
    /// share the leader's id).
    trace_id: String,
}

/// Build the deterministic request schedule for `cfg`.
fn plan(cfg: &LoadgenConfig) -> Result<Vec<Planned>, String> {
    let scale = paccport_core::serve::scale_by_name(&cfg.scale)
        .ok_or_else(|| format!("unknown scale `{}`; known: smoke, quick, paper", cfg.scale))?;
    let pool = paccport_core::serve::matrix(&scale);
    if pool.is_empty() {
        return Err("empty experiment matrix".to_string());
    }
    let mut rng = Rng(cfg.seed | 1);
    let mut out = Vec::new();
    let mut prev: Option<(String, String, String)> = None;
    let mut counter = 0u32;
    for step in 0..cfg.steps {
        for slot in 0..cfg.rps {
            let coords = match &prev {
                Some(p) if rng.unit() < cfg.dup_ratio => p.clone(),
                _ => {
                    let cell = &pool[(rng.next() as usize) % pool.len()];
                    (
                        cell.benchmark.clone(),
                        cell.variant.clone(),
                        cell.series.clone(),
                    )
                }
            };
            let dup = prev.as_ref() == Some(&coords);
            prev = Some(coords.clone());
            let tenant = if cfg.tenants > 0 {
                let t = format!("t{}", counter % cfg.tenants);
                counter += 1;
                Some(t)
            } else {
                None
            };
            let body = format!(
                "{{\"benchmark\":\"{}\",\"variant\":\"{}\",\"target\":\"{}\",\"scale\":\"{}\",\"seed\":{}}}",
                coords.0, coords.1, coords.2, cfg.scale, cfg.seed
            );
            out.push(Planned {
                step,
                slot,
                body,
                benchmark: coords.0,
                variant: coords.1,
                target: coords.2,
                tenant,
                dup,
            });
        }
    }
    Ok(out)
}

/// Issue one planned request, retrying 429 backpressure (the retry
/// count deliberately stays out of the report — backpressure timing
/// is scheduling-dependent; the final response is not).
fn issue(addr: &str, p: &Planned) -> Result<(u16, String, String), String> {
    for _ in 0..200 {
        let headers: Vec<(&str, &str)> = match &p.tenant {
            Some(t) => vec![("X-Tenant", t.as_str())],
            None => vec![],
        };
        let resp = http::request(addr, "POST", "/run", &headers, &p.body)
            .map_err(|e| format!("request to {addr} failed: {e}"))?;
        if resp.status == 429 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            continue;
        }
        let trace_id = resp.header("x-request-id").unwrap_or("").to_string();
        return Ok((resp.status, resp.body, trace_id));
    }
    Err("server kept answering 429 for 200 attempts".to_string())
}

/// Sum of modeled per-cell seconds in a response body, plus how many
/// cells failed. Failed cells model as a fixed 1ms of service.
fn parse_service(body: &str) -> (f64, u64) {
    let Ok(v) = paccport_trace::json::parse(body) else {
        return (0.001, 0);
    };
    let mut service = 0.0f64;
    let mut failed = 0u64;
    if let Some(cells) = v.get("cells").and_then(Json::as_arr) {
        for c in cells {
            match c.get("seconds").and_then(Json::as_f64) {
                Some(s) => service += s,
                None => {
                    failed += 1;
                    service += 0.001;
                }
            }
        }
    }
    (service, failed)
}

/// Replay the virtual schedule through a fixed-width FCFS queue and
/// return per-request latencies in virtual nanoseconds.
fn model_latencies(cfg: &LoadgenConfig, served: &[Served]) -> Vec<u64> {
    let gap = 1_000_000_000u64 / cfg.rps.max(1) as u64;
    let width = cfg.model_servers.max(1) as usize;
    let mut free_at = vec![0u64; width];
    let mut latencies = Vec::with_capacity(served.len());
    for s in served {
        let arrival = s.plan.step as u64 * 1_000_000_000 + s.plan.slot as u64 * gap;
        let service_ns = (s.service_s * 1e9).ceil() as u64;
        // FCFS: take the earliest-free virtual server.
        let (idx, &free) = free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one model server");
        let start = arrival.max(free);
        free_at[idx] = start + service_ns;
        latencies.push(start + service_ns - arrival);
    }
    latencies
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Deterministic counters worth embedding in the report: compile and
/// request totals are pure functions of the schedule against a fresh
/// server (coalescing counters, which depend on timing, are not).
fn scrape(addr: &str) -> Result<String, String> {
    let resp = http::request(addr, "GET", "/metrics", &[], "")
        .map_err(|e| format!("metrics scrape failed: {e}"))?;
    let mut compile_total = 0u64;
    let mut requests_run = 0u64;
    for line in resp.body.lines() {
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let v: u64 = value.parse().unwrap_or(0);
        if name.starts_with("compile_total") {
            compile_total += v;
        }
        if name.starts_with("serve_requests_total") && name.contains("route=\"run\"") {
            requests_run += v;
        }
    }
    Ok(format!(
        "{{\"compile_total\":{compile_total},\"serve_requests_total_run\":{requests_run}}}"
    ))
}

/// Per-status service-time histograms over the run's requests, built
/// with the *same* log₂ buckets the server feeds `/metrics`. The
/// server observes the identical modeled seconds per request, so
/// against a fresh server the cumulative bucket counts here match a
/// `serve_request_seconds_bucket{route="run",…}` scrape line for
/// line — the trace integration tests cross-check exactly that.
fn service_hist_json(served: &[Served]) -> String {
    let mut by_status: std::collections::BTreeMap<u16, Histogram> = Default::default();
    for s in served {
        by_status.entry(s.status).or_default().observe(s.service_s);
    }
    let statuses: Vec<String> = by_status
        .iter()
        .map(|(status, h)| {
            // Cumulative counts at each occupied bucket bound, keyed
            // by the same `le` strings the Prometheus renderer emits.
            let mut cum = 0u64;
            let mut buckets: Vec<String> = Vec::new();
            for (i, n) in h.buckets.iter().enumerate() {
                cum += n;
                if *n == 0 {
                    continue;
                }
                let le = match bucket_bound(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                buckets.push(format!("{{\"le\":\"{le}\",\"cum\":{cum}}}"));
            }
            format!(
                "\"{status}\":{{\"count\":{},\"p50_s\":{},\"p90_s\":{},\"p99_s\":{},\
                 \"buckets\":[{}]}}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                buckets.join(",")
            )
        })
        .collect();
    format!(
        "{{\"route\":\"run\",\"by_status\":{{{}}}}}",
        statuses.join(",")
    )
}

/// Fetch the first `n` distinct trace ids (schedule order) from the
/// server's flight recorder; bodies are checksummed into the report
/// and optionally written to `dir` as `<id>.json`.
fn sample_traces(
    addr: &str,
    served: &[Served],
    n: u32,
    dir: &Option<String>,
) -> Result<String, String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut entries: Vec<String> = Vec::new();
    for s in served {
        if (entries.len() as u32) >= n {
            break;
        }
        if s.trace_id.is_empty() || !seen.insert(s.trace_id.as_str()) {
            continue;
        }
        let resp = http::request(addr, "GET", &format!("/trace/{}", s.trace_id), &[], "")
            .map_err(|e| format!("trace fetch failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "trace `{}` not in the flight recorder (HTTP {}); \
                 raise --recorder-cap or sample fewer traces",
                s.trace_id, resp.status
            ));
        }
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
            let path = std::path::Path::new(dir).join(format!("{}.json", s.trace_id));
            std::fs::write(&path, &resp.body)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        entries.push(format!(
            "{{\"trace_id\":\"{}\",\"body_fnv\":\"{:016x}\"}}",
            s.trace_id,
            fnv1a64(resp.body.as_bytes())
        ));
    }
    Ok(format!("[{}]", entries.join(",")))
}

/// Run the load, model the latencies, and render the SLO report —
/// a single deterministic JSON document.
pub fn run(cfg: &LoadgenConfig) -> Result<String, String> {
    let planned = plan(cfg)?;
    let mut served: Vec<Served> = Vec::with_capacity(planned.len());
    // Requests within a step go out concurrently (that is what makes
    // duplicates coalesce server-side); steps are sequential. Results
    // are keyed back to (step, slot), so report order is schedule
    // order no matter how the wire interleaves.
    let mut by_step: std::collections::BTreeMap<u32, Vec<Planned>> = Default::default();
    for p in planned {
        by_step.entry(p.step).or_default().push(p);
    }
    for (_, batch) in by_step {
        let outcomes: Vec<Result<(u16, String, String), String>> = std::thread::scope(|s| {
            let handles: Vec<_> = batch
                .iter()
                .map(|p| s.spawn(|| issue(&cfg.addr, p)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (p, outcome) in batch.into_iter().zip(outcomes) {
            let (status, body, trace_id) = outcome?;
            let (service_s, failed_cells) = parse_service(&body);
            served.push(Served {
                plan: p,
                status,
                body_fnv: fnv1a64(body.as_bytes()),
                service_s,
                failed_cells,
                trace_id,
            });
        }
    }
    let latencies = model_latencies(cfg, &served);
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let violations = sorted
        .iter()
        .filter(|&&l| l as f64 > cfg.slo_ms * 1e6)
        .count();
    let makespan_ns = served
        .iter()
        .zip(&latencies)
        .map(|(s, &l)| {
            s.plan.step as u64 * 1_000_000_000
                + s.plan.slot as u64 * (1_000_000_000 / cfg.rps.max(1) as u64)
                + l
        })
        .max()
        .unwrap_or(1);
    let throughput = served.len() as f64 / (makespan_ns as f64 / 1e9);
    let dup_sent = served.iter().filter(|s| s.plan.dup).count();
    let unique: std::collections::BTreeSet<&str> =
        served.iter().map(|s| s.plan.body.as_str()).collect();
    let ok = served.iter().filter(|s| s.status == 200).count();
    let failed_cells: u64 = served.iter().map(|s| s.failed_cells).sum();
    let requests: Vec<String> = served
        .iter()
        .map(|s| {
            format!(
                "{{\"step\":{},\"slot\":{},\"benchmark\":\"{}\",\"variant\":\"{}\",\
                 \"target\":\"{}\",{}\"dup\":{},\"status\":{},\"body_fnv\":\"{:016x}\",\
                 \"trace_id\":\"{}\"}}",
                s.plan.step,
                s.plan.slot,
                escape(&s.plan.benchmark),
                escape(&s.plan.variant),
                escape(&s.plan.target),
                match &s.plan.tenant {
                    Some(t) => format!("\"tenant\":\"{}\",", escape(t)),
                    None => String::new(),
                },
                s.plan.dup,
                s.status,
                s.body_fnv,
                escape(&s.trace_id)
            )
        })
        .collect();
    let metrics = if cfg.scrape_metrics {
        format!(",\"metrics\":{}", scrape(&cfg.addr)?)
    } else {
        String::new()
    };
    let sampled = if cfg.sample_traces > 0 {
        format!(
            ",\"sampled_traces\":{}",
            sample_traces(&cfg.addr, &served, cfg.sample_traces, &cfg.trace_dir)?
        )
    } else {
        String::new()
    };
    if cfg.shutdown_after {
        http::request(&cfg.addr, "POST", "/shutdown", &[], "")
            .map_err(|e| format!("shutdown request failed: {e}"))?;
    }
    Ok(format!(
        "{{\"seed\":{},\"rps\":{},\"steps\":{},\"scale\":\"{}\",\"dup_ratio\":{},\
         \"requests\":{},\"dup_sent\":{dup_sent},\"unique_bodies\":{},\
         \"http_ok\":{ok},\"http_error\":{},\"failed_cells\":{failed_cells},\
         \"latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},\
         \"throughput_rps\":{throughput},\
         \"slo\":{{\"threshold_ms\":{},\"violations\":{violations},\"met\":{}}},\
         \"service_hist\":{}{metrics}{sampled},\
         \"per_request\":[{}]}}\n",
        cfg.seed,
        cfg.rps,
        cfg.steps,
        escape(&cfg.scale),
        cfg.dup_ratio,
        served.len(),
        unique.len(),
        served.len() - ok,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.90),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
        cfg.slo_ms,
        violations == 0,
        service_hist_json(&served),
        requests.join(",")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            rps: 4,
            steps: 3,
            seed,
            dup_ratio: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = plan(&cfg(7)).unwrap();
        let b = plan(&cfg(7)).unwrap();
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.body, y.body);
            assert_eq!(x.dup, y.dup);
        }
        let c = plan(&cfg(8)).unwrap();
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.body != y.body),
            "different seeds draw different schedules"
        );
    }

    #[test]
    fn dup_ratio_produces_duplicates() {
        let p = plan(&LoadgenConfig {
            rps: 8,
            steps: 4,
            seed: 3,
            dup_ratio: 0.6,
            ..Default::default()
        })
        .unwrap();
        let dups = p.iter().filter(|r| r.dup).count();
        assert!(dups >= 4, "expected >=4 duplicates, got {dups}");
        let p0 = plan(&LoadgenConfig {
            rps: 8,
            steps: 4,
            seed: 3,
            dup_ratio: 0.0,
            ..Default::default()
        })
        .unwrap();
        // With dup_ratio 0 consecutive repeats can still happen by
        // chance draw, but forced duplication is off.
        assert!(p0.iter().filter(|r| r.dup).count() <= dups);
    }

    #[test]
    fn latency_model_is_fcfs_on_the_virtual_clock() {
        let cfg = LoadgenConfig {
            rps: 2,
            steps: 1,
            model_servers: 1,
            ..Default::default()
        };
        let mk = |step, slot, service_s| Served {
            plan: Planned {
                step,
                slot,
                body: String::new(),
                benchmark: String::new(),
                variant: String::new(),
                target: String::new(),
                tenant: None,
                dup: false,
            },
            status: 200,
            body_fnv: 0,
            service_s,
            failed_cells: 0,
            trace_id: String::new(),
        };
        // Slot 0 occupies the single server for 0.75 vs; slot 1
        // arrives at 0.5 vs and must queue for 0.25 vs.
        let served = vec![mk(0, 0, 0.75), mk(0, 1, 0.25)];
        let lat = model_latencies(&cfg, &served);
        assert_eq!(lat[0], 750_000_000);
        assert_eq!(lat[1], 500_000_000, "0.25s queueing + 0.25s service");
    }

    #[test]
    fn service_hist_uses_metrics_buckets_and_quantiles() {
        let mk = |status, service_s| Served {
            plan: Planned {
                step: 0,
                slot: 0,
                body: String::new(),
                benchmark: String::new(),
                variant: String::new(),
                target: String::new(),
                tenant: None,
                dup: false,
            },
            status,
            body_fnv: 0,
            service_s,
            failed_cells: 0,
            trace_id: String::new(),
        };
        // 0.3 and 0.4 land in the [0.25, 0.5) bucket, 0.7 in
        // [0.5, 1); the 400 goes to its own status series.
        let served = vec![mk(200, 0.3), mk(200, 0.7), mk(200, 0.4), mk(400, 0.001)];
        let text = service_hist_json(&served);
        let v = paccport_trace::json::parse(&text).expect("section is JSON");
        assert_eq!(v.get("route").and_then(Json::as_str), Some("run"));
        let s200 = v.get("by_status").and_then(|s| s.get("200")).unwrap();
        assert_eq!(s200.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(s200.get("p50_s").and_then(Json::as_f64), Some(0.5));
        assert_eq!(s200.get("p99_s").and_then(Json::as_f64), Some(1.0));
        let buckets = s200.get("buckets").and_then(Json::as_arr).unwrap();
        let pairs: Vec<(&str, f64)> = buckets
            .iter()
            .map(|b| {
                (
                    b.get("le").and_then(Json::as_str).unwrap(),
                    b.get("cum").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        assert_eq!(pairs, vec![("0.5", 2.0), ("1", 3.0)], "cumulative counts");
        let s400 = v.get("by_status").and_then(|s| s.get("400")).unwrap();
        assert_eq!(s400.get("count").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 0.50), 50);
        assert_eq!(percentile(&xs, 0.90), 90);
        assert_eq!(percentile(&xs, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
