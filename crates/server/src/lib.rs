//! # paccport-server — the experiment matrix as a persistent service
//!
//! `reproduce serve` turns the one-shot batch CLI into a resident
//! experiment server (ROADMAP open item 3): a hand-rolled HTTP/1.1 +
//! JSON service over `std::net::TcpListener` that accepts requests
//! naming a slice of the paper's benchmark matrix —
//! `(benchmark × variant × target × scale × seed)` — and executes
//! them on the shared work-stealing [`Engine`] against the shared
//! [`ArtifactCache`].
//!
//! The serving layer adds what a batch run never needed:
//!
//! * **admission control** — a bounded queue; when it is full the
//!   server answers `429 Too Many Requests` with `Retry-After`
//!   instead of queueing unboundedly;
//! * **request coalescing** — N identical concurrent requests run
//!   once ([`Singleflight`]) and share one byte-identical body, on
//!   top of the cache's compile-level singleflight;
//! * **capacity policy** — the artifact cache gains an LRU byte cap
//!   and per-tenant quotas keyed by the `X-Tenant` header;
//! * **streaming** — `/stream` emits one chunked progress event per
//!   cell as it completes;
//! * **graceful drain** — SIGTERM or `POST /shutdown` stops
//!   admission, finishes everything in flight, then exits;
//! * **live metrics** — `GET /metrics` renders the PR-5 registry in
//!   Prometheus text format, including the fault-injection ledger.
//!
//! Every response body is a pure function of `(request, seed)`:
//! byte-identical across `--jobs` levels, across repeated requests,
//! and across server restarts. [`loadgen`] leans on that to produce
//! deterministic latency/SLO reports from a virtual-clock model.

pub mod http;
pub mod loadgen;
pub mod protocol;

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use paccport_compilers::ArtifactCache;
use paccport_core::coalesce::{Gate, Singleflight};
use paccport_core::serve::{self, CellOutcome};
use paccport_core::soundness::CheckCell;
use paccport_core::Engine;
use paccport_trace::metrics::counter_add;

use protocol::{CellReport, RunRequest};

/// Tuning and test hooks for [`Server::start`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Engine parallelism inside one request (cells fan out over
    /// this many workers; results keep submission order).
    pub jobs: usize,
    /// Concurrent request handlers.
    pub workers: usize,
    /// Admission queue bound; one more request than this answers 429.
    pub queue_cap: usize,
    /// LRU byte cap for the artifact cache (`None` = unbounded).
    pub cache_bytes: Option<u64>,
    /// Per-tenant cache quota (`None` = unbounded).
    pub tenant_quota: Option<u64>,
    /// Test hook: every request handler passes this gate before
    /// reading the request, so tests can park workers and fill the
    /// admission queue deterministically.
    pub request_gate: Option<Arc<Gate>>,
    /// Test hook: the coalescing leader passes this gate inside its
    /// flight, so tests can pile followers onto it deterministically.
    pub run_gate: Option<Arc<Gate>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            jobs: 1,
            workers: 4,
            queue_cap: 64,
            cache_bytes: None,
            tenant_quota: None,
            request_gate: None,
            run_gate: None,
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    engine: Engine,
    cache: ArtifactCache,
    flights: Singleflight<(u16, String)>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    in_flight: AtomicUsize,
}

/// A running experiment server; dropping the handle does not stop it
/// — call [`Server::shutdown`] (or hit `/shutdown`, or SIGTERM) and
/// then [`Server::join`] for a graceful drain.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Route SIGTERM to a graceful drain of every [`Server`] in this
/// process. Installed by `reproduce serve`; a no-op off Unix.
pub fn install_sigterm_drain() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NO: i32 = 15;
        unsafe {
            signal(SIGTERM_NO, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// Test handle: simulate SIGTERM delivery without a signal.
pub fn trigger_sigterm_for_tests() {
    on_sigterm(15);
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, then read
    /// [`Server::addr`]) and start accepting.
    pub fn start(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            engine: Engine::new(cfg.jobs),
            cache: ArtifactCache::new(),
            flights: Singleflight::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            cfg,
        });
        inner.cache.set_byte_cap(inner.cfg.cache_bytes);
        inner.cache.set_tenant_quota(inner.cfg.tenant_quota);
        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, listener))
        };
        Ok(Server {
            inner,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop admitting requests; everything already admitted finishes.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }

    /// Whether a drain has been requested (by [`Server::shutdown`],
    /// `/shutdown`, or SIGTERM).
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Block until the server has drained and every thread exited.
    /// Returns the number of requests still served during the drain.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// The shared artifact cache (test observability).
    pub fn cache(&self) -> &ArtifactCache {
        &self.inner.cache
    }

    /// The request-coalescing layer (test observability).
    pub fn flights(&self) -> &Singleflight<(u16, String)> {
        &self.inner.flights
    }

    /// Connections currently parked in the admission queue (test
    /// observability — lets tests fill the queue deterministically).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }
}

fn accept_loop(inner: &Inner, listener: TcpListener) {
    loop {
        if SIGTERM.swap(false, Ordering::SeqCst) {
            inner.draining.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                if inner.draining.load(Ordering::SeqCst) {
                    counter_add("serve_rejected_total", &[("reason", "draining")], 1);
                    let _ = http::respond_error(&mut stream, 503, "server is draining");
                    continue;
                }
                let mut queue = inner.queue.lock().unwrap();
                if queue.len() >= inner.cfg.queue_cap {
                    drop(queue);
                    counter_add("serve_429_total", &[], 1);
                    let _ = http::respond(
                        &mut stream,
                        429,
                        "application/json",
                        &[("Retry-After", "1".to_string())],
                        &http::error_body(&format!(
                            "admission queue full (cap {}); retry after 1s",
                            inner.cfg.queue_cap
                        )),
                    );
                    continue;
                }
                queue.push_back(stream);
                drop(queue);
                inner.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if inner.draining.load(Ordering::SeqCst) {
                    let idle = inner.queue.lock().unwrap().is_empty()
                        && inner.in_flight.load(Ordering::SeqCst) == 0;
                    if idle {
                        // Drained: wake any parked workers so they exit.
                        inner.queue_cv.notify_all();
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).unwrap();
            }
        };
        inner.in_flight.fetch_add(1, Ordering::SeqCst);
        handle_connection(inner, stream);
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    if let Some(gate) = &inner.cfg.request_gate {
        gate.pass();
    }
    let req = match http::read_request(&mut stream) {
        Ok(Ok(req)) => req,
        Ok(Err(refusal)) => {
            counter_add("serve_requests_total", &[("route", "malformed")], 1);
            let _ = http::respond_error(&mut stream, refusal.status, &refusal.message);
            return;
        }
        Err(_) => return, // peer vanished mid-request
    };
    let route: &str = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("POST", "/run") => "run",
        ("POST", "/stream") => "stream",
        ("POST", "/shutdown") => "shutdown",
        _ => "unknown",
    };
    counter_add("serve_requests_total", &[("route", route)], 1);
    let r = match route {
        "healthz" => http::respond(&mut stream, 200, "application/json", &[], "{\"ok\":true}\n"),
        "metrics" => http::respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &[],
            &paccport_trace::metrics::render_prometheus(),
        ),
        "shutdown" => {
            inner.draining.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            http::respond(
                &mut stream,
                200,
                "application/json",
                &[],
                "{\"draining\":true}\n",
            )
        }
        "run" => handle_run(inner, &mut stream, &req),
        "stream" => handle_stream(inner, &mut stream, &req),
        _ => {
            let msg = format!(
                "no route `{} {}`; try GET /healthz, GET /metrics, POST /run, POST /stream, POST /shutdown",
                req.method, req.path
            );
            let status = if req.path == "/run" || req.path == "/stream" {
                405
            } else {
                404
            };
            http::respond_error(&mut stream, status, &msg)
        }
    };
    let _ = r;
}

/// Validate an `X-Tenant` value: short, filesystem/metrics-safe.
fn parse_tenant(req: &http::Request) -> Result<Option<String>, String> {
    match req.header("x-tenant") {
        None => Ok(None),
        Some(t) => {
            if t.is_empty()
                || t.len() > 64
                || !t
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c))
            {
                return Err(format!(
                    "invalid X-Tenant `{t}`: expected 1-64 chars of [A-Za-z0-9_-]"
                ));
            }
            Ok(Some(t.to_string()))
        }
    }
}

/// Resolve a request to its matched cells, or a one-line 400 naming
/// the offending coordinate with the known vocabulary.
fn resolve(rr: &RunRequest) -> Result<(paccport_core::study::Scale, Vec<CheckCell>), String> {
    let scale = serve::scale_by_name(&rr.scale)
        .ok_or_else(|| format!("unknown scale `{}`; known: smoke, quick, paper", rr.scale))?;
    let cells = serve::expand(&scale, &rr.benchmark, &rr.variant, &rr.target);
    if !cells.is_empty() {
        return Ok((scale, cells));
    }
    // Name the coordinate that matched nothing, with its vocabulary.
    type Pick = fn(&CheckCell) -> &String;
    let checks: [(&str, &str, Pick); 3] = [
        ("benchmark", &rr.benchmark, |c| &c.benchmark),
        ("variant", &rr.variant, |c| &c.variant),
        ("target", &rr.target, |c| &c.series),
    ];
    for (what, asked, pick) in checks {
        let known = serve::coordinate_values(&scale, pick);
        let wildcard = asked == "*" || asked.is_empty();
        if !wildcard && !known.iter().any(|k| k.eq_ignore_ascii_case(asked)) {
            return Err(format!(
                "unknown {what} `{asked}`; known: {}",
                known.join(", ")
            ));
        }
    }
    Err("no cell matches that (benchmark, variant, target) combination".to_string())
}

/// Execute `cells` on the engine (resilient path: retries, watchdog,
/// quarantine) and pair every result back with its cell identity.
fn run_cells(
    inner: &Inner,
    cells: &[CheckCell],
    seed: u64,
    tenant: &Option<String>,
) -> Vec<CellReport> {
    let jobs: Vec<(String, _)> = cells
        .iter()
        .map(|cell| {
            let cell = cell.clone();
            let tenant = tenant.clone();
            let cache = &inner.cache;
            (
                format!("serve/{}", cell.label()),
                move || -> Result<CellOutcome, String> {
                    let _t = paccport_compilers::tenant_scope(tenant.clone());
                    serve::run_cell(cache, &cell, seed)
                },
            )
        })
        .collect();
    let results = inner.engine.run_resilient(jobs);
    cells
        .iter()
        .zip(results)
        .map(|(cell, r)| match r {
            Ok(outcome) => {
                counter_add("serve_cells_total", &[("status", "ok")], 1);
                CellReport::Ok(outcome)
            }
            Err(f) => {
                counter_add("serve_cells_total", &[("status", "failed")], 1);
                CellReport::Failed {
                    benchmark: cell.benchmark.clone(),
                    variant: cell.variant.clone(),
                    target: cell.series.clone(),
                    reason: f.reason,
                    attempts: f.attempts,
                    injected: f.injected,
                }
            }
        })
        .collect()
}

fn handle_run(inner: &Inner, stream: &mut TcpStream, req: &http::Request) -> io::Result<()> {
    let tenant = match parse_tenant(req) {
        Ok(t) => t,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    let rr = match RunRequest::parse(&req.body) {
        Ok(rr) => rr,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    let cells = match resolve(&rr) {
        Ok((_, cells)) => cells,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    // Coalesce identical concurrent requests into one execution. The
    // tenant is part of the key so quota attribution stays honest.
    let flight_key = format!("{}|{}", tenant.as_deref().unwrap_or(""), rr.key());
    let (result, led) = inner.flights.run(&flight_key, || {
        if let Some(gate) = &inner.cfg.run_gate {
            gate.pass();
        }
        counter_add("serve_runs_total", &[], 1);
        let reports = run_cells(inner, &cells, rr.seed, &tenant);
        protocol::render_response(&rr, &reports)
    });
    let _ = led;
    let (status, body) = &*result;
    http::respond(stream, *status, "application/json", &[], body)
}

fn handle_stream(inner: &Inner, stream: &mut TcpStream, req: &http::Request) -> io::Result<()> {
    let tenant = match parse_tenant(req) {
        Ok(t) => t,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    let rr = match RunRequest::parse(&req.body) {
        Ok(rr) => rr,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    let cells = match resolve(&rr) {
        Ok((_, cells)) => cells,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    // Streaming runs cells one at a time in matrix order so each
    // progress event is emitted the moment its cell settles; the
    // event sequence stays deterministic because the order is the
    // submission order, not completion order.
    http::start_chunked(stream, 200, "application/x-ndjson")?;
    http::write_chunk(stream, &protocol::event_start(&rr, cells.len()))?;
    let (mut ok, mut failed) = (0usize, 0usize);
    for (i, cell) in cells.iter().enumerate() {
        let reports = run_cells(inner, std::slice::from_ref(cell), rr.seed, &tenant);
        let report = &reports[0];
        if report.is_ok() {
            ok += 1;
        } else {
            failed += 1;
        }
        http::write_chunk(stream, &protocol::event_cell(i, report))?;
    }
    http::write_chunk(stream, &protocol::event_done(ok, failed))?;
    http::finish_chunked(stream)
}
