//! # paccport-server — the experiment matrix as a persistent service
//!
//! `reproduce serve` turns the one-shot batch CLI into a resident
//! experiment server (ROADMAP open item 3): a hand-rolled HTTP/1.1 +
//! JSON service over `std::net::TcpListener` that accepts requests
//! naming a slice of the paper's benchmark matrix —
//! `(benchmark × variant × target × scale × seed)` — and executes
//! them on the shared work-stealing [`Engine`] against the shared
//! [`ArtifactCache`].
//!
//! The serving layer adds what a batch run never needed:
//!
//! * **admission control** — a bounded queue; when it is full the
//!   server answers `429 Too Many Requests` with `Retry-After`
//!   instead of queueing unboundedly;
//! * **request coalescing** — N identical concurrent requests run
//!   once ([`Singleflight`]) and share one byte-identical body, on
//!   top of the cache's compile-level singleflight;
//! * **capacity policy** — the artifact cache gains an LRU byte cap
//!   and per-tenant quotas keyed by the `X-Tenant` header;
//! * **streaming** — `/stream` emits one chunked progress event per
//!   cell as it completes;
//! * **graceful drain** — SIGTERM or `POST /shutdown` stops
//!   admission, finishes everything in flight, then exits;
//! * **live metrics** — `GET /metrics` renders the PR-5 registry in
//!   Prometheus text format, including the fault-injection ledger;
//! * **request-scoped tracing** — every request carries a trace id
//!   (a pure function of `(request fingerprint, seed)`, or the
//!   client's `traceparent`/`X-Request-Id` when supplied), runs its
//!   engine work under a [`paccport_trace::request_scope`], and
//!   leaves a normalized span tree in the [`recorder::FlightRecorder`]
//!   — queryable via `GET /trace/<id>` and indexed by `GET /traces`.
//!   Coalesced followers share the leader's trace id, so a duplicate
//!   request's response names the trace that actually executed.
//!
//! Every response body is a pure function of `(request, seed)`:
//! byte-identical across `--jobs` levels, across repeated requests,
//! and across server restarts — and so is every recorded trace body.
//! [`loadgen`] leans on that to produce deterministic latency/SLO
//! reports from a virtual-clock model.

pub mod http;
pub mod loadgen;
pub mod protocol;
pub mod recorder;

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use paccport_compilers::ArtifactCache;
use paccport_core::coalesce::{Gate, Singleflight};
use paccport_core::serve::{self, CellOutcome};
use paccport_core::soundness::CheckCell;
use paccport_core::Engine;
use paccport_trace::context;
use paccport_trace::export::TraceFormat;
use paccport_trace::metrics::{counter_add, observe, observe_exemplar};

use protocol::{CellReport, RunRequest};
use recorder::{FlightRecorder, RequestTrace};

/// Tuning and test hooks for [`Server::start`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Engine parallelism inside one request (cells fan out over
    /// this many workers; results keep submission order).
    pub jobs: usize,
    /// Concurrent request handlers.
    pub workers: usize,
    /// Admission queue bound; one more request than this answers 429.
    pub queue_cap: usize,
    /// LRU byte cap for the artifact cache (`None` = unbounded).
    pub cache_bytes: Option<u64>,
    /// Per-tenant cache quota (`None` = unbounded).
    pub tenant_quota: Option<u64>,
    /// Test hook: every request handler passes this gate before
    /// reading the request, so tests can park workers and fill the
    /// admission queue deterministically.
    pub request_gate: Option<Arc<Gate>>,
    /// Test hook: the coalescing leader passes this gate inside its
    /// flight, so tests can pile followers onto it deterministically.
    pub run_gate: Option<Arc<Gate>>,
    /// How many completed request traces the flight recorder retains
    /// (ring buffer; clamped to >= 1).
    pub recorder_cap: usize,
    /// Structured JSONL access log: one line per handled request
    /// (route, tenant, trace id, queue depth at admission, coalesced
    /// or led, modeled service seconds, status).
    pub access_log: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            jobs: 1,
            workers: 4,
            queue_cap: 64,
            cache_bytes: None,
            tenant_quota: None,
            request_gate: None,
            run_gate: None,
            recorder_cap: 64,
            access_log: None,
        }
    }
}

/// The shared outcome of one coalesced `/run` execution: what every
/// rider on the flight answers with, plus the trace identity of the
/// execution that produced it.
pub struct Flight {
    pub status: u16,
    pub body: String,
    pub trace_id: String,
    /// Modeled service seconds (sum over response cells) — what the
    /// latency histograms observe and loadgen's queue model consumes.
    pub service_s: f64,
}

struct Inner {
    cfg: ServerConfig,
    engine: Engine,
    cache: ArtifactCache,
    flights: Singleflight<Flight>,
    /// Admitted connections, each with the queue depth it saw at
    /// admission (surfaced in the access log).
    queue: Mutex<VecDeque<(TcpStream, usize)>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    recorder: FlightRecorder,
    access: Option<Mutex<std::fs::File>>,
    served: AtomicU64,
    /// Request-context ordinals for [`paccport_trace::request_scope`];
    /// 0 is reserved for "outside any request".
    next_ctx: AtomicU64,
}

/// A running experiment server; dropping the handle does not stop it
/// — call [`Server::shutdown`] (or hit `/shutdown`, or SIGTERM) and
/// then [`Server::join`] for a graceful drain.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Route SIGTERM to a graceful drain of every [`Server`] in this
/// process. Installed by `reproduce serve`; a no-op off Unix.
pub fn install_sigterm_drain() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NO: i32 = 15;
        unsafe {
            signal(SIGTERM_NO, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// Test handle: simulate SIGTERM delivery without a signal.
pub fn trigger_sigterm_for_tests() {
    on_sigterm(15);
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, then read
    /// [`Server::addr`]) and start accepting.
    pub fn start(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let access = match &cfg.access_log {
            Some(path) => Some(Mutex::new(std::fs::File::create(path)?)),
            None => None,
        };
        // The flight recorder drains span events per request context,
        // and `/metrics` renders the registry — both collectors must
        // be on for those routes to have anything to say.
        paccport_trace::set_events_enabled(true);
        paccport_trace::metrics::set_metrics_enabled(true);
        let inner = Arc::new(Inner {
            engine: Engine::new(cfg.jobs),
            cache: ArtifactCache::new(),
            flights: Singleflight::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            recorder: FlightRecorder::new(cfg.recorder_cap),
            access,
            served: AtomicU64::new(0),
            next_ctx: AtomicU64::new(1),
            cfg,
        });
        inner.cache.set_byte_cap(inner.cfg.cache_bytes);
        inner.cache.set_tenant_quota(inner.cfg.tenant_quota);
        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, listener))
        };
        Ok(Server {
            inner,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop admitting requests; everything already admitted finishes.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }

    /// Whether a drain has been requested (by [`Server::shutdown`],
    /// `/shutdown`, or SIGTERM).
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Block until the server has drained and every thread exited.
    /// Returns the number of requests still served during the drain.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// The shared artifact cache (test observability).
    pub fn cache(&self) -> &ArtifactCache {
        &self.inner.cache
    }

    /// The request-coalescing layer (test observability).
    pub fn flights(&self) -> &Singleflight<Flight> {
        &self.inner.flights
    }

    /// The flight recorder (test observability).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Connections currently parked in the admission queue (test
    /// observability — lets tests fill the queue deterministically).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }
}

fn accept_loop(inner: &Inner, listener: TcpListener) {
    loop {
        if SIGTERM.swap(false, Ordering::SeqCst) {
            inner.draining.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                if inner.draining.load(Ordering::SeqCst) {
                    counter_add("serve_rejected_total", &[("reason", "draining")], 1);
                    let _ = http::respond_error(&mut stream, 503, "server is draining");
                    continue;
                }
                let mut queue = inner.queue.lock().unwrap();
                if queue.len() >= inner.cfg.queue_cap {
                    drop(queue);
                    counter_add("serve_429_total", &[], 1);
                    let _ = http::respond(
                        &mut stream,
                        429,
                        "application/json",
                        &[("Retry-After", "1".to_string())],
                        &http::error_body(&format!(
                            "admission queue full (cap {}); retry after 1s",
                            inner.cfg.queue_cap
                        )),
                    );
                    continue;
                }
                let depth = queue.len();
                queue.push_back((stream, depth));
                drop(queue);
                inner.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if inner.draining.load(Ordering::SeqCst) {
                    let idle = inner.queue.lock().unwrap().is_empty()
                        && inner.in_flight.load(Ordering::SeqCst) == 0;
                    if idle {
                        // Drained: wake any parked workers so they exit.
                        inner.queue_cv.notify_all();
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (stream, depth) = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).unwrap();
            }
        };
        inner.in_flight.fetch_add(1, Ordering::SeqCst);
        handle_connection(inner, stream, depth);
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What one handled request contributes to the access log and the
/// latency histograms once its response is on the wire.
struct Handled {
    status: u16,
    tenant: Option<String>,
    trace_id: Option<String>,
    /// `led`/`coalesced` on the coalescing route, absent elsewhere.
    role: Option<&'static str>,
    service_s: f64,
}

impl Handled {
    fn plain(status: u16) -> Handled {
        Handled {
            status,
            tenant: None,
            trace_id: None,
            role: None,
            service_s: 0.0,
        }
    }
}

/// JSON rendering of an optional string field.
fn json_opt(v: &Option<impl AsRef<str>>) -> String {
    match v {
        Some(s) => format!("\"{}\"", paccport_trace::json::escape(s.as_ref())),
        None => "null".to_string(),
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream, depth: usize) {
    if let Some(gate) = &inner.cfg.request_gate {
        gate.pass();
    }
    let (route, handled) = match http::read_request(&mut stream) {
        Ok(Ok(req)) => {
            let route: &str = match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/healthz") => "healthz",
                ("GET", "/metrics") => "metrics",
                ("GET", "/traces") => "traces",
                ("GET", p) if p.starts_with("/trace/") => "trace",
                ("POST", "/run") => "run",
                ("POST", "/stream") => "stream",
                ("POST", "/shutdown") => "shutdown",
                _ => "unknown",
            };
            counter_add("serve_requests_total", &[("route", route)], 1);
            let handled = match route {
                "healthz" => {
                    let body = format!(
                        "{{\"ok\":true,\"queue_depth\":{},\"in_flight\":{},\
                         \"recorder\":{{\"occupancy\":{},\"cap\":{}}},\"requests_served\":{}}}\n",
                        inner.queue.lock().unwrap().len(),
                        inner.in_flight.load(Ordering::SeqCst),
                        inner.recorder.occupancy(),
                        inner.recorder.cap(),
                        inner.served.load(Ordering::SeqCst),
                    );
                    let _ = http::respond(&mut stream, 200, "application/json", &[], &body);
                    Handled::plain(200)
                }
                "metrics" => {
                    let _ = http::respond(
                        &mut stream,
                        200,
                        "text/plain; version=0.0.4",
                        &[],
                        &paccport_trace::metrics::render_prometheus(),
                    );
                    Handled::plain(200)
                }
                "traces" => {
                    let _ = http::respond(
                        &mut stream,
                        200,
                        "application/json",
                        &[],
                        &inner.recorder.render_index(),
                    );
                    Handled::plain(200)
                }
                "trace" => handle_trace(inner, &mut stream, &req.path),
                "shutdown" => {
                    inner.draining.store(true, Ordering::SeqCst);
                    inner.queue_cv.notify_all();
                    let _ = http::respond(
                        &mut stream,
                        200,
                        "application/json",
                        &[],
                        "{\"draining\":true}\n",
                    );
                    Handled::plain(200)
                }
                "run" => handle_run(inner, &mut stream, &req),
                "stream" => handle_stream(inner, &mut stream, &req),
                _ => {
                    let msg = format!(
                        "no route `{} {}`; try GET /healthz, GET /metrics, GET /traces, \
                         GET /trace/<id>, POST /run, POST /stream, POST /shutdown",
                        req.method, req.path
                    );
                    let status = if req.path == "/run" || req.path == "/stream" {
                        405
                    } else {
                        404
                    };
                    let _ = http::respond_error(&mut stream, status, &msg);
                    Handled::plain(status)
                }
            };
            (route, handled)
        }
        Ok(Err(refusal)) => {
            counter_add("serve_requests_total", &[("route", "malformed")], 1);
            let _ = http::respond_error(&mut stream, refusal.status, &refusal.message);
            ("malformed", Handled::plain(refusal.status))
        }
        Err(_) => return, // peer vanished mid-request
    };
    inner.served.fetch_add(1, Ordering::SeqCst);
    let status_label = handled.status.to_string();
    let labels: [(&str, &str); 2] = [("route", route), ("status", status_label.as_str())];
    match &handled.trace_id {
        Some(id) => observe_exemplar(
            "serve_request_seconds",
            &labels,
            handled.service_s,
            &[("trace_id", id.as_str())],
        ),
        None => observe("serve_request_seconds", &labels, handled.service_s),
    }
    if let Some(access) = &inner.access {
        let line = format!(
            "{{\"ts\":{},\"route\":\"{route}\",\"status\":{},\"tenant\":{},\"trace_id\":{},\
             \"queue_depth\":{depth},\"role\":{},\"service_s\":{}}}\n",
            paccport_trace::now_ns(),
            handled.status,
            json_opt(&handled.tenant),
            json_opt(&handled.trace_id),
            json_opt(&handled.role),
            handled.service_s,
        );
        // One write per line, flushed, so the log is complete even if
        // the process is killed rather than drained.
        let mut f = access.lock().unwrap();
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }
}

/// Resolve the trace id a request runs under: a valid client
/// `traceparent` wins, then a well-formed `X-Request-Id`, otherwise
/// the id is *derived* — a pure function of the request fingerprint
/// and seed, so repeats, restarts and any `--jobs` level agree on it.
fn request_trace_id(
    req: &http::Request,
    route: &str,
    tenant: &Option<String>,
    rr: &RunRequest,
) -> String {
    if let Some(id) = req
        .header("traceparent")
        .and_then(context::parse_traceparent)
    {
        return id;
    }
    if let Some(id) = req.header("x-request-id") {
        let id = id.to_ascii_lowercase();
        if context::valid_trace_id(&id) {
            return id;
        }
    }
    let fingerprint = format!("{route}|{}|{}", tenant.as_deref().unwrap_or(""), rr.key());
    context::derive_trace_id(&fingerprint, rr.seed)
}

/// The response headers that propagate a request's trace identity.
fn trace_headers(trace_id: &str) -> [(&'static str, String); 2] {
    [
        ("X-Request-Id", trace_id.to_string()),
        ("traceparent", context::render_traceparent(trace_id)),
    ]
}

/// Modeled service seconds of a response: the sum of its cells'
/// modeled seconds, with a fixed 1 ms charge per failed cell — the
/// *same* accumulation (order and all) loadgen's `parse_service`
/// performs on the rendered body, so client- and server-side latency
/// histograms agree bucket for bucket.
fn modeled_service_seconds(reports: &[CellReport]) -> f64 {
    let mut s = 0.0f64;
    for r in reports {
        match r {
            CellReport::Ok(o) => s += o.seconds,
            CellReport::Failed { .. } => s += 0.001,
        }
    }
    s
}

/// `GET /trace/<id>[?format=chrome|jsonl|folded]` — serve one
/// recorded trace: the nested span-tree JSON by default, or any of
/// the standard exporter formats rendered from the same normalized
/// events.
fn handle_trace(inner: &Inner, stream: &mut TcpStream, path: &str) -> Handled {
    let rest = &path["/trace/".len()..];
    let (id, query) = match rest.split_once('?') {
        Some((id, q)) => (id, Some(q)),
        None => (rest, None),
    };
    let mut format = None;
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        let Some(v) = pair.strip_prefix("format=") else {
            let _ = http::respond_error(
                stream,
                400,
                &format!("unknown query parameter `{pair}`; supported: format=chrome|jsonl|folded"),
            );
            return Handled::plain(400);
        };
        match TraceFormat::parse(v) {
            Ok(f) => format = Some(f),
            Err(e) => {
                let _ = http::respond_error(stream, 400, &e);
                return Handled::plain(400);
            }
        }
    }
    let Some(trace) = inner.recorder.get(id) else {
        let _ = http::respond_error(
            stream,
            404,
            &format!(
                "no recorded trace `{id}`; the flight recorder keeps the last {} completed \
                 requests (see GET /traces)",
                inner.recorder.cap()
            ),
        );
        return Handled::plain(404);
    };
    let (content_type, body) = match format {
        None => ("application/json", trace.render_json()),
        Some(TraceFormat::Chrome) => ("application/json", trace.render_export(TraceFormat::Chrome)),
        Some(TraceFormat::Jsonl) => (
            "application/x-ndjson",
            trace.render_export(TraceFormat::Jsonl),
        ),
        Some(TraceFormat::Folded) => ("text/plain", trace.render_export(TraceFormat::Folded)),
    };
    let _ = http::respond(stream, 200, content_type, &[], &body);
    Handled::plain(200)
}

/// Validate an `X-Tenant` value: short, filesystem/metrics-safe.
fn parse_tenant(req: &http::Request) -> Result<Option<String>, String> {
    match req.header("x-tenant") {
        None => Ok(None),
        Some(t) => {
            if t.is_empty()
                || t.len() > 64
                || !t
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c))
            {
                return Err(format!(
                    "invalid X-Tenant `{t}`: expected 1-64 chars of [A-Za-z0-9_-]"
                ));
            }
            Ok(Some(t.to_string()))
        }
    }
}

/// Resolve a request to its matched cells, or a one-line 400 naming
/// the offending coordinate with the known vocabulary.
fn resolve(rr: &RunRequest) -> Result<(paccport_core::study::Scale, Vec<CheckCell>), String> {
    let scale = serve::scale_by_name(&rr.scale)
        .ok_or_else(|| format!("unknown scale `{}`; known: smoke, quick, paper", rr.scale))?;
    let cells = serve::expand(&scale, &rr.benchmark, &rr.variant, &rr.target);
    if !cells.is_empty() {
        return Ok((scale, cells));
    }
    // Name the coordinate that matched nothing, with its vocabulary.
    type Pick = fn(&CheckCell) -> &String;
    let checks: [(&str, &str, Pick); 3] = [
        ("benchmark", &rr.benchmark, |c| &c.benchmark),
        ("variant", &rr.variant, |c| &c.variant),
        ("target", &rr.target, |c| &c.series),
    ];
    for (what, asked, pick) in checks {
        let known = serve::coordinate_values(&scale, pick);
        let wildcard = asked == "*" || asked.is_empty();
        if !wildcard && !known.iter().any(|k| k.eq_ignore_ascii_case(asked)) {
            return Err(format!(
                "unknown {what} `{asked}`; known: {}",
                known.join(", ")
            ));
        }
    }
    Err("no cell matches that (benchmark, variant, target) combination".to_string())
}

/// Execute `cells` on the engine (resilient path: retries, watchdog,
/// quarantine) and pair every result back with its cell identity.
fn run_cells(
    inner: &Inner,
    cells: &[CheckCell],
    seed: u64,
    tenant: &Option<String>,
) -> Vec<CellReport> {
    let jobs: Vec<(String, _)> = cells
        .iter()
        .map(|cell| {
            let cell = cell.clone();
            let tenant = tenant.clone();
            let cache = &inner.cache;
            (
                format!("serve/{}", cell.label()),
                move || -> Result<CellOutcome, String> {
                    let _t = paccport_compilers::tenant_scope(tenant.clone());
                    serve::run_cell(cache, &cell, seed)
                },
            )
        })
        .collect();
    let results = inner.engine.run_resilient(jobs);
    cells
        .iter()
        .zip(results)
        .map(|(cell, r)| match r {
            Ok(outcome) => {
                counter_add("serve_cells_total", &[("status", "ok")], 1);
                CellReport::Ok(outcome)
            }
            Err(f) => {
                counter_add("serve_cells_total", &[("status", "failed")], 1);
                CellReport::Failed {
                    benchmark: cell.benchmark.clone(),
                    variant: cell.variant.clone(),
                    target: cell.series.clone(),
                    reason: f.reason,
                    attempts: f.attempts,
                    injected: f.injected,
                }
            }
        })
        .collect()
}

fn handle_run(inner: &Inner, stream: &mut TcpStream, req: &http::Request) -> Handled {
    let tenant = match parse_tenant(req) {
        Ok(t) => t,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e);
            return Handled::plain(400);
        }
    };
    let rr = match RunRequest::parse(&req.body) {
        Ok(rr) => rr,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e);
            return Handled::plain(400);
        }
    };
    let cells = match resolve(&rr) {
        Ok((_, cells)) => cells,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e);
            return Handled {
                tenant,
                ..Handled::plain(400)
            };
        }
    };
    let trace_id = request_trace_id(req, "run", &tenant, &rr);
    // Coalesce identical concurrent requests into one execution. The
    // tenant is part of the key so quota attribution stays honest.
    // The trace id deliberately is NOT: followers answer with the
    // leader's trace, because that is the execution their bytes came
    // from.
    let flight_key = format!("{}|{}", tenant.as_deref().unwrap_or(""), rr.key());
    let (result, led) = inner.flights.run(&flight_key, || {
        if let Some(gate) = &inner.cfg.run_gate {
            gate.pass();
        }
        counter_add("serve_runs_total", &[], 1);
        // Everything this request's engine work records — including
        // on the engine's worker threads — carries this context, so
        // the shared event stream partitions cleanly per request.
        let ctx = inner.next_ctx.fetch_add(1, Ordering::Relaxed);
        let reports = {
            let _request = paccport_trace::request_scope(ctx);
            // A fresh (lane 0, task 0) scope per request: resets the
            // handler thread's span sequence so the inline (jobs=1)
            // event layout is identical no matter how many requests
            // this thread served before.
            let _scope = paccport_trace::task_scope(0, 0);
            run_cells(inner, &cells, rr.seed, &tenant)
        };
        let (status, body) = protocol::render_response(&rr, &reports);
        let service_s = modeled_service_seconds(&reports);
        let events = paccport_trace::take_request_events(ctx);
        inner.recorder.record(RequestTrace::build(
            trace_id.clone(),
            "run",
            &rr,
            &tenant,
            status,
            &reports,
            service_s,
            events,
        ));
        Flight {
            status,
            body,
            trace_id: trace_id.clone(),
            service_s,
        }
    });
    let flight = &*result;
    let _ = http::respond(
        stream,
        flight.status,
        "application/json",
        &trace_headers(&flight.trace_id),
        &flight.body,
    );
    Handled {
        status: flight.status,
        tenant,
        trace_id: Some(flight.trace_id.clone()),
        role: Some(if led { "led" } else { "coalesced" }),
        service_s: flight.service_s,
    }
}

fn handle_stream(inner: &Inner, stream: &mut TcpStream, req: &http::Request) -> Handled {
    let tenant = match parse_tenant(req) {
        Ok(t) => t,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e);
            return Handled::plain(400);
        }
    };
    let rr = match RunRequest::parse(&req.body) {
        Ok(rr) => rr,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e);
            return Handled::plain(400);
        }
    };
    let cells = match resolve(&rr) {
        Ok((_, cells)) => cells,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e);
            return Handled {
                tenant,
                ..Handled::plain(400)
            };
        }
    };
    let trace_id = request_trace_id(req, "stream", &tenant, &rr);
    let ctx = inner.next_ctx.fetch_add(1, Ordering::Relaxed);
    // Streaming runs cells one at a time in matrix order so each
    // progress event is emitted the moment its cell settles; the
    // event sequence stays deterministic because the order is the
    // submission order, not completion order. Wire failures stop the
    // writes but never the drain below — a vanished client must not
    // leave this request's events stranded in the buffers.
    let mut reports: Vec<CellReport> = Vec::with_capacity(cells.len());
    let io_result = {
        let _request = paccport_trace::request_scope(ctx);
        let _scope = paccport_trace::task_scope(0, 0);
        let mut emit = || -> io::Result<()> {
            http::start_chunked(
                stream,
                200,
                "application/x-ndjson",
                &trace_headers(&trace_id),
            )?;
            http::write_chunk(stream, &protocol::event_start(&rr, cells.len()))?;
            for (i, cell) in cells.iter().enumerate() {
                let cell_reports = run_cells(inner, std::slice::from_ref(cell), rr.seed, &tenant);
                let report = cell_reports
                    .into_iter()
                    .next()
                    .expect("one report per cell");
                http::write_chunk(stream, &protocol::event_cell(i, &report))?;
                reports.push(report);
            }
            let ok = reports.iter().filter(|r| r.is_ok()).count();
            http::write_chunk(stream, &protocol::event_done(ok, reports.len() - ok))?;
            http::finish_chunked(stream)
        };
        emit()
    };
    let _ = io_result;
    let service_s = modeled_service_seconds(&reports);
    let events = paccport_trace::take_request_events(ctx);
    inner.recorder.record(RequestTrace::build(
        trace_id.clone(),
        "stream",
        &rr,
        &tenant,
        200,
        &reports,
        service_s,
        events,
    ));
    Handled {
        status: 200,
        tenant,
        trace_id: Some(trace_id),
        role: None,
        service_s,
    }
}
