//! The flight recorder: bounded in-memory storage of the last N
//! completed request traces, each a *normalized* span tree drained
//! from the shared telemetry stream ([`paccport_trace::take_request_events`]).
//!
//! ## Why normalize
//!
//! The raw event stream is deterministic in *structure* but not in
//! *identity*: task ordinals are process-global (they grow across
//! requests and differ across restarts), lanes depend on `--jobs`,
//! timestamps are wall-clock, and cache-warmth decides whether a
//! `compilers.compile` span exists at all (the first request compiles,
//! the second hits the cache). A trace body built naively from the raw
//! stream would differ across `--jobs` levels, repeats and restarts —
//! exactly the properties `GET /trace/<id>` promises to hold.
//!
//! Normalization makes the body a pure function of `(request, seed)`:
//!
//! * only schedule-independent span names are kept (the
//!   [`KEEP`] allowlist — one `engine.job` per cell wrapping its
//!   attempts, the cell execution, and the simulator run);
//! * events sort by `(task, seq)` — submission order — then lanes and
//!   tasks are renumbered per cell (cell *i* becomes lane/task `i+1`),
//!   erasing the process-global ordinals;
//! * timestamps are replaced by virtual ticks (1 µs per tree edge,
//!   depth-first), erasing the wall clock while keeping strict
//!   parent-contains-child nesting for Chrome/Perfetto.
//!
//! The recorder itself is a ring: completed traces push in, the
//! oldest falls out past the cap, and an id that is re-run replaces
//! its previous entry (the trace bytes are identical anyway).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use paccport_trace::export::{self, TraceFormat};
use paccport_trace::json::escape;
use paccport_trace::{SpanEvent, Summary};

use crate::protocol::{CellReport, RunRequest};

/// Span names that survive normalization. Everything else —
/// `compilers.compile` and below — is cache-warmth- or
/// schedule-dependent and would break trace byte-identity.
pub const KEEP: [&str; 4] = [
    "engine.job",
    "engine.attempt",
    "serve.run_cell",
    "devsim.run",
];

/// One span in a normalized trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    /// Virtual open time: 1000 ns per depth-first tree edge.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub children: Vec<SpanNode>,
}

/// One cell's span forest (in practice a single `engine.job` root).
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// The engine job label (`serve/<benchmark>/<variant>/<target>`).
    pub label: String,
    pub spans: Vec<SpanNode>,
}

/// A quarantined cell, as the trace remembers it.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    pub benchmark: String,
    pub variant: String,
    pub target: String,
    pub reason: String,
    pub attempts: u32,
    pub injected: bool,
}

/// One completed request, end to end: identity, outcome, the metric
/// deltas its cells contributed, its fault-ledger slice, and the
/// normalized span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    pub trace_id: String,
    pub route: &'static str,
    /// The request echo (`{"benchmark":…,"seed":…}`) as a JSON object.
    pub request_json: String,
    pub tenant: Option<String>,
    pub status: u16,
    pub ok: usize,
    pub failed: usize,
    /// Modeled service seconds — the same value the latency
    /// histograms observe and loadgen's model consumes.
    pub service_seconds: f64,
    pub launches: u64,
    pub h2d: u64,
    pub d2h: u64,
    pub while_iterations: u64,
    pub ledger: Vec<LedgerEntry>,
    pub cells: Vec<CellTrace>,
}

/// Effective depth of an event: how many of its enclosing spans
/// survive the allowlist. (Parents of kept spans are always kept —
/// `devsim.run` sits under `serve.run_cell` under `engine.attempt`
/// under `engine.job` — so kept depths are contiguous.)
fn eff_depth(e: &SpanEvent) -> usize {
    e.stack
        .iter()
        .filter(|s| KEEP.contains(&s.as_str()))
        .count()
}

/// Recursive preorder tree build: events arrive in span-*open* order
/// (seq is assigned at open) with effective depths; a node's subtree
/// is the run of following events at greater depth.
fn build_forest(events: &[&SpanEvent], depth: usize, i: &mut usize) -> Vec<SpanNode> {
    let mut out = Vec::new();
    while *i < events.len() {
        let e = events[*i];
        let d = eff_depth(e);
        if d < depth {
            break;
        }
        *i += 1;
        let children = build_forest(events, d + 1, i);
        out.push(SpanNode {
            name: e.name.clone(),
            attrs: e.attrs.clone(),
            start_ns: 0,
            dur_ns: 0,
            children,
        });
    }
    out
}

/// Depth-first virtual timestamps: opening a span and closing it each
/// consume one tick (1 tick = 1000 ns), so children nest strictly
/// inside parents and siblings never overlap.
fn stamp(node: &mut SpanNode, tick: &mut u64) {
    node.start_ns = *tick * 1000;
    *tick += 1;
    for c in &mut node.children {
        stamp(c, tick);
    }
    node.dur_ns = *tick * 1000 - node.start_ns;
    *tick += 1;
}

/// Normalize one request's drained events into per-cell span trees.
///
/// The result is identical whatever `--jobs` level, worker schedule,
/// task-ordinal base or wall clock produced the raw events.
pub fn normalize(mut events: Vec<SpanEvent>) -> Vec<CellTrace> {
    events.retain(|e| KEEP.contains(&e.name.as_str()));
    // Submission order: tasks are allocated at submission (or all 0 on
    // the inline path, where seq alone carries the order).
    events.sort_by_key(|e| (e.task, e.seq));
    // A depth-0 kept event is an `engine.job` — one per cell.
    let mut cells: Vec<Vec<&SpanEvent>> = Vec::new();
    for e in &events {
        if eff_depth(e) == 0 {
            cells.push(Vec::new());
        }
        if let Some(cell) = cells.last_mut() {
            cell.push(e);
        }
    }
    let mut tick: u64 = 0;
    cells
        .into_iter()
        .map(|cell| {
            let mut i = 0;
            let mut spans = build_forest(&cell, 0, &mut i);
            for s in &mut spans {
                stamp(s, &mut tick);
            }
            let label = spans
                .first()
                .and_then(|s| {
                    s.attrs
                        .iter()
                        .find(|(k, _)| k == "label")
                        .map(|(_, v)| v.clone())
                })
                .unwrap_or_default();
            CellTrace { label, spans }
        })
        .collect()
}

impl RequestTrace {
    /// Assemble a trace from a handled request's pieces. `events` is
    /// the raw drain of the request's context.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        trace_id: String,
        route: &'static str,
        rr: &RunRequest,
        tenant: &Option<String>,
        status: u16,
        reports: &[CellReport],
        service_seconds: f64,
        events: Vec<SpanEvent>,
    ) -> RequestTrace {
        let ok = reports.iter().filter(|r| r.is_ok()).count();
        let (mut launches, mut h2d, mut d2h, mut while_iterations) = (0u64, 0u64, 0u64, 0u64);
        let mut ledger = Vec::new();
        for r in reports {
            match r {
                CellReport::Ok(o) => {
                    launches += o.launches;
                    h2d += o.h2d;
                    d2h += o.d2h;
                    while_iterations += o.while_iterations;
                }
                CellReport::Failed {
                    benchmark,
                    variant,
                    target,
                    reason,
                    attempts,
                    injected,
                } => ledger.push(LedgerEntry {
                    benchmark: benchmark.clone(),
                    variant: variant.clone(),
                    target: target.clone(),
                    reason: reason.clone(),
                    attempts: *attempts,
                    injected: *injected,
                }),
            }
        }
        RequestTrace {
            trace_id,
            route,
            request_json: format!("{{{}}}", rr.echo()),
            tenant: tenant.clone(),
            status,
            ok,
            failed: reports.len() - ok,
            service_seconds,
            launches,
            h2d,
            d2h,
            while_iterations,
            ledger,
            cells: normalize(events),
        }
    }

    fn render_span(out: &mut String, s: &SpanNode) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{",
            escape(&s.name),
            s.start_ns,
            s.dur_ns
        );
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("},\"children\":[");
        for (i, c) in s.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            Self::render_span(out, c);
        }
        out.push_str("]}");
    }

    /// The default `GET /trace/<id>` body: the full request record
    /// with its nested span tree, one line, valid JSON.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\":\"{}\",\"route\":\"{}\",\"request\":{},\"tenant\":{},\
             \"status\":{},\"ok\":{},\"failed\":{},\"service_seconds\":{},\
             \"counters\":{{\"launches\":{},\"h2d\":{},\"d2h\":{},\"while_iterations\":{}}},\
             \"ledger\":[",
            escape(&self.trace_id),
            self.route,
            self.request_json,
            match &self.tenant {
                Some(t) => format!("\"{}\"", escape(t)),
                None => "null".to_string(),
            },
            self.status,
            self.ok,
            self.failed,
            self.service_seconds,
            self.launches,
            self.h2d,
            self.d2h,
            self.while_iterations,
        );
        for (i, l) in self.ledger.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"benchmark\":\"{}\",\"variant\":\"{}\",\"target\":\"{}\",\
                 \"reason\":\"{}\",\"attempts\":{},\"injected\":{}}}",
                escape(&l.benchmark),
                escape(&l.variant),
                escape(&l.target),
                escape(&l.reason),
                l.attempts,
                l.injected
            );
        }
        out.push_str("],\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"label\":\"{}\",\"spans\":[", escape(&cell.label));
            for (j, s) in cell.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                Self::render_span(&mut out, s);
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Flatten the normalized tree back into [`SpanEvent`]s so the
    /// standard exporters can render it (`?format=chrome|jsonl|folded`).
    /// Cell *i* occupies lane/task `i+1`; seq is preorder within the
    /// cell; everything is virtual-timestamped.
    pub fn normalized_events(&self) -> Vec<SpanEvent> {
        fn walk(
            out: &mut Vec<SpanEvent>,
            node: &SpanNode,
            stack: &mut Vec<String>,
            lane_task: u64,
            seq: &mut u64,
        ) {
            out.push(SpanEvent {
                name: node.name.clone(),
                lane: lane_task as u32,
                task: lane_task,
                seq: *seq,
                depth: stack.len() as u32,
                stack: stack.clone(),
                thread: 0,
                ctx: 0,
                start_ns: node.start_ns,
                dur_ns: node.dur_ns,
                attrs: node.attrs.clone(),
            });
            *seq += 1;
            stack.push(node.name.clone());
            for c in &node.children {
                walk(out, c, stack, lane_task, seq);
            }
            stack.pop();
        }
        let mut out = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let mut seq = 0;
            let mut stack = Vec::new();
            for s in &cell.spans {
                walk(&mut out, s, &mut stack, i as u64 + 1, &mut seq);
            }
        }
        out
    }

    /// Render in an alternate export format via [`export::render`].
    pub fn render_export(&self, format: TraceFormat) -> String {
        let summary = Summary {
            spans: Vec::new(),
            counters: vec![
                ("serve.cells_ok".to_string(), self.ok as u64),
                ("serve.cells_failed".to_string(), self.failed as u64),
                ("serve.launches".to_string(), self.launches),
                ("serve.h2d".to_string(), self.h2d),
                ("serve.d2h".to_string(), self.d2h),
                ("serve.while_iterations".to_string(), self.while_iterations),
            ],
        };
        export::render(format, &self.normalized_events(), &summary)
    }

    /// One entry in the `GET /traces` index.
    pub fn index_entry(&self) -> String {
        format!(
            "{{\"trace_id\":\"{}\",\"route\":\"{}\",\"status\":{},\"ok\":{},\"failed\":{},\
             \"cells\":{},\"service_seconds\":{}}}",
            escape(&self.trace_id),
            self.route,
            self.status,
            self.ok,
            self.failed,
            self.cells.len(),
            self.service_seconds
        )
    }
}

/// Ring buffer of the last `cap` completed request traces.
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<Arc<RequestTrace>>>,
}

impl FlightRecorder {
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn occupancy(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Record a completed trace. A repeated trace id replaces its
    /// previous entry (re-running a request reproduces the same bytes,
    /// so duplicates would only waste ring slots).
    pub fn record(&self, trace: RequestTrace) {
        let mut ring = self.ring.lock().unwrap();
        ring.retain(|t| t.trace_id != trace.trace_id);
        ring.push_back(Arc::new(trace));
        while ring.len() > self.cap {
            ring.pop_front();
        }
    }

    pub fn get(&self, trace_id: &str) -> Option<Arc<RequestTrace>> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// The `GET /traces` body: occupancy, cap, and one index line per
    /// retained trace, most recent last.
    pub fn render_index(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let entries: Vec<String> = ring.iter().map(|t| t.index_entry()).collect();
        format!(
            "{{\"cap\":{},\"occupancy\":{},\"traces\":[{}]}}\n",
            self.cap,
            ring.len(),
            entries.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic raw event as the engine would record it: `task` and
    /// `lane` carry whatever ordinals the schedule produced.
    fn raw(name: &str, stack: &[&str], lane: u32, task: u64, seq: u64, thread: u32) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            lane,
            task,
            seq,
            depth: stack.len() as u32,
            stack: stack.iter().map(|s| s.to_string()).collect(),
            thread,
            ctx: 42,
            start_ns: 123_456 + seq * 7,
            dur_ns: 999,
            attrs: if name == "engine.job" {
                vec![("label".into(), format!("serve/cell{task}"))]
            } else {
                Vec::new()
            },
        }
    }

    /// Two cells' worth of events, parameterized by the schedule
    /// identities that must NOT leak into the normalized result.
    fn two_cells(task_base: u64, lanes: [u32; 2], threads: [u32; 2]) -> Vec<SpanEvent> {
        let mut ev = Vec::new();
        for (i, (&lane, &thread)) in lanes.iter().zip(&threads).enumerate() {
            let t = task_base + i as u64;
            // Span-open order (seq): job, attempt, run_cell, compile,
            // devsim — compile only on the "cold" first cell, which is
            // exactly the warmth asymmetry normalization must erase.
            ev.push(raw("engine.job", &[], lane, t, 0, thread));
            ev.push(raw("engine.attempt", &["engine.job"], lane, t, 1, thread));
            ev.push(raw(
                "serve.run_cell",
                &["engine.job", "engine.attempt"],
                lane,
                t,
                2,
                thread,
            ));
            if i == 0 {
                ev.push(raw(
                    "compilers.compile",
                    &["engine.job", "engine.attempt", "serve.run_cell"],
                    lane,
                    t,
                    3,
                    thread,
                ));
            }
            ev.push(raw(
                "devsim.run",
                &["engine.job", "engine.attempt", "serve.run_cell"],
                lane,
                t,
                4,
                thread,
            ));
        }
        ev
    }

    #[test]
    fn normalization_erases_schedule_identity_and_cache_warmth() {
        let a = normalize(two_cells(10, [1, 2], [3, 4]));
        let mut b_events = two_cells(900, [2, 1], [7, 0]);
        // Arrival order must not matter either.
        b_events.reverse();
        let mut b = normalize(b_events);
        // The labels embed the raw task ordinal in this fixture; remap
        // them before comparing the structural content.
        for (i, c) in b.iter_mut().enumerate() {
            c.label = format!("serve/cell{}", 10 + i);
            for s in &mut c.spans {
                s.attrs = vec![("label".into(), c.label.clone())];
            }
        }
        assert_eq!(a, b, "identity and ordering normalized away");
        assert_eq!(a.len(), 2);
        // The compile span is filtered, so warm and cold cells have
        // identical shape: job -> attempt -> run_cell -> devsim.run.
        for cell in &a {
            assert_eq!(cell.spans.len(), 1);
            let job = &cell.spans[0];
            assert_eq!(job.name, "engine.job");
            let attempt = &job.children[0];
            assert_eq!(attempt.name, "engine.attempt");
            let run = &attempt.children[0];
            assert_eq!(run.name, "serve.run_cell");
            assert_eq!(run.children.len(), 1);
            assert_eq!(run.children[0].name, "devsim.run");
        }
    }

    #[test]
    fn virtual_timestamps_nest_and_advance_across_cells() {
        let cells = normalize(two_cells(10, [1, 2], [3, 4]));
        fn check(node: &SpanNode) {
            let end = node.start_ns + node.dur_ns;
            for c in &node.children {
                assert!(c.start_ns > node.start_ns, "child opens after parent");
                assert!(c.start_ns + c.dur_ns < end, "child closes before parent");
                check(c);
            }
        }
        for cell in &cells {
            check(&cell.spans[0]);
        }
        let first_end = cells[0].spans[0].start_ns + cells[0].spans[0].dur_ns;
        assert!(
            cells[1].spans[0].start_ns >= first_end,
            "cells occupy disjoint virtual time"
        );
    }

    fn mk_trace(id: &str) -> RequestTrace {
        let rr = RunRequest::parse("{\"benchmark\":\"LUD\"}").unwrap();
        RequestTrace::build(
            id.to_string(),
            "run",
            &rr,
            &Some("alice".to_string()),
            200,
            &[],
            0.25,
            two_cells(10, [1, 2], [3, 4]),
        )
    }

    #[test]
    fn trace_json_parses_and_round_trips_structure() {
        let t = mk_trace("00000000000000000000000000000abc");
        let body = t.render_json();
        let doc = paccport_trace::json::parse(&body).expect("trace body is valid JSON");
        assert_eq!(
            doc.get("trace_id").unwrap().as_str(),
            Some("00000000000000000000000000000abc")
        );
        assert_eq!(
            doc.get("request")
                .unwrap()
                .get("benchmark")
                .unwrap()
                .as_str(),
            Some("LUD")
        );
        let cells = doc.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2);
        let job = &cells[0].get("spans").unwrap().as_arr().unwrap()[0];
        assert_eq!(job.get("name").unwrap().as_str(), Some("engine.job"));
        let chain = job.get("children").unwrap().as_arr().unwrap()[0]
            .get("children")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(
            chain[0].get("name").unwrap().as_str(),
            Some("serve.run_cell")
        );
    }

    #[test]
    fn export_formats_render_from_the_normalized_tree() {
        let t = mk_trace("00000000000000000000000000000abc");
        let chrome = t.render_export(TraceFormat::Chrome);
        paccport_trace::json::parse(&chrome).expect("chrome export parses");
        assert!(chrome.contains("\"name\":\"devsim.run\""));
        let jsonl = t.render_export(TraceFormat::Jsonl);
        assert!(jsonl.lines().count() >= 8 + 6, "8 spans + 6 counters");
        let folded = t.render_export(TraceFormat::Folded);
        assert!(folded.contains("engine.job;engine.attempt;serve.run_cell;devsim.run "));
    }

    #[test]
    fn ring_evicts_oldest_and_replaces_duplicates() {
        let rec = FlightRecorder::new(2);
        rec.record(mk_trace("a0000000000000000000000000000000"));
        rec.record(mk_trace("b0000000000000000000000000000000"));
        rec.record(mk_trace("c0000000000000000000000000000000"));
        assert_eq!(rec.occupancy(), 2);
        assert!(rec.get("a0000000000000000000000000000000").is_none());
        assert!(rec.get("b0000000000000000000000000000000").is_some());
        // Re-recording an id replaces instead of double-counting.
        rec.record(mk_trace("b0000000000000000000000000000000"));
        assert_eq!(rec.occupancy(), 2);
        let idx = rec.render_index();
        paccport_trace::json::parse(&idx).unwrap();
        assert!(idx.contains("\"cap\":2"));
        assert!(idx.ends_with("\n"));
    }
}
