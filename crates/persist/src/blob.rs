//! Content-verified file store for compiled artifacts.
//!
//! Each entry is one file in the store directory:
//!
//! ```text
//! B1 <payload-len> <crc:016x>\n
//! <payload bytes, verbatim>
//! ```
//!
//! Writes use the classic crash-safe protocol: the full file is
//! written to `<name>.tmp`, then atomically renamed over `<name>`.
//! A crash before the rename leaves only a `.tmp` (ignored by reads,
//! swept by fsck); a crash after leaves a complete, verified entry —
//! readers can never observe a half-written artifact through the
//! final name, except via the simulated `torn-write` fault below.
//!
//! Reads verify the header length and checksum and treat any mismatch
//! as absence: the entry is evicted on the spot and the caller
//! recompiles, exactly the contract `ArtifactCache`'s generation
//! machinery already has for in-memory corruption.
//!
//! The `torn-write` chaos site (keyed `cache-file:<name>`) models the
//! one failure rename cannot rule out: metadata reordering landing a
//! partial payload under the final name. When it fires, a torn entry
//! is written *directly* to the final path and the process dies, so
//! the read-side verification and eviction path is exercised for
//! real.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use paccport_faults as faults;

use crate::fnv1a64;

const MAGIC: &str = "B1";
const TMP_SUFFIX: &str = ".tmp";

fn render(payload: &str) -> String {
    format!(
        "{MAGIC} {} {:016x}\n{payload}",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
}

/// Parse + verify an entry file's bytes; `None` = torn or corrupt.
fn parse(content: &str) -> Option<String> {
    let (header, payload) = content.split_once('\n')?;
    let mut parts = header.split(' ');
    if parts.next()? != MAGIC {
        return None;
    }
    let len: usize = parts.next()?.parse().ok()?;
    let crc_tok = parts.next()?;
    if crc_tok.len() != 16 || parts.next().is_some() {
        return None;
    }
    let crc = u64::from_str_radix(crc_tok, 16).ok()?;
    if payload.len() != len || fnv1a64(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload.to_string())
}

/// What [`BlobStore::fsck`] found and fixed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlobFsck {
    /// Entries that verified clean.
    pub entries: usize,
    /// Corrupt entries removed, by name (sorted).
    pub evicted: Vec<String>,
    /// Leftover `.tmp` files from interrupted writes, removed.
    pub temp_files_removed: usize,
}

/// A directory of checksummed artifact entries. Handles are cheap and
/// safe to share; every operation is a self-contained filesystem
/// transaction.
pub struct BlobStore {
    dir: PathBuf,
}

impl BlobStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: &Path) -> io::Result<BlobStore> {
        std::fs::create_dir_all(dir)?;
        Ok(BlobStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        debug_assert!(
            !name.is_empty()
                && !name.ends_with(TMP_SUFFIX)
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
            "entry name `{name}` is not filesystem-safe"
        );
        self.dir.join(name)
    }

    /// Store `payload` under `name`: write-temp → atomic-rename, with
    /// the `torn-write` chaos site in between (see module docs).
    pub fn put(&self, name: &str, payload: &str) -> io::Result<()> {
        let final_path = self.path_of(name);
        if faults::active() {
            let key = format!("cache-file:{name}");
            if !faults::already_injected(faults::FaultKind::TornWrite, &key)
                && faults::inject(faults::FaultKind::TornWrite, &key)
            {
                // Event is in the sink (durable if journaled). Land a
                // torn entry under the *final* name and die.
                let full = render(payload);
                let cut = full.len() * 2 / 3;
                let _ = std::fs::write(&final_path, &full.as_bytes()[..cut]);
                faults::crash_exit(&key);
            }
        }
        let tmp_path = self.dir.join(format!("{name}{TMP_SUFFIX}"));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(render(payload).as_bytes())?;
            f.flush()?;
        }
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Fetch + verify `name`. A missing entry is `None`; a torn or
    /// corrupt entry is evicted on the spot (counted in
    /// `disk_cache_evict_total`) and also reads as `None`.
    pub fn get(&self, name: &str) -> Option<String> {
        let path = self.path_of(name);
        let content = std::fs::read_to_string(&path).ok()?;
        match parse(&content) {
            Some(payload) => Some(payload),
            None => {
                let _ = std::fs::remove_file(&path);
                paccport_trace::metrics::counter_add("disk_cache_evict_total", &[], 1);
                None
            }
        }
    }

    /// Remove `name` if present.
    pub fn evict(&self, name: &str) {
        let _ = std::fs::remove_file(self.path_of(name));
    }

    /// Verify every entry, remove the corrupt ones and any leftover
    /// `.tmp` files. Intact entries are untouched.
    pub fn fsck(&self) -> io::Result<BlobFsck> {
        let mut report = BlobFsck::default();
        let mut names: Vec<(String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            names.push((name, entry.path()));
        }
        names.sort();
        for (name, path) in names {
            if name.ends_with(TMP_SUFFIX) {
                std::fs::remove_file(&path)?;
                report.temp_files_removed += 1;
                continue;
            }
            let ok = std::fs::read_to_string(&path)
                .ok()
                .as_deref()
                .and_then(parse)
                .is_some();
            if ok {
                report.entries += 1;
            } else {
                std::fs::remove_file(&path)?;
                paccport_trace::metrics::counter_add("disk_cache_evict_total", &[], 1);
                report.evicted.push(name);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(name: &str) -> BlobStore {
        let d = std::env::temp_dir().join(format!("paccport-blob-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        BlobStore::open(&d).unwrap()
    }

    #[test]
    fn put_get_round_trips_arbitrary_payloads() {
        let s = store("roundtrip");
        for (name, payload) in [
            ("empty", ""),
            ("plain", "hello"),
            ("multiline", "line one\nline two\n\ttabbed"),
            ("binaryish", "J1 0 deadbeef spoofed header\nB1 9 junk"),
        ] {
            s.put(name, payload).unwrap();
            assert_eq!(s.get(name).as_deref(), Some(payload), "{name}");
        }
        assert_eq!(s.get("never-stored"), None);
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let s = store("overwrite");
        s.put("k", "first").unwrap();
        s.put("k", "second, longer payload").unwrap();
        assert_eq!(s.get("k").as_deref(), Some("second, longer payload"));
    }

    #[test]
    fn every_truncation_point_reads_as_absent_and_evicts() {
        let s = store("truncate");
        s.put("k", "some artifact payload").unwrap();
        let full = std::fs::read(s.path_of("k")).unwrap();
        for cut in 0..full.len() {
            std::fs::write(s.path_of("k"), &full[..cut]).unwrap();
            assert_eq!(s.get("k"), None, "cut at {cut} must not verify");
            assert!(!s.path_of("k").exists(), "cut at {cut} must evict");
            std::fs::write(s.path_of("k"), &full).unwrap();
        }
        // The intact file still verifies after all that.
        assert_eq!(s.get("k").as_deref(), Some("some artifact payload"));
    }

    #[test]
    fn garbled_byte_reads_as_absent() {
        let s = store("garble");
        s.put("k", "some artifact payload").unwrap();
        let full = std::fs::read(s.path_of("k")).unwrap();
        for pos in 0..full.len() {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x01; // stays valid UTF-8 for ASCII content
            std::fs::write(s.path_of("k"), &bytes).unwrap();
            assert_eq!(s.get("k"), None, "garble at {pos} must not verify");
        }
    }

    #[test]
    fn fsck_sweeps_temp_files_and_corrupt_entries() {
        let s = store("fsck");
        s.put("good", "intact").unwrap();
        s.put("bad", "will corrupt").unwrap();
        let bad = s.path_of("bad");
        let mut bytes = std::fs::read(&bad).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&bad, bytes).unwrap();
        std::fs::write(s.dir.join("orphan.tmp"), "half a write").unwrap();

        let r = s.fsck().unwrap();
        assert_eq!(r.entries, 1);
        assert_eq!(r.evicted, vec!["bad".to_string()]);
        assert_eq!(r.temp_files_removed, 1);
        assert_eq!(s.get("good").as_deref(), Some("intact"));
        assert_eq!(
            s.fsck().unwrap(),
            BlobFsck {
                entries: 1,
                ..Default::default()
            }
        );
    }
}
