//! Whitespace-separated token codec for persisted payloads.
//!
//! Every durable record in this workspace — journal lines, artifact
//! headers, cell results — is a sequence of tokens separated by single
//! spaces, one record per line. The grammar is chosen so that a record
//! is always exactly one line (no token may contain a raw space or
//! newline) and so that decoding is exact:
//!
//! * strings are escaped: `\\` for backslash, `\s` for space, `\n` for
//!   newline, `\t` for tab, `\r` for carriage return, and `\e` for the
//!   empty string (an empty token would otherwise vanish between
//!   separators);
//! * `f64` is written as the 16-hex-digit big-endian form of
//!   `to_bits()`, so round-trips are bit-exact (NaN payloads included)
//!   and never depend on float formatting;
//! * integers and booleans use their ordinary decimal / `true`/`false`
//!   forms.
//!
//! [`Writer`] builds a record; [`Reader`] consumes one token at a time
//! and fails loudly (with the offending token) rather than guessing.

/// Escape a string into a single space-free token.
pub fn escape(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Errors on a dangling or unknown escape.
pub fn unescape(tok: &str) -> Result<String, String> {
    if tok == "\\e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(tok.len());
    let mut chars = tok.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape `\\{other}` in token `{tok}`")),
            None => return Err(format!("dangling backslash in token `{tok}`")),
        }
    }
    Ok(out)
}

/// Builds one record as a space-joined token sequence.
#[derive(Default)]
pub struct Writer {
    buf: String,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
    }

    /// Append a raw, already-token-safe word (tags, hex sums). The
    /// caller guarantees it contains no whitespace.
    pub fn word(&mut self, w: &str) -> &mut Self {
        debug_assert!(
            !w.is_empty() && !w.contains(char::is_whitespace),
            "word `{w}` is not token-safe"
        );
        self.sep();
        self.buf.push_str(w);
        self
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&escape(s));
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn u128_hex(&mut self, v: u128) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("{v:032x}"));
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.word(if v { "true" } else { "false" })
    }

    /// Bit-exact f64: 16 hex digits of `to_bits()`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("{:016x}", v.to_bits()));
        self
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

/// Consumes tokens from one record.
pub struct Reader<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
    record: &'a str,
}

impl<'a> Reader<'a> {
    pub fn new(record: &'a str) -> Self {
        Self {
            toks: record.split_ascii_whitespace(),
            record,
        }
    }

    fn context(&self) -> String {
        let mut r = self.record.to_string();
        if r.len() > 120 {
            r.truncate(120);
            r.push('…');
        }
        r
    }

    /// Next raw token, error if the record is exhausted.
    pub fn word(&mut self) -> Result<&'a str, String> {
        self.toks
            .next()
            .ok_or_else(|| format!("record ended early: `{}`", self.context()))
    }

    /// Next raw token, `None` if the record is exhausted.
    pub fn maybe_word(&mut self) -> Option<&'a str> {
        self.toks.next()
    }

    /// Next token which must equal `expect`.
    pub fn tag(&mut self, expect: &str) -> Result<(), String> {
        let got = self.word()?;
        if got == expect {
            Ok(())
        } else {
            Err(format!(
                "expected tag `{expect}`, got `{got}` in `{}`",
                self.context()
            ))
        }
    }

    pub fn str(&mut self) -> Result<String, String> {
        let tok = self.word()?;
        unescape(tok)
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        let tok = self.word()?;
        tok.parse().map_err(|_| format!("bad u64 `{tok}`"))
    }

    pub fn u128_hex(&mut self) -> Result<u128, String> {
        let tok = self.word()?;
        u128::from_str_radix(tok, 16).map_err(|_| format!("bad u128 hex `{tok}`"))
    }

    pub fn i64(&mut self) -> Result<i64, String> {
        let tok = self.word()?;
        tok.parse().map_err(|_| format!("bad i64 `{tok}`"))
    }

    pub fn usize(&mut self) -> Result<usize, String> {
        let tok = self.word()?;
        tok.parse().map_err(|_| format!("bad usize `{tok}`"))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        let tok = self.word()?;
        tok.parse().map_err(|_| format!("bad u32 `{tok}`"))
    }

    pub fn bool(&mut self) -> Result<bool, String> {
        match self.word()? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("bad bool `{other}`")),
        }
    }

    pub fn f64(&mut self) -> Result<f64, String> {
        let tok = self.word()?;
        let bits = u64::from_str_radix(tok, 16).map_err(|_| format!("bad f64 bits `{tok}`"))?;
        if tok.len() != 16 {
            return Err(format!("bad f64 bits `{tok}`"));
        }
        Ok(f64::from_bits(bits))
    }

    /// Consume and return every remaining token, single-space joined.
    /// Because records are single-space joined to begin with, feeding
    /// the result back to a new `Reader` re-reads the same tokens.
    pub fn rest(&mut self) -> String {
        self.toks.by_ref().collect::<Vec<_>>().join(" ")
    }

    /// Assert the record is fully consumed.
    pub fn end(&mut self) -> Result<(), String> {
        match self.toks.next() {
            None => Ok(()),
            Some(extra) => Err(format!("trailing token `{extra}` in `{}`", self.context())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_round_trip_through_escaping() {
        for s in [
            "",
            "plain",
            "with space",
            "tabs\tand\nnewlines\r",
            "back\\slash",
            "\\e",
            "trailing ",
            " leading",
            "unicode: gemütlich ≠ ascii",
        ] {
            let tok = escape(s);
            assert!(
                !tok.contains(' ') && !tok.contains('\n'),
                "token `{tok}` unsafe"
            );
            assert_eq!(unescape(&tok).unwrap(), s);
        }
    }

    #[test]
    fn unescape_rejects_malformed_tokens() {
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-300,
            std::f64::consts::PI,
        ] {
            let mut w = Writer::new();
            w.f64(v);
            let rec = w.finish();
            let mut r = Reader::new(&rec);
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
            r.end().unwrap();
        }
        // NaN payload preserved too.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        w.f64(nan);
        let rec = w.finish();
        assert_eq!(Reader::new(&rec).f64().unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn mixed_record_round_trips() {
        let mut w = Writer::new();
        w.word("cell")
            .str("fig3/c 1")
            .u64(42)
            .i64(-7)
            .bool(true)
            .f64(2.5)
            .u128_hex(0xdead_beef);
        let rec = w.finish();
        assert!(!rec.contains('\n'));
        let mut r = Reader::new(&rec);
        r.tag("cell").unwrap();
        assert_eq!(r.str().unwrap(), "fig3/c 1");
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.i64().unwrap(), -7);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.u128_hex().unwrap(), 0xdead_beef);
        r.end().unwrap();
    }

    #[test]
    fn reader_reports_early_end_and_trailing_tokens() {
        let mut r = Reader::new("only");
        r.tag("only").unwrap();
        assert!(r.word().is_err());
        let mut r2 = Reader::new("a b");
        r2.tag("a").unwrap();
        assert!(r2.end().is_err());
    }
}
