//! Append-only run journal with per-record checksums and torn-tail
//! recovery.
//!
//! ## File format
//!
//! One record per line:
//!
//! ```text
//! J1 <seq> <crc:016x> <escaped-payload>\n
//! ```
//!
//! `seq` is the record's 0-based position in the file (so a record
//! spliced out of order is detected as corruption, not silently
//! accepted), `crc` is FNV-1a over `seq`+payload, and the payload is
//! [`crate::wire::escape`]d so it can never contain a record
//! separator. A record is durable once its full line (terminated
//! newline included) has reached the file.
//!
//! ## Recovery
//!
//! [`Journal::open`] scans from the start and stops at the first line
//! that fails to parse or verify — everything before it is the
//! durable prefix, everything from it on is a torn tail from a write
//! the process did not survive, and is truncated away. The result is
//! always a state the journal legitimately passed through: the
//! pre-write state of the interrupted append (or a prefix of it when
//! corruption landed earlier), never a third state.
//!
//! ## Chaos sites
//!
//! [`Journal::append`] hosts the two persist fault kinds:
//!
//! * `torn-write`, keyed `journal:rec-<hash of payload>` — writes a
//!   truncated prefix of the record, then dies. Keying by payload
//!   (not position) makes the tear at-most-once across process lives:
//!   the resumed run recomputes the same cell, re-appends the same
//!   payload, finds the fault already in the restored ledger, and
//!   this time the write goes through.
//! * `crash`, keyed `journal:step-<seq>` — dies *after* the record is
//!   durable. Rolled against the sequence number the record actually
//!   got; a resumed journal continues at the next sequence number, so
//!   the same step is never rolled twice.
//!
//! Both sites fire the fault *event* into the configured sink (which
//! the CLI points back at this very journal) before dying, so the
//! resumed run can rebuild an identical fault ledger.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use paccport_faults as faults;

use crate::fnv1a64;
use crate::wire;

const MAGIC: &str = "J1";

fn record_crc(seq: u64, payload: &str) -> u64 {
    fnv1a64(format!("{seq}\u{1f}{payload}").as_bytes())
}

fn render_record(seq: u64, payload: &str) -> String {
    format!(
        "{MAGIC} {seq} {:016x} {}\n",
        record_crc(seq, payload),
        wire::escape(payload)
    )
}

/// Parse one journal line (without trailing newline) expected at
/// position `seq`. `None` means the line is torn or corrupt.
fn parse_record(line: &str, seq: u64) -> Option<String> {
    let mut parts = line.splitn(4, ' ');
    if parts.next()? != MAGIC {
        return None;
    }
    let got_seq: u64 = parts.next()?.parse().ok()?;
    let crc_tok = parts.next()?;
    if crc_tok.len() != 16 {
        return None;
    }
    let got_crc = u64::from_str_radix(crc_tok, 16).ok()?;
    let payload = wire::unescape(parts.next()?).ok()?;
    if got_seq != seq || got_crc != record_crc(seq, &payload) {
        return None;
    }
    Some(payload)
}

struct Inner {
    file: File,
    next_seq: u64,
}

/// An open, append-positioned run journal. See the module docs for
/// the format and recovery protocol.
pub struct Journal {
    inner: Mutex<Inner>,
}

/// The result of [`Journal::open`]: the handle plus what the scan of
/// existing contents found.
pub struct JournalOpen {
    pub journal: Journal,
    /// Payloads of the intact records, in append order.
    pub records: Vec<String>,
    /// Bytes of torn tail truncated away (0 for a clean journal).
    pub truncated_bytes: u64,
}

impl Journal {
    /// Start a fresh journal at `path`, discarding any existing file.
    pub fn create(path: &Path) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Journal {
            inner: Mutex::new(Inner { file, next_seq: 0 }),
        })
    }

    /// Open `path` (creating it if absent), verify every record, and
    /// truncate any torn tail so the file ends at the last durable
    /// record. Appends continue from there.
    pub fn open(path: &Path) -> io::Result<JournalOpen> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        // A crash can garble the tail into invalid UTF-8; that is
        // corruption to recover from, not an I/O error. Scan only the
        // longest valid prefix — the record checks below then stop at
        // (or before) the first damaged byte.
        let content = match std::str::from_utf8(&bytes) {
            Ok(s) => s,
            Err(e) => std::str::from_utf8(&bytes[..e.valid_up_to()]).unwrap(),
        };
        let mut records = Vec::new();
        let mut good_bytes = 0usize;
        for line in content.split_inclusive('\n') {
            let Some(body) = line.strip_suffix('\n') else {
                break; // unterminated final line: torn mid-write
            };
            let Some(payload) = parse_record(body, records.len() as u64) else {
                break;
            };
            records.push(payload);
            good_bytes += line.len();
        }
        let truncated_bytes = (bytes.len() - good_bytes) as u64;

        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        if truncated_bytes > 0 {
            file.set_len(good_bytes as u64)?;
        }
        let journal = Journal {
            inner: Mutex::new(Inner {
                file,
                next_seq: records.len() as u64,
            }),
        };
        Ok(JournalOpen {
            journal,
            records,
            truncated_bytes,
        })
    }

    /// Number of durable records (the next sequence number).
    pub fn len(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn write_line(&self, render: impl FnOnce(u64) -> String) -> io::Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        let line = render(seq);
        use std::io::Seek;
        inner.file.seek(io::SeekFrom::End(0))?;
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()?;
        inner.next_seq = seq + 1;
        paccport_trace::metrics::counter_add("journal_appends_total", &[], 1);
        Ok(seq)
    }

    /// Append a record durably, hosting the persist chaos sites (see
    /// the module docs). Returns the record's sequence number — unless
    /// an injected crash or torn write ends the process instead.
    pub fn append(&self, payload: &str) -> io::Result<u64> {
        if faults::active() {
            let torn_key = format!("journal:rec-{:016x}", fnv1a64(payload.as_bytes()));
            if !faults::already_injected(faults::FaultKind::TornWrite, &torn_key)
                && faults::inject(faults::FaultKind::TornWrite, &torn_key)
            {
                // The event reached the sink inside `inject` (and is
                // durable if the sink journals). Now leave the record
                // half-written — no newline, bytes cut mid-token —
                // and die like a power cut.
                let mut inner = self.inner.lock().unwrap();
                let seq = inner.next_seq;
                let line = render_record(seq, payload);
                let cut = line.len() / 2;
                use std::io::Seek;
                let _ = inner.file.seek(io::SeekFrom::End(0));
                let _ = inner.file.write_all(&line.as_bytes()[..cut]);
                let _ = inner.file.flush();
                drop(inner);
                faults::crash_exit(&torn_key);
            }
        }
        let seq = self.write_line(|seq| render_record(seq, payload))?;
        if faults::active() {
            let crash_key = format!("journal:step-{seq:06}");
            if faults::inject(faults::FaultKind::Crash, &crash_key) {
                faults::crash_exit(&crash_key);
            }
        }
        Ok(seq)
    }

    /// Append without rolling any fault — for records written *from*
    /// fault machinery (the event sink journaling an injected fault,
    /// metadata records). Rolling here would recurse: the sink fires
    /// inside `inject`, and an event append must never host the very
    /// fault it is recording.
    pub fn append_unrolled(&self, payload: &str) -> io::Result<u64> {
        self.write_line(|seq| render_record(seq, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("paccport-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("journal.log")
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let path = tmp("roundtrip");
        let j = Journal::create(&path).unwrap();
        assert!(j.is_empty());
        assert_eq!(j.append("cell one with spaces").unwrap(), 0);
        assert_eq!(j.append("").unwrap(), 1);
        assert_eq!(j.append("line\nbreaks\tand\\slashes").unwrap(), 2);
        drop(j);

        let open = Journal::open(&path).unwrap();
        assert_eq!(open.truncated_bytes, 0);
        assert_eq!(
            open.records,
            vec!["cell one with spaces", "", "line\nbreaks\tand\\slashes"]
        );
        assert_eq!(open.journal.len(), 3);
        // Appends continue at the next sequence number.
        assert_eq!(open.journal.append("four").unwrap(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_durable_prefix() {
        let path = tmp("torn");
        let j = Journal::create(&path).unwrap();
        j.append("a").unwrap();
        j.append("b").unwrap();
        let full = std::fs::read(&path).unwrap();
        // Tear at every byte boundary of the final record: recovery
        // must always yield exactly the first record.
        let first_len = {
            let text = String::from_utf8(full.clone()).unwrap();
            text.split_inclusive('\n').next().unwrap().len()
        };
        for cut in first_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let open = Journal::open(&path).unwrap();
            assert_eq!(open.records, vec!["a"], "cut at {cut}");
            assert_eq!(open.truncated_bytes, (cut - first_len) as u64);
            // The file itself was repaired in place.
            assert_eq!(std::fs::read(&path).unwrap().len(), first_len);
        }
    }

    #[test]
    fn garbled_record_invalidates_from_there_on() {
        let path = tmp("garble");
        let j = Journal::create(&path).unwrap();
        j.append("a").unwrap();
        j.append("b").unwrap();
        j.append("c").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the second record's checksum region.
        let text = String::from_utf8(bytes.clone()).unwrap();
        let second_start = text.split_inclusive('\n').next().unwrap().len();
        bytes[second_start + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let open = Journal::open(&path).unwrap();
        assert_eq!(open.records, vec!["a"]);
        assert!(open.truncated_bytes > 0);
    }

    #[test]
    fn spliced_record_with_wrong_seq_is_rejected() {
        let path = tmp("splice");
        let j = Journal::create(&path).unwrap();
        j.append("a").unwrap();
        drop(j);
        // Duplicate the (valid) first line: second copy claims seq 0
        // at position 1 and must be treated as corruption.
        let line = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{line}{line}")).unwrap();
        let open = Journal::open(&path).unwrap();
        assert_eq!(open.records, vec!["a"]);
        assert!(open.truncated_bytes > 0);
    }

    #[test]
    fn a_tail_garbled_into_invalid_utf8_is_recovered_not_an_error() {
        let path = tmp("nonutf8");
        let j = Journal::create(&path).unwrap();
        j.append("a").unwrap();
        j.append("b").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let second_start = text.split_inclusive('\n').next().unwrap().len();
        bytes[second_start + 2] = 0xff; // not valid in any UTF-8 sequence
        std::fs::write(&path, &bytes).unwrap();
        let open = Journal::open(&path).unwrap();
        assert_eq!(open.records, vec!["a"]);
        assert!(open.truncated_bytes > 0);
    }

    #[test]
    fn opening_a_missing_journal_starts_empty() {
        let path = tmp("fresh");
        let open = Journal::open(&path).unwrap();
        assert!(open.records.is_empty());
        assert_eq!(open.truncated_bytes, 0);
        open.journal.append("first").unwrap();
        assert_eq!(Journal::open(&path).unwrap().records, vec!["first"]);
    }
}
