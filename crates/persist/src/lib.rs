//! # paccport-persist — crash-consistent durable state
//!
//! The paper's full campaign is exactly the kind of long run
//! supercomputer users lose to node failures, and the in-process
//! resilience of `paccport-faults` + the engine's retry loop does not
//! survive the process itself dying: before this crate, one crash
//! discarded every compiled artifact and every finished cell. This
//! crate is the durability layer underneath the experiment engine:
//!
//! * [`wire`] — a tiny token codec (exact `f64` bit patterns, escaped
//!   strings) that every persisted payload is written in. No external
//!   serialization framework exists in this offline workspace, so the
//!   format is hand-rolled and deliberately boring: whitespace-
//!   separated tokens, one record per line.
//! * [`Journal`] — an append-only run journal with a per-record
//!   checksum. Appends are flushed before they are acknowledged, and
//!   [`Journal::open`] detects a torn tail (a record cut short or
//!   garbled by a crash mid-write) and truncates back to the last
//!   durable record — recovery always yields the pre-write or the
//!   post-write state, never a third.
//! * [`BlobStore`] — a content-keyed file store for compiled
//!   artifacts using the classic write-temp → checksum → atomic-rename
//!   protocol. Reads verify the payload checksum recorded in the file
//!   header; torn or corrupted entries read as absent and are evicted,
//!   letting the in-memory cache recompile through its existing
//!   generation machinery.
//! * [`fsck`] — offline verification of a whole state directory
//!   (journal + store), evicting unrecoverable entries and reporting
//!   what it repaired.
//!
//! Two deterministic fault kinds from `paccport-faults` have their
//! sites here: `crash` aborts the process right after a journal record
//! becomes durable (rolled against the record's step number), and
//! `torn-write` truncates/garbles the tail of an in-flight journal or
//! store write before aborting — the chaos the recovery paths above
//! are proven against.
//!
//! Metrics (`journal_appends_total`, `disk_cache_{hit,miss,evict}_total`,
//! `fsck_repairs_total`) flow through the `paccport-trace` registry.

pub mod blob;
pub mod journal;
pub mod wire;

pub use blob::{BlobFsck, BlobStore};
pub use journal::{Journal, JournalOpen};

use std::path::Path;

/// What [`fsck`] found and fixed in one state directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsckReport {
    /// Intact journal records.
    pub journal_records: usize,
    /// Bytes of torn journal tail truncated away.
    pub journal_truncated_bytes: u64,
    /// Intact artifact entries in the store.
    pub cache_entries: usize,
    /// Corrupt artifact entries evicted (file names).
    pub cache_evicted: Vec<String>,
    /// Leftover temp files from interrupted writes, removed.
    pub temp_files_removed: usize,
}

impl FsckReport {
    /// Number of distinct repairs performed (0 on a clean directory).
    pub fn repairs(&self) -> usize {
        usize::from(self.journal_truncated_bytes > 0)
            + self.cache_evicted.len()
            + self.temp_files_removed
    }

    pub fn is_clean(&self) -> bool {
        self.repairs() == 0
    }
}

/// The journal file name inside a state directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// The artifact-store subdirectory inside a state directory.
pub const CACHE_DIR: &str = "cache";

/// Verify (and repair) a state directory: truncate any torn journal
/// tail, evict artifact-store entries whose checksum does not verify,
/// and remove leftover temp files. Never touches intact state, so a
/// clean directory reports zero repairs. Errors only on I/O failures
/// that prevent inspection (a missing directory is such an error; a
/// missing journal or store inside an existing one is simply empty).
pub fn fsck(state_dir: &Path) -> Result<FsckReport, String> {
    if !state_dir.is_dir() {
        return Err(format!("{}: not a directory", state_dir.display()));
    }
    let mut report = FsckReport::default();

    let journal_path = state_dir.join(JOURNAL_FILE);
    if journal_path.exists() {
        let open =
            Journal::open(&journal_path).map_err(|e| format!("{}: {e}", journal_path.display()))?;
        report.journal_records = open.records.len();
        report.journal_truncated_bytes = open.truncated_bytes;
    }

    let cache_dir = state_dir.join(CACHE_DIR);
    if cache_dir.is_dir() {
        let store =
            BlobStore::open(&cache_dir).map_err(|e| format!("{}: {e}", cache_dir.display()))?;
        let bf = store
            .fsck()
            .map_err(|e| format!("{}: {e}", cache_dir.display()))?;
        report.cache_entries = bf.entries;
        report.cache_evicted = bf.evicted;
        report.temp_files_removed = bf.temp_files_removed;
    }

    let repairs = report.repairs();
    if repairs > 0 {
        paccport_trace::metrics::counter_add("fsck_repairs_total", &[], repairs as u64);
    }
    Ok(report)
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("paccport-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fsck_is_quiet_on_a_clean_directory() {
        let d = tmp("clean");
        // Populate a journal and a store entry, both intact.
        let j = Journal::create(&d.join(JOURNAL_FILE)).unwrap();
        j.append("cell a 1").unwrap();
        j.append("cell b 2").unwrap();
        let s = BlobStore::open(&d.join(CACHE_DIR)).unwrap();
        s.put("entry-1", "payload").unwrap();
        let r = fsck(&d).unwrap();
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.journal_records, 2);
        assert_eq!(r.cache_entries, 1);
        // Idempotent: a second pass still finds nothing.
        assert!(fsck(&d).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fsck_repairs_torn_journal_and_corrupt_store() {
        let d = tmp("repair");
        let path = d.join(JOURNAL_FILE);
        let j = Journal::create(&path).unwrap();
        j.append("cell a 1").unwrap();
        j.append("cell b 2").unwrap();
        drop(j);
        // Tear the tail mid-record.
        let text = std::fs::read(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        // Corrupt a store entry in place.
        let s = BlobStore::open(&d.join(CACHE_DIR)).unwrap();
        s.put("entry-1", "payload").unwrap();
        let f = d.join(CACHE_DIR).join("entry-1");
        let mut bytes = std::fs::read(&f).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&f, bytes).unwrap();

        let r = fsck(&d).unwrap();
        assert_eq!(r.journal_records, 1, "{r:?}");
        assert!(r.journal_truncated_bytes > 0);
        assert_eq!(r.cache_evicted, vec!["entry-1".to_string()]);
        assert_eq!(r.repairs(), 2);
        // And after repair the directory is clean again.
        assert!(fsck(&d).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fsck_rejects_a_missing_directory() {
        assert!(fsck(Path::new("/nonexistent/paccport-state")).is_err());
    }
}
