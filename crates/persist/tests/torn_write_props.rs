//! Property tests for torn-write recovery: whatever a crash does to
//! the tail of an in-flight write — truncation at any byte, garbling
//! of any byte — `fsck` always lands the state directory on a state
//! it legitimately passed through (pre-write or post-write), never a
//! third one, and a second pass finds nothing left to repair.

use proptest::prelude::*;

use paccport_persist::{fsck, BlobStore, Journal, CACHE_DIR, JOURNAL_FILE};

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "paccport-tornprops-{name}-{case}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A state dir with `n` journal records and one store entry; returns
/// (dir, record payloads).
fn populated(name: &str, case: u64, n: usize) -> (std::path::PathBuf, Vec<String>) {
    let d = tmp(name, case);
    let j = Journal::create(&d.join(JOURNAL_FILE)).unwrap();
    let mut payloads = Vec::new();
    for i in 0..n {
        let p = format!("cell m0/c{i} {:016x} ok {}", i as u64 * 0x9e37, i * 7);
        j.append(&p).unwrap();
        payloads.push(p);
    }
    let s = BlobStore::open(&d.join(CACHE_DIR)).unwrap();
    s.put("artifact-1", "caps gpu payload with some length to it")
        .unwrap();
    (d, payloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate the journal at an arbitrary byte: fsck recovers a
    /// strict prefix of the appended records, intact, and reports the
    /// rest as truncated.
    #[test]
    fn journal_truncation_recovers_a_durable_prefix(records in 1usize..6, cut_frac in 0.0f64..1.0) {
        let case = (records as u64) << 32 | (cut_frac * 1e6) as u64;
        let (d, payloads) = populated("trunc", case, records);
        let path = d.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let report = fsck(&d).unwrap();
        prop_assert!(report.journal_records <= records);
        // Post-repair, the survivors are bit-exact prefixes of what
        // was appended — never a record that was half one thing.
        let reopened = Journal::open(&path).unwrap();
        prop_assert_eq!(reopened.records.as_slice(), &payloads[..report.journal_records]);
        prop_assert_eq!(reopened.truncated_bytes, 0, "fsck must have repaired in place");
        // Idempotence: nothing left to repair.
        prop_assert!(fsck(&d).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }

    /// Garble one byte anywhere in the journal: recovery yields a
    /// prefix of the original records (possibly all of them, when the
    /// flip lands in an already-torn tail region or is idempotent).
    #[test]
    fn journal_garbling_never_invents_records(records in 1usize..6, pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let case = (records as u64) << 40 | ((pos_frac * 1e6) as u64) << 8 | flip as u64;
        let (d, payloads) = populated("garble", case, records);
        let path = d.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        // A flipped newline can merge two records; a flipped checksum
        // hex digit invalidates one. Either way the contract is the
        // same: recovered records are an exact prefix.
        std::fs::write(&path, &bytes).unwrap();

        let report = fsck(&d).unwrap();
        let reopened = Journal::open(&path).unwrap();
        prop_assert_eq!(reopened.records.as_slice(), &payloads[..report.journal_records]);
        prop_assert!(fsck(&d).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }

    /// Truncate or garble a store entry: the entry either still reads
    /// back bit-exact (the damage missed the payload, e.g. trailing
    /// slack) or fsck evicts it — it never reads back altered.
    #[test]
    fn store_corruption_reads_as_absent_never_as_altered(cut_frac in 0.0f64..1.0, garble in 0u8..=255) {
        let case = ((cut_frac * 1e6) as u64) << 8 | garble as u64;
        let d = tmp("blob", case);
        let s = BlobStore::open(&d.join(CACHE_DIR)).unwrap();
        let payload = "MAGIC 1 deadbeef compiled artifact body; checksums inside";
        s.put("entry-a", payload).unwrap();
        let f = d.join(CACHE_DIR).join("entry-a");
        let mut bytes = std::fs::read(&f).unwrap();
        if garble == 0 {
            // Truncation flavor.
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            bytes.truncate(cut);
        } else {
            let pos = (((bytes.len() - 1) as f64) * cut_frac) as usize;
            bytes[pos] ^= garble;
        }
        std::fs::write(&f, &bytes).unwrap();

        let report = fsck(&d).unwrap();
        let survivor = BlobStore::open(&d.join(CACHE_DIR)).unwrap().get("entry-a");
        match survivor {
            Some(got) => {
                prop_assert_eq!(got.as_str(), payload, "a verified read must be bit-exact");
                prop_assert_eq!(report.cache_evicted.len(), 0);
            }
            None => {
                prop_assert_eq!(report.cache_evicted.as_slice(), &["entry-a".to_string()]);
            }
        }
        prop_assert!(fsck(&d).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }

    /// Leftover `.tmp` files from an interrupted put are removed and
    /// never shadow the real entry.
    #[test]
    fn interrupted_temp_files_are_swept(len in 0usize..64) {
        let d = tmp("tempsweep", len as u64);
        let s = BlobStore::open(&d.join(CACHE_DIR)).unwrap();
        s.put("entry-a", "payload").unwrap();
        std::fs::write(d.join(CACHE_DIR).join("entry-b.tmp"), vec![b'x'; len]).unwrap();

        let report = fsck(&d).unwrap();
        prop_assert_eq!(report.temp_files_removed, 1);
        prop_assert_eq!(report.cache_entries, 1);
        let s2 = BlobStore::open(&d.join(CACHE_DIR)).unwrap();
        let a = s2.get("entry-a");
        prop_assert_eq!(a.as_deref(), Some("payload"));
        prop_assert_eq!(s2.get("entry-b"), None);
        prop_assert!(fsck(&d).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }
}
