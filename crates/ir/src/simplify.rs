//! Expression simplification: constant folding and algebraic
//! identities.
//!
//! The loop transformations (unroll, strip-mine, tiling) synthesize
//! expressions like `i + 0`, `(n - 0 + 0) / 1 * 1` or `0 * t + j`;
//! real source-to-source compilers fold these before code generation,
//! and so do we — otherwise the static PTX counts would charge the
//! transforms for arithmetic no hardware ever executes.
//!
//! The pass is semantics-preserving over the interpreter's evaluation
//! rules: integer folding uses the engines' wrapping i64 arithmetic
//! (shifts outside `0..64` are left unfolded — the oracle rejects
//! them), and floating-point expressions are *not* reassociated (only
//! bitwise-exact identities like `x - 0.0` and `x * 1.0` apply; the
//! additive forms are inexact for `-0.0` and are deliberately absent).
//! Identities that are exact for one value class but not another
//! (`i + 0` is an integer-path identity; `x * 1.0` a float-path one)
//! are gated on a static [`ValueKind`] analysis seeded from `Let`
//! types and loop variables, because a fold that moves an operand
//! between the f32-narrowed float path and the wrapping integer path
//! changes bits even when the algebra is right. Float identities
//! additionally require the operand to be a *narrowed* float (an
//! exact f32 widening, see [`narrowed_float`]): `0.1 * 1.0` is not
//! `0.1` under f32 arithmetic, it is `0.1f32 as f64`.

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::{Kernel, KernelBody};
use crate::stmt::{Block, Stmt};
use crate::types::{Scalar, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// The runtime value class an expression evaluates to — the engines'
/// `V::I`/`V::F`/`V::B` split. Folds that would change an
/// expression's class (e.g. `3 * 1.0 → 3`, float-path to int-path)
/// are inexact: the class decides whether enclosing arithmetic runs
/// the f32-narrowed float path or the wrapping integer path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    Int,
    Float,
    Bool,
}

/// Statically known kinds for names in scope: variables (from `Let`
/// types, loop variables, and kernel local declarations) and program
/// parameters (from their declarations).
#[derive(Debug, Clone, Default)]
pub struct KindEnv {
    vars: BTreeMap<VarId, ValueKind>,
    /// Float-kinded variables whose value is additionally known to be
    /// a widened f32 (`(v as f32) as f64 == v`): `Let` with a declared
    /// `F32` type coerces through f32, so the binding is narrowed.
    /// `F64` bindings and plain `Assign`s (which do not coerce) are
    /// not.
    narrowed: BTreeSet<VarId>,
    params: BTreeMap<crate::types::ParamId, ValueKind>,
}

impl KindEnv {
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed parameter kinds from a program's declarations. Both
    /// engines bind `F32`/`F64` parameters as floats and *everything
    /// else* — booleans included — as truncated integers, so the
    /// param kind is never `Bool`.
    pub fn for_program(p: &crate::program::Program) -> Self {
        let mut env = Self::default();
        for (i, d) in p.params.iter().enumerate() {
            let kind = match d.ty {
                Scalar::F32 | Scalar::F64 => ValueKind::Float,
                _ => ValueKind::Int,
            };
            env.params.insert(crate::types::ParamId(i as u32), kind);
        }
        env
    }

    pub fn set_var(&mut self, v: VarId, k: ValueKind) {
        self.vars.insert(v, k);
        self.narrowed.remove(&v);
    }

    /// Bind a variable from a declared scalar type, as `Let` does:
    /// `F32` bindings are narrowed (the interpreter's `coerce` routes
    /// them through f32), everything else only has a kind.
    pub fn set_var_scalar(&mut self, v: VarId, ty: Scalar) {
        self.set_var(v, scalar_kind(ty));
        if ty == Scalar::F32 {
            self.narrowed.insert(v);
        }
    }

    /// Forget everything about a variable (an `Assign` of unknown
    /// kind, or a variable mutated inside a loop body).
    pub fn remove_var(&mut self, v: VarId) {
        self.vars.remove(&v);
        self.narrowed.remove(&v);
    }

    pub fn var_kind(&self, v: VarId) -> Option<ValueKind> {
        self.vars.get(&v).copied()
    }

    pub fn var_narrowed(&self, v: VarId) -> bool {
        self.narrowed.contains(&v)
    }

    pub fn param_kind(&self, id: crate::types::ParamId) -> Option<ValueKind> {
        self.params.get(&id).copied()
    }
}

/// The kind a declared scalar type coerces to: the interpreter's
/// `coerce` maps `F32`/`F64` to `V::F`, `I32`/`U32` to `V::I`.
pub fn scalar_kind(s: Scalar) -> ValueKind {
    match s {
        Scalar::F32 | Scalar::F64 => ValueKind::Float,
        Scalar::I32 | Scalar::U32 => ValueKind::Int,
        Scalar::Bool => ValueKind::Bool,
    }
}

/// Static value-kind of an expression, mirroring the interpreter's
/// dispatch. `None` means unknown (free variables, parameters, loads
/// — anything whose kind needs context we don't have).
pub fn value_kind(e: &Expr, env: &KindEnv) -> Option<ValueKind> {
    use ValueKind::*;
    match e {
        Expr::IConst(_) | Expr::Special(_) => Some(Int),
        Expr::FConst(_) => Some(Float),
        Expr::BConst(_) => Some(Bool),
        Expr::Var(v) => env.var_kind(*v),
        Expr::Param(id) => env.param_kind(*id),
        Expr::Load { .. } => None,
        Expr::Un(op, a) => match op {
            // Neg/Abs keep the integer path only for `V::I`; anything
            // else (including Bool) goes through `as_f()`.
            UnOp::Neg | UnOp::Abs => match value_kind(a, env) {
                Some(Int) => Some(Int),
                Some(Float) | Some(Bool) => Some(Float),
                None => None,
            },
            UnOp::Rcp | UnOp::Sqrt | UnOp::Exp => Some(Float),
            UnOp::Not => Some(Bool),
        },
        Expr::Bin(op, a, b) => match op {
            BinOp::And | BinOp::Or => Some(Bool),
            BinOp::Shl | BinOp::Shr => Some(Int),
            _ => {
                // Float if either side is float, integer if neither
                // can be (Bool coerces through `as_i` on that path).
                let (ka, kb) = (value_kind(a, env), value_kind(b, env));
                match (ka, kb) {
                    (Some(Float), _) | (_, Some(Float)) => Some(Float),
                    (Some(Int) | Some(Bool), Some(Int) | Some(Bool)) => Some(Int),
                    _ => None,
                }
            }
        },
        Expr::Cmp(..) => Some(Bool),
        Expr::Fma(..) => Some(Float),
        Expr::Select(_, a, b) => {
            let (ka, kb) = (value_kind(a, env), value_kind(b, env));
            if ka.is_some() && ka == kb {
                ka
            } else {
                None
            }
        }
        Expr::Cast(t, _) => Some(scalar_kind(*t)),
    }
}

/// Is the expression guaranteed to produce a float value that is an
/// exact f32 widening (`(v as f32) as f64 == v`)?
///
/// Both engines compute float arithmetic by narrowing each operand to
/// f32, operating, and widening back, so `x * 1.0 → x` is only
/// bitwise-exact when `x`'s value is already in that narrowed set —
/// for `x = 0.1` (an f64 literal no f32 represents), the unfolded
/// multiply rounds to `0.1f32 as f64` while the folded form keeps
/// `0.1`. Float arithmetic results, `Fma`, casts to `F32`, and `F32`
/// `Let` bindings are narrowed; `F64` values, `Rcp`/`Sqrt`/`Exp`
/// (computed in f64), parameters, and loads are not assumed to be.
pub fn narrowed_float(e: &Expr, env: &KindEnv) -> bool {
    use ValueKind::*;
    match e {
        Expr::FConst(v) => v.to_bits() == ((*v as f32) as f64).to_bits(),
        Expr::Var(v) => env.var_narrowed(*v),
        Expr::Bin(
            BinOp::Add
            | BinOp::Sub
            | BinOp::Mul
            | BinOp::Div
            | BinOp::Rem
            | BinOp::Min
            | BinOp::Max,
            ..,
        ) => value_kind(e, env) == Some(Float),
        Expr::Fma(..) => true,
        Expr::Cast(Scalar::F32, _) => true,
        // Negating or taking |·| of a narrowed value stays narrowed
        // (sign flips never leave the f32 set); a boolean operand is
        // coerced to ±0.0/±1.0, f32-exact by construction.
        Expr::Un(UnOp::Neg | UnOp::Abs, a) => match value_kind(a, env) {
            Some(Bool) => true,
            Some(Float) => narrowed_float(a, env),
            _ => false,
        },
        Expr::Select(_, a, b) => narrowed_float(a, env) && narrowed_float(b, env),
        _ => false,
    }
}

/// Simplify an expression tree bottom-up, with no variable-kind
/// context (only folds that are exact for *any* operand kind apply to
/// free variables; see [`simplify_in`]).
pub fn simplify(e: &Expr) -> Expr {
    simplify_in(e, &KindEnv::new())
}

/// Simplify with statically known variable kinds. Kind information
/// widens the applicable identity set: `i + 0 → i` is only exact when
/// `i` is integer-valued (the float path turns `-0.0 + 0` into
/// `+0.0`), and `x * 1.0 → x` only when `x` is float-valued (folding
/// would flip an integer operand off the f32-narrowed float path).
pub fn simplify_in(e: &Expr, env: &KindEnv) -> Expr {
    match e {
        Expr::Un(op, a) => {
            let a = simplify_in(a, env);
            match (op, &a) {
                (UnOp::Neg, Expr::IConst(v)) => Expr::IConst(v.wrapping_neg()),
                (UnOp::Neg, Expr::FConst(v)) => Expr::FConst(-v),
                (UnOp::Abs, Expr::IConst(v)) => Expr::IConst(v.wrapping_abs()),
                (UnOp::Abs, Expr::FConst(v)) => Expr::FConst(v.abs()),
                (UnOp::Not, Expr::BConst(v)) => Expr::BConst(!v),
                // --x = x, for known-numeric x (a boolean would have
                // been coerced to float by the inner negation).
                (UnOp::Neg, Expr::Un(UnOp::Neg, inner))
                    if matches!(
                        value_kind(inner, env),
                        Some(ValueKind::Int) | Some(ValueKind::Float)
                    ) =>
                {
                    (**inner).clone()
                }
                _ => Expr::un(*op, a),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = simplify_in(a, env);
            let b = simplify_in(b, env);
            simplify_bin(*op, a, b, env)
        }
        Expr::Cmp(op, a, b) => Expr::cmp(*op, simplify_in(a, env), simplify_in(b, env)),
        Expr::Fma(a, b, c) => Expr::fma(
            simplify_in(a, env),
            simplify_in(b, env),
            simplify_in(c, env),
        ),
        Expr::Select(c, a, b) => {
            let c = simplify_in(c, env);
            match c {
                Expr::BConst(true) => simplify_in(a, env),
                Expr::BConst(false) => simplify_in(b, env),
                c => Expr::select(c, simplify_in(a, env), simplify_in(b, env)),
            }
        }
        Expr::Cast(t, a) => {
            let a = simplify_in(a, env);
            match (&a, t) {
                // Route through f64 first: the interpreter coerces via
                // `as_f()`, so a direct i64→f32 cast would double-round
                // differently for |v| ≥ 2^53.
                (Expr::IConst(v), crate::types::Scalar::F32) => {
                    Expr::FConst((*v as f64) as f32 as f64)
                }
                (Expr::IConst(v), crate::types::Scalar::I32) => Expr::IConst(*v as i32 as i64),
                _ => Expr::cast(*t, a),
            }
        }
        Expr::Load {
            space,
            array,
            index,
        } => Expr::Load {
            space: *space,
            array: *array,
            index: Box::new(simplify_in(index, env)),
        },
        leaf => leaf.clone(),
    }
}

fn simplify_bin(op: BinOp, a: Expr, b: Expr, env: &KindEnv) -> Expr {
    use BinOp::*;
    // Integer constant folding (wrapping i64, matching the engines'
    // arithmetic; a plain `+` here would panic in debug builds on
    // overflow the interpreter happily wraps through). Division leaves
    // `i64::MIN / -1` unfolded — the interpreter traps on it, so
    // folding would hide the trap. Shifts outside `0..64` stay
    // unfolded too: the oracle rejects them, and folding the masked
    // value would mask that rejection.
    if let (Expr::IConst(x), Expr::IConst(y)) = (&a, &b) {
        let v = match op {
            Add => Some(x.wrapping_add(*y)),
            Sub => Some(x.wrapping_sub(*y)),
            Mul => Some(x.wrapping_mul(*y)),
            Div if *y != 0 && !(*x == i64::MIN && *y == -1) => Some(x.wrapping_div(*y)),
            Rem if *y != 0 && !(*x == i64::MIN && *y == -1) => Some(x.wrapping_rem(*y)),
            Min => Some(*x.min(y)),
            Max => Some(*x.max(y)),
            Shl if (0..64).contains(y) => Some(x << y),
            Shr if (0..64).contains(y) => Some(x >> y),
            _ => None,
        };
        if let Some(v) = v {
            return Expr::IConst(v);
        }
    }
    let is_int = |x: &Expr| value_kind(x, env) == Some(ValueKind::Int);
    // Float operands must additionally be *narrowed* (exact f32
    // widenings): the engines run every float op through f32, so
    // dropping an op keeps precision an f64-valued x (`0.1`, a `Rcp`,
    // an `F64` binding) would otherwise lose.
    let is_narrowed = |x: &Expr| narrowed_float(x, env);
    match (op, &a, &b) {
        // x + 0, 0 + x: exact only when x is integer-valued — on the
        // float path `-0.0 + 0` produces `+0.0`, so the fold would
        // keep a `-0.0` the engines wash away.
        (Add, x, Expr::IConst(0)) if is_int(x) => x.clone(),
        (Add, Expr::IConst(0), x) if is_int(x) => x.clone(),
        // x - 0 is exact on both numeric paths: integer subtraction of
        // zero is the identity, and float `x - (+0.0)` is
        // bitwise-exact for narrowed x. A *boolean* x must not fold
        // (the op coerces it to `V::I(1)`, which the bare x would
        // skip), and unknown kinds could be boolean loads, so only
        // known numerics fold.
        (Sub, x, Expr::IConst(0)) if is_int(x) || is_narrowed(x) => x.clone(),
        // x - (+0.0) is the only bitwise-exact float-*typed*-zero
        // identity: `x + 0.0` and `0.0 + x` rewrite `x = -0.0` to
        // `+0.0`, and `x - (-0.0)` does the same, so those forms must
        // not fold. `to_bits() == 0` admits +0.0 only (`-0.0 == 0.0`
        // is true!). Gated on a narrowed float x: folding away the op
        // would move an integer x off the float path, and would skip
        // the f32 rounding a wider x still owes.
        (Sub, x, Expr::FConst(z)) if z.to_bits() == 0 && is_narrowed(x) => x.clone(),
        // x * 1, 1 * x, x / 1 hold on both numeric paths (booleans,
        // unknowns, and un-narrowed floats excluded as above).
        (Mul, x, Expr::IConst(1)) | (Div, x, Expr::IConst(1)) if is_int(x) || is_narrowed(x) => {
            x.clone()
        }
        (Mul, Expr::IConst(1), x) if is_int(x) || is_narrowed(x) => x.clone(),
        // Float-typed one: gated like the float-typed zero above.
        (Mul, x, Expr::FConst(o)) | (Div, x, Expr::FConst(o)) if *o == 1.0 && is_narrowed(x) => {
            x.clone()
        }
        (Mul, Expr::FConst(o), x) if *o == 1.0 && is_narrowed(x) => x.clone(),
        // x * 0, 0 * x — integer-valued x only: on the float path
        // `0 * NaN` stays NaN and `0 * -5.0` is `-0.0`, not `0`.
        (Mul, x, Expr::IConst(0)) if is_int(x) => Expr::IConst(0),
        (Mul, Expr::IConst(0), x) if is_int(x) => Expr::IConst(0),
        // (a + c1) + c2 → a + (c1+c2). Integer-valued a only: float
        // addition does not reassociate. Wrapping constants keep the
        // rewrite exact even when a fold overflows (associativity
        // holds mod 2^64).
        (Add, Expr::Bin(BinOp::Add, x, c1), Expr::IConst(c2)) if is_int(x) => {
            if let Expr::IConst(c1) = **c1 {
                return simplify_bin(Add, (**x).clone(), Expr::IConst(c1.wrapping_add(*c2)), env);
            }
            Expr::bin(op, a.clone(), b.clone())
        }
        // (a - c1) + c2 / (a + c1) - c2
        (Add, Expr::Bin(BinOp::Sub, x, c1), Expr::IConst(c2)) if is_int(x) => {
            if let Expr::IConst(c1) = **c1 {
                return simplify_bin(Sub, (**x).clone(), Expr::IConst(c1.wrapping_sub(*c2)), env);
            }
            Expr::bin(op, a.clone(), b.clone())
        }
        (Sub, Expr::Bin(BinOp::Add, x, c1), Expr::IConst(c2)) if is_int(x) => {
            if let Expr::IConst(c1) = **c1 {
                return simplify_bin(Add, (**x).clone(), Expr::IConst(c1.wrapping_sub(*c2)), env);
            }
            Expr::bin(op, a.clone(), b.clone())
        }
        _ => Expr::bin(op, a, b),
    }
}

/// Simplify every expression in a block, learning variable kinds from
/// the `Let` and `For` statements it passes.
pub fn simplify_block(b: &Block) -> Block {
    simplify_block_in(b, &mut KindEnv::new())
}

/// [`simplify_block`] with a pre-seeded kind environment. The
/// environment accumulates across the block: `VarId`s are unique per
/// program, so a binding never needs to be retracted.
pub fn simplify_block_in(b: &Block, env: &mut KindEnv) -> Block {
    Block(b.0.iter().map(|s| simplify_stmt(s, env)).collect())
}

/// Every variable a `Stmt::Assign` anywhere in the block (including
/// nested `If`/`For` bodies) mutates.
fn assigned_vars(b: &Block) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    b.walk(&mut |s| {
        if let Stmt::Assign { var, .. } = s {
            out.insert(*var);
        }
    });
    out
}

/// Every variable a `Stmt::Let` anywhere in the block (including
/// nested `If`/`For` bodies) rebinds. `Let` writes the variable's
/// underlying slot even though the *name* is block-scoped, so a
/// shadowing `Let` inside a branch or loop body changes what an
/// outer-scoped read observes afterwards.
fn let_vars(b: &Block) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    b.walk(&mut |s| {
        if let Stmt::Let { var, .. } = s {
            out.insert(*var);
        }
    });
    out
}

fn simplify_stmt(s: &Stmt, env: &mut KindEnv) -> Stmt {
    match s {
        Stmt::Let { var, ty, init } => {
            // The init sees the outer environment; the binding's kind
            // comes from the declared type (`Let` coerces, so an `F32`
            // binding is also narrowed).
            let init = simplify_in(init, env);
            env.set_var_scalar(*var, *ty);
            Stmt::Let {
                var: *var,
                ty: *ty,
                init,
            }
        }
        Stmt::Assign { var, value } => {
            // `Assign` does *not* coerce to the `Let`'s declared type,
            // so the binding takes the right-hand side's kind (and
            // narrowedness) from here on.
            let value = simplify_in(value, env);
            match value_kind(&value, env) {
                Some(k) => {
                    let narrow = k == ValueKind::Float && narrowed_float(&value, env);
                    env.set_var(*var, k);
                    if narrow {
                        env.narrowed.insert(*var);
                    }
                }
                None => env.remove_var(*var),
            }
            Stmt::Assign { var: *var, value }
        }
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => Stmt::Store {
            space: *space,
            array: *array,
            index: simplify_in(index, env),
            value: simplify_in(value, env),
        },
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            // Each branch runs (or not) on its own, so `Assign`s made
            // inside one must not leak kinds into the other or into
            // the statements after the `If`. A shadowing `Let` inside
            // a branch writes the same underlying slot, so it counts
            // as a write too — a read after the `If` (scoped to an
            // outer `Let`) observes the branch's value when the
            // branch ran. Simplify each branch under its own clone,
            // then meet: a written var's kind survives only where the
            // not-taken path (the pre-`If` env) and both branch exits
            // all agree.
            let cond = simplify_in(cond, env);
            let mut then_env = env.clone();
            let mut else_env = env.clone();
            let then_blk = simplify_block_in(then_blk, &mut then_env);
            let else_blk = simplify_block_in(else_blk, &mut else_env);
            let mut written: BTreeSet<VarId> = BTreeSet::new();
            written.extend(assigned_vars(&then_blk));
            written.extend(assigned_vars(&else_blk));
            written.extend(let_vars(&then_blk));
            written.extend(let_vars(&else_blk));
            for v in written {
                let k = env.var_kind(v);
                if k.is_none() || then_env.var_kind(v) != k || else_env.var_kind(v) != k {
                    env.remove_var(v);
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            }
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let lo = simplify_in(lo, env);
            let hi = simplify_in(hi, env);
            env.set_var(*var, ValueKind::Int);
            // A variable assigned (or re-`Let`) anywhere in the body
            // changes kind for iterations after the first, so
            // statements *before* that write cannot rely on its
            // pre-loop binding.
            for v in assigned_vars(body).union(&let_vars(body)) {
                env.remove_var(*v);
            }
            let body = simplify_block_in(body, env);
            // After the loop the env must not claim post-iteration
            // kinds either: with a zero-trip count (bounds are
            // runtime values) none of the body's writes happened, so
            // a read after the loop may still see the pre-loop
            // binding. Retract everything the body wrote — unless
            // both bounds are constants proving at least one trip,
            // in which case the body-exit kinds (computed above
            // under the retracted entry env, so valid for any
            // iteration) are exactly what a post-loop read sees.
            let guaranteed_trip = matches!((&lo, &hi), (Expr::IConst(a), Expr::IConst(b)) if b > a);
            if !guaranteed_trip {
                for v in assigned_vars(&body).union(&let_vars(&body)) {
                    env.remove_var(*v);
                }
            }
            Stmt::For {
                var: *var,
                lo,
                hi,
                step: *step,
                body,
            }
        }
        Stmt::Barrier => Stmt::Barrier,
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => Stmt::Atomic {
            op: *op,
            array: *array,
            index: simplify_in(index, env),
            value: simplify_in(value, env),
        },
    }
}

/// Simplify every expression of a kernel (bounds and body). Parallel
/// loop variables, declared locals, and `Let`/`For` bindings all feed
/// the kind environment, so loop-index debris like `i + 0` folds.
pub fn simplify_kernel(k: &mut Kernel) {
    simplify_kernel_in(k, &KindEnv::new())
}

/// [`simplify_kernel`] with an ambient environment — typically
/// [`KindEnv::for_program`], so `Param` kinds are known and identities
/// like `n * 1` fold.
pub fn simplify_kernel_in(k: &mut Kernel, base: &KindEnv) {
    let mut env = base.clone();
    for (var, ty) in &k.locals {
        env.set_var(*var, scalar_kind(*ty));
    }
    for lp in &mut k.loops {
        lp.lo = simplify_in(&lp.lo, &env);
        lp.hi = simplify_in(&lp.hi, &env);
        env.set_var(lp.var, ValueKind::Int);
    }
    match &mut k.body {
        KernelBody::Simple(b) => *b = simplify_block_in(b, &mut env),
        KernelBody::Grouped(g) => {
            // Phases share one scope: a phase-1 `Let` (e.g. the thread
            // id) is read by every later phase.
            for phase in &mut g.phases {
                *phase = simplify_block_in(phase, &mut env);
            }
        }
    }
    if let Some(rr) = &mut k.region_reduction {
        rr.value = simplify_in(&rr.value, &env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::E;
    use crate::types::VarId;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// Environment declaring `v(0)` as an integer variable.
    fn int_env() -> KindEnv {
        let mut e = KindEnv::new();
        e.set_var(v(0), ValueKind::Int);
        e
    }

    /// Environment declaring `v(0)` as an `F32` (narrowed-float)
    /// variable, as a `Let` with that type would.
    fn float_env() -> KindEnv {
        let mut e = KindEnv::new();
        e.set_var_scalar(v(0), Scalar::F32);
        e
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = (E::from(3i64) * 4i64 + 5i64).expr();
        assert_eq!(simplify(&e), Expr::IConst(17));
    }

    /// A shadowing `Let` inside an `If` branch writes the same
    /// underlying slot, so after the `If` the variable's runtime kind
    /// is no longer the outer declaration's: `x + 0` must not fold
    /// (at runtime `x` holds the branch's f64, and the float path of
    /// `+ 0` narrows through f32 — dropping it would change bits).
    #[test]
    fn branch_shadow_let_retracts_kind() {
        let x = v(0);
        let b = Block::new(vec![
            Stmt::Let {
                var: x,
                ty: Scalar::I32,
                init: Expr::iconst(1),
            },
            Stmt::If {
                cond: Expr::BConst(true),
                then_blk: Block::new(vec![Stmt::Let {
                    var: x,
                    ty: Scalar::F64,
                    init: Expr::FConst(0.1),
                }]),
                else_blk: Block::new(vec![]),
            },
            Stmt::Let {
                var: v(1),
                ty: Scalar::F64,
                init: Expr::bin(BinOp::Add, Expr::var(x), Expr::iconst(0)),
            },
        ]);
        let out = simplify_block_in(&b, &mut KindEnv::new());
        let Stmt::Let { init, .. } = &out.0[2] else {
            panic!("shape preserved");
        };
        assert!(
            matches!(init, Expr::Bin(BinOp::Add, _, _)),
            "x + 0 folded despite branch-shadowed kind: {init:?}"
        );
    }

    /// A `For` body's writes may never happen (zero-trip count), so
    /// after the loop the env must not claim the post-iteration kind:
    /// `x` may still hold its pre-loop f64, and folding `x + 0` as an
    /// integer identity would skip the narrowing float path.
    #[test]
    fn zero_trip_for_assign_retracts_kind() {
        let x = v(0);
        let b = Block::new(vec![
            Stmt::Let {
                var: x,
                ty: Scalar::F64,
                init: Expr::FConst(0.1),
            },
            Stmt::For {
                var: v(1),
                lo: Expr::iconst(0),
                hi: Expr::var(v(2)),
                step: 1,
                body: Block::new(vec![Stmt::Assign {
                    var: x,
                    value: Expr::iconst(1),
                }]),
            },
            Stmt::Let {
                var: v(3),
                ty: Scalar::F64,
                init: Expr::bin(BinOp::Add, Expr::var(x), Expr::iconst(0)),
            },
        ]);
        let mut env = KindEnv::new();
        env.set_var(v(2), ValueKind::Int);
        let out = simplify_block_in(&b, &mut env);
        let Stmt::Let { init, .. } = &out.0[2] else {
            panic!("shape preserved");
        };
        assert!(
            matches!(init, Expr::Bin(BinOp::Add, _, _)),
            "x + 0 folded despite zero-trip loop hazard: {init:?}"
        );
    }

    #[test]
    fn removes_additive_and_multiplicative_identities() {
        let env = int_env();
        let x = Expr::var(v(0));
        assert_eq!(
            simplify_in(&Expr::bin(BinOp::Add, x.clone(), Expr::iconst(0)), &env),
            x
        );
        assert_eq!(
            simplify_in(&Expr::bin(BinOp::Mul, Expr::iconst(1), x.clone()), &env),
            x
        );
        assert_eq!(
            simplify_in(&Expr::bin(BinOp::Div, x.clone(), Expr::iconst(1)), &env),
            x
        );
        assert_eq!(
            simplify_in(&Expr::bin(BinOp::Mul, x.clone(), Expr::iconst(0)), &env),
            Expr::IConst(0)
        );
    }

    #[test]
    fn unknown_kind_blocks_kind_changing_identities() {
        // With no kind information a variable could be float-valued
        // (so `x + 0` is inexact for -0.0) or boolean (so `x * 1`
        // would change the value class). Only `x * 0`-free, kind-safe
        // folds may touch it — which is none of the identities.
        let x = Expr::var(v(0));
        for e in [
            Expr::bin(BinOp::Add, x.clone(), Expr::iconst(0)),
            Expr::bin(BinOp::Sub, x.clone(), Expr::iconst(0)),
            Expr::bin(BinOp::Mul, x.clone(), Expr::iconst(1)),
            Expr::bin(BinOp::Mul, x.clone(), Expr::iconst(0)),
            Expr::bin(BinOp::Div, x.clone(), Expr::iconst(1)),
        ] {
            assert_eq!(simplify(&e), e, "kind-unknown {e:?} must not fold");
        }
    }

    #[test]
    fn reassociates_constant_chains() {
        // (i + 2) + 3 → i + 5; (i - 1) + 1 → i — integer i only.
        let env = int_env();
        let i = Expr::var(v(0));
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, i.clone(), Expr::iconst(2)),
            Expr::iconst(3),
        );
        assert_eq!(
            simplify_in(&e, &env),
            Expr::bin(BinOp::Add, i.clone(), Expr::iconst(5))
        );
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Sub, i.clone(), Expr::iconst(1)),
            Expr::iconst(1),
        );
        assert_eq!(simplify_in(&e, &env), i);
        // A float-kinded accumulator must not reassociate: f32
        // addition is not associative.
        let fe = float_env();
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, i.clone(), Expr::iconst(1 << 24)),
            Expr::iconst(-(1 << 24)),
        );
        assert_eq!(simplify_in(&e, &fe), e);
    }

    #[test]
    fn float_identities_are_conservative() {
        let env = float_env();
        let x = Expr::var(v(0));
        // x - (+0.0) is bitwise-exact and folds…
        assert_eq!(
            simplify_in(&Expr::bin(BinOp::Sub, x.clone(), Expr::fconst(0.0)), &env),
            x
        );
        // …but x * 0.0 must NOT fold to 0.0 (NaN/Inf semantics).
        let e = Expr::bin(BinOp::Mul, x.clone(), Expr::fconst(0.0));
        assert_eq!(simplify_in(&e, &env), e);
        // And no float reassociation happens.
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, x, Expr::fconst(2.0)),
            Expr::fconst(3.0),
        );
        assert_eq!(simplify_in(&e, &env), e);
    }

    #[test]
    fn float_zero_identities_preserve_negative_zero() {
        // Regression: `x + 0.0 → x` matched via `*z == 0.0`, which is
        // true for -0.0 too. IEEE-754 says `-0.0 + 0.0 == +0.0`, so
        // the fold rewrote a +0.0 result back to -0.0 — a bitwise
        // divergence the conformance harness flags. Only `x - (+0.0)`
        // is exact.
        let env = float_env();
        let x = Expr::var(v(0));
        // Additive forms stay put…
        let e = Expr::bin(BinOp::Add, x.clone(), Expr::fconst(0.0));
        assert_eq!(simplify_in(&e, &env), e);
        let e = Expr::bin(BinOp::Add, x.clone(), Expr::fconst(-0.0));
        assert_eq!(simplify_in(&e, &env), e);
        // …as does subtraction of -0.0 (`-0.0 - (-0.0) == +0.0`)…
        let e = Expr::bin(BinOp::Sub, x.clone(), Expr::fconst(-0.0));
        assert_eq!(simplify_in(&e, &env), e);
        // …while subtraction of +0.0 folds.
        let e = Expr::bin(BinOp::Sub, x.clone(), Expr::fconst(0.0));
        assert_eq!(simplify_in(&e, &env), x);
    }

    #[test]
    fn integer_folds_wrap_like_the_engines() {
        // Regression: plain `+`/`*`/`<<` here panicked in debug builds
        // on overflow while both execution engines wrap.
        let add = Expr::bin(BinOp::Add, Expr::iconst(i64::MAX), Expr::iconst(1));
        assert_eq!(simplify(&add), Expr::IConst(i64::MIN));
        let mul = Expr::bin(BinOp::Mul, Expr::iconst(i64::MAX), Expr::iconst(2));
        assert_eq!(simplify(&mul), Expr::IConst(-2));
        let sub = Expr::bin(BinOp::Sub, Expr::iconst(i64::MIN), Expr::iconst(1));
        assert_eq!(simplify(&sub), Expr::IConst(i64::MAX));
        // Unary folds wrap too (i64::MIN has no positive counterpart).
        let neg = Expr::un(UnOp::Neg, Expr::iconst(i64::MIN));
        assert_eq!(simplify(&neg), Expr::IConst(i64::MIN));
        let abs = Expr::un(UnOp::Abs, Expr::iconst(i64::MIN));
        assert_eq!(simplify(&abs), Expr::IConst(i64::MIN));
        // Reassociated constants wrap as well.
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::var(v(0)), Expr::iconst(i64::MAX)),
            Expr::iconst(1),
        );
        assert_eq!(
            simplify_in(&e, &int_env()),
            Expr::bin(BinOp::Add, Expr::var(v(0)), Expr::iconst(i64::MIN))
        );
    }

    #[test]
    fn out_of_range_shifts_do_not_fold() {
        // The oracle rejects shifts outside 0..64; folding the masked
        // value would turn that rejection into a silent number.
        for op in [BinOp::Shl, BinOp::Shr] {
            for sh in [64i64, 127, -1] {
                let e = Expr::bin(op, Expr::iconst(1), Expr::iconst(sh));
                assert_eq!(simplify(&e), e, "{op:?} by {sh} must stay unfolded");
            }
            let e = Expr::bin(op, Expr::iconst(8), Expr::iconst(2));
            assert!(matches!(simplify(&e), Expr::IConst(_)));
        }
        // Division overflow stays unfolded for the same reason: the
        // interpreter traps on i64::MIN / -1.
        let e = Expr::bin(BinOp::Div, Expr::iconst(i64::MIN), Expr::iconst(-1));
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn int_to_f32_cast_folds_through_f64_like_the_interpreter() {
        // 2^61 + 2^37 + 1: i64→f32 directly rounds up to 2^61 + 2^38,
        // but the interpreter widens to f64 first (2^61 + 2^37, which
        // then ties to even at f32: 2^61). The fold must match the
        // interpreter, not the one-step cast.
        let v = (1i64 << 61) + (1i64 << 37) + 1;
        let direct = v as f32 as f64;
        let via_f64 = (v as f64) as f32 as f64;
        assert_ne!(direct.to_bits(), via_f64.to_bits());
        let e = Expr::cast(crate::types::Scalar::F32, Expr::iconst(v));
        assert_eq!(simplify(&e), Expr::FConst(via_f64));
    }

    #[test]
    fn selects_with_constant_conditions_collapse() {
        let e = Expr::select(Expr::BConst(true), Expr::iconst(1), Expr::iconst(2));
        assert_eq!(simplify(&e), Expr::IConst(1));
        let e = Expr::select(
            Expr::cmp(crate::expr::CmpOp::Lt, Expr::iconst(5), Expr::iconst(3)),
            Expr::iconst(1),
            Expr::iconst(2),
        );
        // 5 < 3 is not folded (Cmp folding is out of scope), so the
        // select survives — conservative is fine.
        assert!(matches!(simplify(&e), Expr::Select(..)));
    }

    #[test]
    fn double_negation_cancels() {
        let x = Expr::var(v(0));
        let e = Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, x.clone()));
        assert_eq!(simplify_in(&e, &int_env()), x);
        assert_eq!(simplify_in(&e, &float_env()), x);
        // Unknown kind: a boolean inner value would be coerced to
        // float by the inner negation, so the fold must not fire.
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn un_narrowed_floats_block_identity_folds() {
        // An F64 binding is not coerced through f32, so dropping a
        // `* 1.0` would skip the rounding the engines apply.
        let mut f64_env = KindEnv::new();
        f64_env.set_var_scalar(v(0), Scalar::F64);
        let x = Expr::var(v(0));
        let e = Expr::bin(BinOp::Mul, x.clone(), Expr::FConst(1.0));
        assert_eq!(simplify_in(&e, &f64_env), e);
        let e = Expr::bin(BinOp::Sub, x.clone(), Expr::FConst(0.0));
        assert_eq!(simplify_in(&e, &f64_env), e);

        // 0.1 is not f32-representable: 0.1 * 1.0 evaluates to
        // `0.1f32 as f64`, not 0.1, so the literal must not fold...
        let e = Expr::bin(BinOp::Mul, Expr::FConst(0.1), Expr::FConst(1.0));
        assert_eq!(simplify_in(&e, &KindEnv::new()), e);
        // ...while an f32-exact literal does.
        let e = Expr::bin(BinOp::Mul, Expr::FConst(1.5), Expr::FConst(1.0));
        assert_eq!(simplify_in(&e, &KindEnv::new()), Expr::FConst(1.5));

        // Rcp is computed in f64 by the engines, so its result is not
        // narrowed even when its operand is an F32 variable.
        let e = Expr::bin(
            BinOp::Mul,
            Expr::un(UnOp::Rcp, x.clone()),
            Expr::FConst(1.0),
        );
        assert_eq!(simplify_in(&e, &float_env()), e);

        // Float *arithmetic* narrows its result, so identity folds
        // apply one op up regardless of the leaves.
        let sum = Expr::bin(BinOp::Add, x.clone(), Expr::FConst(0.5));
        let e = Expr::bin(BinOp::Sub, sum.clone(), Expr::FConst(0.0));
        assert_eq!(simplify_in(&e, &f64_env), sum);
    }

    #[test]
    fn assign_retracts_stale_kinds() {
        use crate::builder::assign;
        // let x: I32 = 0; x = 1.5; y = x + 0 — after the float
        // assignment, `x + 0` runs the float path where `+ 0` is not
        // an identity, so the fold must not fire.
        let b = Block::new(vec![
            Stmt::Let {
                var: v(0),
                ty: Scalar::I32,
                init: Expr::IConst(0),
            },
            assign(v(0), E::from(1.5)),
            assign(v(1), E::from(Expr::var(v(0))) + 0i64),
        ]);
        let out = simplify_block(&b);
        let Stmt::Assign { value, .. } = &out.0[2] else {
            panic!("expected assign");
        };
        assert_eq!(
            *value,
            Expr::bin(BinOp::Add, Expr::var(v(0)), Expr::IConst(0))
        );

        // Same retraction for a variable mutated inside a loop body:
        // iteration 2 sees the float value, so even the use *before*
        // the assignment must stay conservative.
        let b = Block::new(vec![
            Stmt::Let {
                var: v(0),
                ty: Scalar::I32,
                init: Expr::IConst(0),
            },
            Stmt::For {
                var: v(2),
                lo: Expr::IConst(0),
                hi: Expr::IConst(4),
                step: 1,
                body: Block::new(vec![
                    assign(v(1), E::from(Expr::var(v(0))) + 0i64),
                    assign(v(0), E::from(1.5)),
                ]),
            },
        ]);
        let out = simplify_block(&b);
        let Stmt::For { body, .. } = &out.0[1] else {
            panic!("expected for");
        };
        let Stmt::Assign { value, .. } = &body.0[0] else {
            panic!("expected assign");
        };
        assert_eq!(
            *value,
            Expr::bin(BinOp::Add, Expr::var(v(0)), Expr::IConst(0))
        );
    }

    #[test]
    fn simplify_kernel_touches_bounds_and_body() {
        use crate::builder::{st, ProgramBuilder};
        use crate::kernel::ParallelLoop;
        use crate::types::{Intent, Scalar};
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut k = crate::kernel::Kernel::simple(
            "k",
            vec![ParallelLoop::new(
                i,
                (E::from(0i64) + 0i64).expr(),
                (E::from(n) * 1i64).expr(),
            )],
            Block::new(vec![st(a, E::from(i) + 0i64, E::from(1.0) * 2.0)]),
        );
        let p = b.finish(vec![]);
        simplify_kernel_in(&mut k, &KindEnv::for_program(&p));
        assert_eq!(k.loops[0].lo, Expr::IConst(0));
        assert_eq!(k.loops[0].hi, Expr::param(n));
        if let Stmt::Store { index, .. } = &k.simple_body().unwrap().0[0] {
            assert_eq!(*index, Expr::var(i));
        } else {
            panic!("expected store");
        }
    }
}
