//! Expression simplification: constant folding and algebraic
//! identities.
//!
//! The loop transformations (unroll, strip-mine, tiling) synthesize
//! expressions like `i + 0`, `(n - 0 + 0) / 1 * 1` or `0 * t + j`;
//! real source-to-source compilers fold these before code generation,
//! and so do we — otherwise the static PTX counts would charge the
//! transforms for arithmetic no hardware ever executes.
//!
//! The pass is semantics-preserving over the interpreter's evaluation
//! rules: integer folding uses the same wrapping-free i64 arithmetic,
//! and floating-point expressions are *not* reassociated (only exact
//! identities like `x + 0.0` and `x * 1.0` apply).

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::{Kernel, KernelBody};
use crate::stmt::{Block, Stmt};

/// Simplify an expression tree bottom-up.
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Un(op, a) => {
            let a = simplify(a);
            match (op, &a) {
                (UnOp::Neg, Expr::IConst(v)) => Expr::IConst(-v),
                (UnOp::Neg, Expr::FConst(v)) => Expr::FConst(-v),
                (UnOp::Abs, Expr::IConst(v)) => Expr::IConst(v.abs()),
                (UnOp::Abs, Expr::FConst(v)) => Expr::FConst(v.abs()),
                (UnOp::Not, Expr::BConst(v)) => Expr::BConst(!v),
                // --x = x
                (UnOp::Neg, Expr::Un(UnOp::Neg, inner)) => (**inner).clone(),
                _ => Expr::un(*op, a),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            simplify_bin(*op, a, b)
        }
        Expr::Cmp(op, a, b) => Expr::cmp(*op, simplify(a), simplify(b)),
        Expr::Fma(a, b, c) => Expr::fma(simplify(a), simplify(b), simplify(c)),
        Expr::Select(c, a, b) => {
            let c = simplify(c);
            match c {
                Expr::BConst(true) => simplify(a),
                Expr::BConst(false) => simplify(b),
                c => Expr::select(c, simplify(a), simplify(b)),
            }
        }
        Expr::Cast(t, a) => {
            let a = simplify(a);
            match (&a, t) {
                (Expr::IConst(v), crate::types::Scalar::F32) => Expr::FConst(*v as f32 as f64),
                (Expr::IConst(v), crate::types::Scalar::I32) => Expr::IConst(*v as i32 as i64),
                _ => Expr::cast(*t, a),
            }
        }
        Expr::Load {
            space,
            array,
            index,
        } => Expr::Load {
            space: *space,
            array: *array,
            index: Box::new(simplify(index)),
        },
        leaf => leaf.clone(),
    }
}

fn simplify_bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    use BinOp::*;
    // Integer constant folding (i64, matching the interpreter).
    if let (Expr::IConst(x), Expr::IConst(y)) = (&a, &b) {
        let v = match op {
            Add => Some(x + y),
            Sub => Some(x - y),
            Mul => Some(x * y),
            Div if *y != 0 => Some(x / y),
            Rem if *y != 0 => Some(x % y),
            Min => Some(*x.min(y)),
            Max => Some(*x.max(y)),
            Shl => Some(x << y),
            Shr => Some(x >> y),
            _ => None,
        };
        if let Some(v) = v {
            return Expr::IConst(v);
        }
    }
    match (op, &a, &b) {
        // x + 0, 0 + x, x - 0
        (Add, x, Expr::IConst(0)) | (Sub, x, Expr::IConst(0)) => x.clone(),
        (Add, Expr::IConst(0), x) => x.clone(),
        (Add, x, Expr::FConst(z)) | (Sub, x, Expr::FConst(z)) if *z == 0.0 => x.clone(),
        // x * 1, 1 * x, x / 1
        (Mul, x, Expr::IConst(1)) | (Div, x, Expr::IConst(1)) => x.clone(),
        (Mul, Expr::IConst(1), x) => x.clone(),
        (Mul, x, Expr::FConst(o)) | (Div, x, Expr::FConst(o)) if *o == 1.0 => x.clone(),
        (Mul, Expr::FConst(o), x) if *o == 1.0 => x.clone(),
        // x * 0, 0 * x (integers only: 0.0 * NaN must stay NaN)
        (Mul, _, Expr::IConst(0)) | (Mul, Expr::IConst(0), _) => Expr::IConst(0),
        // (a + c1) + c2 → a + (c1+c2)
        (Add, Expr::Bin(BinOp::Add, x, c1), Expr::IConst(c2)) => {
            if let Expr::IConst(c1) = **c1 {
                return simplify_bin(Add, (**x).clone(), Expr::IConst(c1 + c2));
            }
            Expr::bin(op, a.clone(), b.clone())
        }
        // (a - c1) + c2 / (a + c1) - c2
        (Add, Expr::Bin(BinOp::Sub, x, c1), Expr::IConst(c2)) => {
            if let Expr::IConst(c1) = **c1 {
                return simplify_bin(Sub, (**x).clone(), Expr::IConst(c1 - c2));
            }
            Expr::bin(op, a.clone(), b.clone())
        }
        (Sub, Expr::Bin(BinOp::Add, x, c1), Expr::IConst(c2)) => {
            if let Expr::IConst(c1) = **c1 {
                return simplify_bin(Add, (**x).clone(), Expr::IConst(c1 - c2));
            }
            Expr::bin(op, a.clone(), b.clone())
        }
        _ => Expr::bin(op, a, b),
    }
}

/// Simplify every expression in a block.
pub fn simplify_block(b: &Block) -> Block {
    Block(b.0.iter().map(simplify_stmt).collect())
}

fn simplify_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Let { var, ty, init } => Stmt::Let {
            var: *var,
            ty: *ty,
            init: simplify(init),
        },
        Stmt::Assign { var, value } => Stmt::Assign {
            var: *var,
            value: simplify(value),
        },
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => Stmt::Store {
            space: *space,
            array: *array,
            index: simplify(index),
            value: simplify(value),
        },
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => Stmt::If {
            cond: simplify(cond),
            then_blk: simplify_block(then_blk),
            else_blk: simplify_block(else_blk),
        },
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => Stmt::For {
            var: *var,
            lo: simplify(lo),
            hi: simplify(hi),
            step: *step,
            body: simplify_block(body),
        },
        Stmt::Barrier => Stmt::Barrier,
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => Stmt::Atomic {
            op: *op,
            array: *array,
            index: simplify(index),
            value: simplify(value),
        },
    }
}

/// Simplify every expression of a kernel (bounds and body).
pub fn simplify_kernel(k: &mut Kernel) {
    for lp in &mut k.loops {
        lp.lo = simplify(&lp.lo);
        lp.hi = simplify(&lp.hi);
    }
    match &mut k.body {
        KernelBody::Simple(b) => *b = simplify_block(b),
        KernelBody::Grouped(g) => {
            for phase in &mut g.phases {
                *phase = simplify_block(phase);
            }
        }
    }
    if let Some(rr) = &mut k.region_reduction {
        rr.value = simplify(&rr.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::E;
    use crate::types::VarId;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = (E::from(3i64) * 4i64 + 5i64).expr();
        assert_eq!(simplify(&e), Expr::IConst(17));
    }

    #[test]
    fn removes_additive_and_multiplicative_identities() {
        let x = Expr::var(v(0));
        assert_eq!(
            simplify(&Expr::bin(BinOp::Add, x.clone(), Expr::iconst(0))),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Mul, Expr::iconst(1), x.clone())),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Div, x.clone(), Expr::iconst(1))),
            x
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Mul, x.clone(), Expr::iconst(0))),
            Expr::IConst(0)
        );
    }

    #[test]
    fn reassociates_constant_chains() {
        // (i + 2) + 3 → i + 5; (i - 1) + 1 → i
        let i = Expr::var(v(0));
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, i.clone(), Expr::iconst(2)),
            Expr::iconst(3),
        );
        assert_eq!(
            simplify(&e),
            Expr::bin(BinOp::Add, i.clone(), Expr::iconst(5))
        );
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Sub, i.clone(), Expr::iconst(1)),
            Expr::iconst(1),
        );
        assert_eq!(simplify(&e), i);
    }

    #[test]
    fn float_identities_are_conservative() {
        let x = Expr::var(v(0));
        // x + 0.0 folds…
        assert_eq!(
            simplify(&Expr::bin(BinOp::Add, x.clone(), Expr::fconst(0.0))),
            x
        );
        // …but x * 0.0 must NOT fold to 0.0 (NaN/Inf semantics).
        let e = Expr::bin(BinOp::Mul, x.clone(), Expr::fconst(0.0));
        assert_eq!(simplify(&e), e);
        // And no float reassociation happens.
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, x, Expr::fconst(2.0)),
            Expr::fconst(3.0),
        );
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn selects_with_constant_conditions_collapse() {
        let e = Expr::select(Expr::BConst(true), Expr::iconst(1), Expr::iconst(2));
        assert_eq!(simplify(&e), Expr::IConst(1));
        let e = Expr::select(
            Expr::cmp(crate::expr::CmpOp::Lt, Expr::iconst(5), Expr::iconst(3)),
            Expr::iconst(1),
            Expr::iconst(2),
        );
        // 5 < 3 is not folded (Cmp folding is out of scope), so the
        // select survives — conservative is fine.
        assert!(matches!(simplify(&e), Expr::Select(..)));
    }

    #[test]
    fn double_negation_cancels() {
        let x = Expr::var(v(0));
        let e = Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, x.clone()));
        assert_eq!(simplify(&e), x);
    }

    #[test]
    fn simplify_kernel_touches_bounds_and_body() {
        use crate::builder::{st, ProgramBuilder};
        use crate::kernel::ParallelLoop;
        use crate::types::{Intent, Scalar};
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut k = crate::kernel::Kernel::simple(
            "k",
            vec![ParallelLoop::new(
                i,
                (E::from(0i64) + 0i64).expr(),
                (E::from(n) * 1i64).expr(),
            )],
            Block::new(vec![st(a, E::from(i) + 0i64, E::from(1.0) * 2.0)]),
        );
        simplify_kernel(&mut k);
        assert_eq!(k.loops[0].lo, Expr::IConst(0));
        assert_eq!(k.loops[0].hi, Expr::param(n));
        if let Stmt::Store { index, .. } = &k.simple_body().unwrap().0[0] {
            assert_eq!(*index, Expr::var(i));
        } else {
            panic!("expected store");
        }
    }
}
