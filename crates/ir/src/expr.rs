//! The expression language of kernel bodies and loop bounds.

use crate::types::{ArrayId, MemSpace, ParamId, Scalar, VarId};
use serde::{Deserialize, Serialize};

/// Unary operators. `Rcp`, `Abs`, `Neg` appear by name in the paper's
/// Table V PTX category listing; `Sqrt` is required by Hydro's
/// equation of state and Riemann solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Abs,
    /// Reciprocal `1/x` (PTX `rcp`).
    Rcp,
    Sqrt,
    /// Logical not (PTX `not`).
    Not,
    /// Exponential — used by Back Propagation's sigmoid `squash()`.
    Exp,
}

/// Binary operators (PTX `add/sub/mul/div/max/min`, logical
/// `and/or`, shifts `shl/shr`, integer `rem` for index arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Shl,
    Shr,
}

/// Comparison operators (lowered to PTX `setp.<cmp>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Built-in index variables available inside work-group ("staged")
/// kernel bodies — the OpenCL `get_local_id` / `get_group_id` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpecialVar {
    /// `get_local_id(dim)`
    LocalId(u8),
    /// `get_group_id(dim)`
    GroupId(u8),
    /// `get_local_size(dim)`
    LocalSize(u8),
    /// `get_num_groups(dim)`
    NumGroups(u8),
}

/// An expression tree.
///
/// Expressions are deliberately side-effect free; all stores go
/// through [`crate::stmt::Stmt`]. Index expressions into arrays are
/// plain integer-valued `Expr`s (arrays are 1-D; multi-dimensional
/// accesses are written linearized, `a[i*n + j]`, exactly as the
/// Rodinia OpenACC sources do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Floating constant (stored as f64; narrowed at evaluation).
    FConst(f64),
    /// Integer constant.
    IConst(i64),
    /// Boolean constant.
    BConst(bool),
    /// Scalar program parameter.
    Param(ParamId),
    /// Loop induction variable or kernel-local scalar.
    Var(VarId),
    /// Work-group built-in (staged bodies only).
    Special(SpecialVar),
    Load {
        space: MemSpace,
        array: ArrayId,
        index: Box<Expr>,
    },
    Un(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Fused multiply-add `a*b + c` (PTX `fma`/`mad`).
    Fma(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `cond ? a : b` (PTX `selp`).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Explicit conversion (PTX `cvt`).
    Cast(Scalar, Box<Expr>),
}

impl Expr {
    /// Convenience constructors used heavily by the benchmark builders.
    pub fn param(p: ParamId) -> Self {
        Expr::Param(p)
    }
    pub fn var(v: VarId) -> Self {
        Expr::Var(v)
    }
    pub fn iconst(v: i64) -> Self {
        Expr::IConst(v)
    }
    pub fn fconst(v: f64) -> Self {
        Expr::FConst(v)
    }

    pub fn load(array: ArrayId, index: Expr) -> Self {
        Expr::Load {
            space: MemSpace::Global,
            array,
            index: Box::new(index),
        }
    }

    pub fn load_local(array: ArrayId, index: Expr) -> Self {
        Expr::Load {
            space: MemSpace::Local,
            array,
            index: Box::new(index),
        }
    }

    pub fn un(op: UnOp, a: Expr) -> Self {
        Expr::Un(op, Box::new(a))
    }
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Self {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Self {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }
    pub fn fma(a: Expr, b: Expr, c: Expr) -> Self {
        Expr::Fma(Box::new(a), Box::new(b), Box::new(c))
    }
    pub fn select(c: Expr, a: Expr, b: Expr) -> Self {
        Expr::Select(Box::new(c), Box::new(a), Box::new(b))
    }
    pub fn cast(to: Scalar, a: Expr) -> Self {
        Expr::Cast(to, Box::new(a))
    }

    /// Number of nodes in the expression tree (used by cost sanity
    /// checks and property tests).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Pre-order walk over all sub-expressions, including `self`.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::FConst(_)
            | Expr::IConst(_)
            | Expr::BConst(_)
            | Expr::Param(_)
            | Expr::Var(_)
            | Expr::Special(_) => {}
            Expr::Load { index, .. } => index.walk(f),
            Expr::Un(_, a) | Expr::Cast(_, a) => a.walk(f),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Fma(a, b, c) | Expr::Select(a, b, c) => {
                a.walk(f);
                b.walk(f);
                c.walk(f);
            }
        }
    }

    /// Substitute every occurrence of variable `v` with `with`.
    /// Used by the unroll and tile loop transformations.
    pub fn subst_var(&self, v: VarId, with: &Expr) -> Expr {
        match self {
            Expr::Var(x) if *x == v => with.clone(),
            Expr::FConst(_)
            | Expr::IConst(_)
            | Expr::BConst(_)
            | Expr::Param(_)
            | Expr::Var(_)
            | Expr::Special(_) => self.clone(),
            Expr::Load {
                space,
                array,
                index,
            } => Expr::Load {
                space: *space,
                array: *array,
                index: Box::new(index.subst_var(v, with)),
            },
            Expr::Un(op, a) => Expr::Un(*op, Box::new(a.subst_var(v, with))),
            Expr::Cast(t, a) => Expr::Cast(*t, Box::new(a.subst_var(v, with))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.subst_var(v, with)),
                Box::new(b.subst_var(v, with)),
            ),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.subst_var(v, with)),
                Box::new(b.subst_var(v, with)),
            ),
            Expr::Fma(a, b, c) => Expr::Fma(
                Box::new(a.subst_var(v, with)),
                Box::new(b.subst_var(v, with)),
                Box::new(c.subst_var(v, with)),
            ),
            Expr::Select(a, b, c) => Expr::Select(
                Box::new(a.subst_var(v, with)),
                Box::new(b.subst_var(v, with)),
                Box::new(c.subst_var(v, with)),
            ),
        }
    }

    /// True if the expression mentions variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Var(x) if *x == v) {
                found = true;
            }
        });
        found
    }

    /// True if the expression reads any array in `Global` memory.
    pub fn reads_global(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                Expr::Load {
                    space: MemSpace::Global,
                    ..
                }
            ) {
                found = true;
            }
        });
        found
    }

    /// Collect `(array, index-expr)` pairs for every load, into `out`.
    pub fn collect_loads<'a>(&'a self, out: &mut Vec<(MemSpace, ArrayId, &'a Expr)>) {
        match self {
            Expr::Load {
                space,
                array,
                index,
            } => {
                out.push((*space, *array, index));
                index.collect_loads(out);
            }
            Expr::FConst(_)
            | Expr::IConst(_)
            | Expr::BConst(_)
            | Expr::Param(_)
            | Expr::Var(_)
            | Expr::Special(_) => {}
            Expr::Un(_, a) | Expr::Cast(_, a) => a.collect_loads(out),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Fma(a, b, c) | Expr::Select(a, b, c) => {
                a.collect_loads(out);
                b.collect_loads(out);
                c.collect_loads(out);
            }
        }
    }
}

// -------------------------------------------------------------------
// Affine analysis — shared by the dependence analysis (Table II) and
// by the compilers' coalescing heuristics.
// -------------------------------------------------------------------

/// A coefficient in an affine form: `k` or `k * param`.
///
/// This is exactly enough to express the linearized 2-D indices of the
/// benchmarks (`i*n + j` has coefficient `1*n` for `i` and `1` for
/// `j`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffCoeff {
    pub k: i64,
    pub param: Option<ParamId>,
}

impl AffCoeff {
    pub fn constant(k: i64) -> Self {
        AffCoeff { k, param: None }
    }
    pub fn is_zero(&self) -> bool {
        self.k == 0
    }
}

/// An affine form `sum_i coeff_i * var_i + sum_j coeff_j * param_j + c`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AffineForm {
    /// Per-variable coefficients (absent ⇒ zero).
    pub vars: std::collections::BTreeMap<VarId, AffCoeff>,
    /// Per-parameter linear terms with integer coefficients.
    pub params: std::collections::BTreeMap<ParamId, i64>,
    /// Constant term.
    pub konst: i64,
}

impl AffineForm {
    fn constant(c: i64) -> Self {
        AffineForm {
            konst: c,
            ..Default::default()
        }
    }

    fn add(mut self, other: AffineForm) -> Self {
        for (v, c) in other.vars {
            match self.vars.entry(v) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let cur = *e.get();
                    if cur.param == c.param {
                        e.insert(AffCoeff {
                            k: cur.k + c.k,
                            param: cur.param,
                        });
                    } else {
                        // Mixed n*i + i terms: out of scope, but keep
                        // soundness by refusing (handled by caller).
                        e.insert(AffCoeff {
                            k: i64::MAX,
                            param: None,
                        });
                    }
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(c);
                }
            }
        }
        for (p, c) in other.params {
            *self.params.entry(p).or_insert(0) += c;
        }
        self.konst += other.konst;
        self
    }

    fn negate(mut self) -> Self {
        for c in self.vars.values_mut() {
            c.k = -c.k;
        }
        for c in self.params.values_mut() {
            *c = -*c;
        }
        self.konst = -self.konst;
        self
    }

    /// Coefficient of variable `v` (zero if absent).
    pub fn coeff(&self, v: VarId) -> AffCoeff {
        self.vars.get(&v).copied().unwrap_or(AffCoeff::constant(0))
    }

    /// The two forms are identical except possibly in their constant
    /// term; returns `Some(delta)` where `delta = self.konst - other.konst`.
    pub fn const_delta(&self, other: &AffineForm) -> Option<i64> {
        if self.vars == other.vars && self.params == other.params {
            Some(self.konst - other.konst)
        } else {
            None
        }
    }
}

/// Try to view an integer expression as an affine form over loop
/// variables and parameters. Returns `None` for anything non-affine
/// (indirect loads, products of two variables, selects, …), which the
/// dependence analysis treats conservatively.
pub fn to_affine(e: &Expr) -> Option<AffineForm> {
    match e {
        Expr::IConst(c) => Some(AffineForm::constant(*c)),
        Expr::Var(v) => {
            let mut f = AffineForm::default();
            f.vars.insert(*v, AffCoeff::constant(1));
            Some(f)
        }
        Expr::Param(p) => {
            let mut f = AffineForm::default();
            f.params.insert(*p, 1);
            Some(f)
        }
        Expr::Cast(_, a) => to_affine(a),
        Expr::Bin(BinOp::Add, a, b) => Some(to_affine(a)?.add(to_affine(b)?)),
        Expr::Bin(BinOp::Sub, a, b) => Some(to_affine(a)?.add(to_affine(b)?.negate())),
        Expr::Bin(BinOp::Mul, a, b) => mul_affine(a, b),
        _ => None,
    }
}

fn mul_affine(a: &Expr, b: &Expr) -> Option<AffineForm> {
    // Supported shapes: var * param, param * var, var * const,
    // const * var, param * const, const * const, const * param.
    let scale_by_const = |f: AffineForm, k: i64| -> AffineForm {
        let mut g = f;
        for c in g.vars.values_mut() {
            c.k *= k;
        }
        for c in g.params.values_mut() {
            *c *= k;
        }
        g.konst *= k;
        g
    };
    match (a, b) {
        (Expr::IConst(k), other) | (other, Expr::IConst(k)) => {
            Some(scale_by_const(to_affine(other)?, *k))
        }
        (Expr::Var(v), Expr::Param(p)) | (Expr::Param(p), Expr::Var(v)) => {
            let mut f = AffineForm::default();
            f.vars.insert(
                *v,
                AffCoeff {
                    k: 1,
                    param: Some(*p),
                },
            );
            Some(f)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }
    fn p(i: u32) -> ParamId {
        ParamId(i)
    }

    #[test]
    fn affine_linearized_2d_index() {
        // i*n + j
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var(v(0)), Expr::param(p(0))),
            Expr::var(v(1)),
        );
        let f = to_affine(&e).expect("affine");
        assert_eq!(
            f.coeff(v(0)),
            AffCoeff {
                k: 1,
                param: Some(p(0))
            }
        );
        assert_eq!(f.coeff(v(1)), AffCoeff::constant(1));
        assert_eq!(f.konst, 0);
    }

    #[test]
    fn affine_const_delta_detects_shift() {
        // A[i] vs A[i-1] — the Table II dependent loop.
        let a = to_affine(&Expr::var(v(0))).unwrap();
        let b = to_affine(&Expr::bin(BinOp::Sub, Expr::var(v(0)), Expr::iconst(1))).unwrap();
        assert_eq!(a.const_delta(&b), Some(1));
        assert_eq!(b.const_delta(&a), Some(-1));
    }

    #[test]
    fn affine_rejects_indirection() {
        // A[B[i]] — BFS-style indirect access must be non-affine.
        let e = Expr::load(ArrayId(1), Expr::var(v(0)));
        assert!(to_affine(&e).is_none());
    }

    #[test]
    fn affine_rejects_var_product() {
        let e = Expr::bin(BinOp::Mul, Expr::var(v(0)), Expr::var(v(1)));
        assert!(to_affine(&e).is_none());
    }

    #[test]
    fn subst_replaces_in_nested_loads() {
        let e = Expr::load(
            ArrayId(0),
            Expr::bin(BinOp::Add, Expr::var(v(3)), Expr::iconst(2)),
        );
        let s = e.subst_var(v(3), &Expr::iconst(7));
        assert!(!s.uses_var(v(3)));
        assert_eq!(s.node_count(), e.node_count());
    }

    #[test]
    fn collect_loads_finds_nested() {
        let e = Expr::load(ArrayId(0), Expr::load(ArrayId(1), Expr::var(v(0))));
        let mut loads = Vec::new();
        e.collect_loads(&mut loads);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].1, ArrayId(0));
        assert_eq!(loads[1].1, ArrayId(1));
    }

    #[test]
    fn walk_counts_nodes() {
        let e = Expr::fma(Expr::var(v(0)), Expr::fconst(2.0), Expr::iconst(1));
        assert_eq!(e.node_count(), 4);
    }

    #[test]
    fn scaled_affine_mul() {
        // 4*i + 2*n + 3
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::iconst(4), Expr::var(v(0))),
                Expr::bin(BinOp::Mul, Expr::param(p(0)), Expr::iconst(2)),
            ),
            Expr::iconst(3),
        );
        let f = to_affine(&e).unwrap();
        assert_eq!(f.coeff(v(0)), AffCoeff::constant(4));
        assert_eq!(f.params[&p(0)], 2);
        assert_eq!(f.konst, 3);
    }
}
