//! Ergonomic construction of programs and expressions.
//!
//! The benchmark crates build sizeable kernels; the [`E`] expression
//! wrapper gives them infix arithmetic (`a * b + c`), comparison
//! methods and array-access helpers, while [`ProgramBuilder`] manages
//! identifier allocation.

use crate::expr::{BinOp, CmpOp, Expr, UnOp};
use crate::program::{HostStmt, Program};
use crate::stmt::{Block, Stmt};
use crate::types::{ArrayDecl, ArrayId, Intent, MemSpace, ParamDecl, ParamId, Scalar, VarId};
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// Expression wrapper with operator overloading.
#[derive(Debug, Clone, PartialEq)]
pub struct E(pub Expr);

impl E {
    pub fn expr(self) -> Expr {
        self.0
    }

    pub fn lt(self, other: impl Into<E>) -> E {
        E(Expr::cmp(CmpOp::Lt, self.0, other.into().0))
    }
    pub fn le(self, other: impl Into<E>) -> E {
        E(Expr::cmp(CmpOp::Le, self.0, other.into().0))
    }
    pub fn gt(self, other: impl Into<E>) -> E {
        E(Expr::cmp(CmpOp::Gt, self.0, other.into().0))
    }
    pub fn ge(self, other: impl Into<E>) -> E {
        E(Expr::cmp(CmpOp::Ge, self.0, other.into().0))
    }
    pub fn eq_(self, other: impl Into<E>) -> E {
        E(Expr::cmp(CmpOp::Eq, self.0, other.into().0))
    }
    pub fn ne_(self, other: impl Into<E>) -> E {
        E(Expr::cmp(CmpOp::Ne, self.0, other.into().0))
    }
    pub fn min(self, other: impl Into<E>) -> E {
        E(Expr::bin(BinOp::Min, self.0, other.into().0))
    }
    pub fn max(self, other: impl Into<E>) -> E {
        E(Expr::bin(BinOp::Max, self.0, other.into().0))
    }
    pub fn and(self, other: impl Into<E>) -> E {
        E(Expr::bin(BinOp::And, self.0, other.into().0))
    }
    pub fn or(self, other: impl Into<E>) -> E {
        E(Expr::bin(BinOp::Or, self.0, other.into().0))
    }
    pub fn sqrt(self) -> E {
        E(Expr::un(UnOp::Sqrt, self.0))
    }
    pub fn abs(self) -> E {
        E(Expr::un(UnOp::Abs, self.0))
    }
    pub fn rcp(self) -> E {
        E(Expr::un(UnOp::Rcp, self.0))
    }
    pub fn exp(self) -> E {
        E(Expr::un(UnOp::Exp, self.0))
    }
    /// Logical negation (also available as the `!` operator).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> E {
        E(Expr::un(UnOp::Not, self.0))
    }
    /// `self ? t : f`.
    pub fn select(self, t: impl Into<E>, f: impl Into<E>) -> E {
        E(Expr::select(self.0, t.into().0, f.into().0))
    }
    pub fn cast(self, to: Scalar) -> E {
        E(Expr::cast(to, self.0))
    }
    /// Fused multiply-add `self * b + c`.
    pub fn fma(self, b: impl Into<E>, c: impl Into<E>) -> E {
        E(Expr::fma(self.0, b.into().0, c.into().0))
    }
}

impl From<Expr> for E {
    fn from(e: Expr) -> Self {
        E(e)
    }
}
impl From<i64> for E {
    fn from(v: i64) -> Self {
        E(Expr::iconst(v))
    }
}
impl From<i32> for E {
    fn from(v: i32) -> Self {
        E(Expr::iconst(v as i64))
    }
}
impl From<f64> for E {
    fn from(v: f64) -> Self {
        E(Expr::fconst(v))
    }
}
impl From<VarId> for E {
    fn from(v: VarId) -> Self {
        E(Expr::var(v))
    }
}
impl From<ParamId> for E {
    fn from(p: ParamId) -> Self {
        E(Expr::param(p))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<T: Into<E>> $trait<T> for E {
            type Output = E;
            fn $method(self, rhs: T) -> E {
                E(Expr::bin($op, self.0, rhs.into().0))
            }
        }
    };
}
impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);

impl Neg for E {
    type Output = E;
    fn neg(self) -> E {
        E(Expr::un(UnOp::Neg, self.0))
    }
}

impl std::ops::Not for E {
    type Output = E;
    fn not(self) -> E {
        E(Expr::un(UnOp::Not, self.0))
    }
}

/// `array[index]` load from global memory.
pub fn ld(array: ArrayId, index: impl Into<E>) -> E {
    E(Expr::load(array, index.into().0))
}

/// `array[index]` load from work-group local memory.
pub fn ld_local(array: ArrayId, index: impl Into<E>) -> E {
    E(Expr::load_local(array, index.into().0))
}

/// `array[index] = value` store to global memory.
pub fn st(array: ArrayId, index: impl Into<E>, value: impl Into<E>) -> Stmt {
    Stmt::Store {
        space: MemSpace::Global,
        array,
        index: index.into().0,
        value: value.into().0,
    }
}

/// `array[index] = value` store to local memory.
pub fn st_local(array: ArrayId, index: impl Into<E>, value: impl Into<E>) -> Stmt {
    Stmt::Store {
        space: MemSpace::Local,
        array,
        index: index.into().0,
        value: value.into().0,
    }
}

/// Declare-and-initialize a local scalar.
pub fn let_(var: VarId, ty: Scalar, init: impl Into<E>) -> Stmt {
    Stmt::Let {
        var,
        ty,
        init: init.into().0,
    }
}

/// Re-assign a local scalar.
pub fn assign(var: VarId, value: impl Into<E>) -> Stmt {
    Stmt::Assign {
        var,
        value: value.into().0,
    }
}

/// One-armed conditional.
pub fn if_(cond: impl Into<E>, then_blk: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond: cond.into().0,
        then_blk: Block::new(then_blk),
        else_blk: Block::default(),
    }
}

/// Two-armed conditional.
pub fn if_else(cond: impl Into<E>, then_blk: Vec<Stmt>, else_blk: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond: cond.into().0,
        then_blk: Block::new(then_blk),
        else_blk: Block::new(else_blk),
    }
}

/// Sequential inner loop with unit step.
pub fn for_(var: VarId, lo: impl Into<E>, hi: impl Into<E>, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var,
        lo: lo.into().0,
        hi: hi.into().0,
        step: 1,
        body: Block::new(body),
    }
}

/// Builder for [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    params: Vec<ParamDecl>,
    arrays: Vec<ArrayDecl>,
    var_names: Vec<String>,
    tags: Vec<String>,
}

impl ProgramBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a scalar program parameter.
    pub fn param(&mut self, name: &str, ty: Scalar) -> ParamId {
        assert!(
            !self.params.iter().any(|p| p.name == name),
            "duplicate parameter `{name}`"
        );
        self.params.push(ParamDecl {
            name: name.into(),
            ty,
        });
        ParamId(self.params.len() as u32 - 1)
    }

    /// Declare an integer parameter (the common case).
    pub fn iparam(&mut self, name: &str) -> ParamId {
        self.param(name, Scalar::I32)
    }

    /// Declare a device array with the given element type, length
    /// expression (over parameters) and transfer intent.
    pub fn array(
        &mut self,
        name: &str,
        elem: Scalar,
        len: impl Into<E>,
        intent: Intent,
    ) -> ArrayId {
        assert!(
            !self.arrays.iter().any(|a| a.name == name),
            "duplicate array `{name}`"
        );
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem,
            len: len.into().0,
            intent,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Allocate a fresh variable id with a display name.
    pub fn var(&mut self, name: &str) -> VarId {
        self.var_names.push(name.into());
        VarId(self.var_names.len() as u32 - 1)
    }

    /// Finish the program with the given host body.
    pub fn finish(self, body: Vec<HostStmt>) -> Program {
        Program {
            name: self.name,
            params: self.params,
            arrays: self.arrays,
            body,
            var_names: self.var_names,
            tags: self.tags,
        }
    }

    /// Attach a free-form source marker (see [`Program::tags`]).
    pub fn tag(&mut self, t: &str) {
        self.tags.push(t.into());
    }
}

/// Back-compat alias used in early revisions of the crate docs.
pub type ExprCtx = E;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infix_arithmetic_builds_expected_tree() {
        let i = VarId(0);
        let n = ParamId(0);
        let e = (E::from(i) * E::from(n) + 3i64).expr();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var(i), Expr::param(n)),
                Expr::iconst(3)
            )
        );
    }

    #[test]
    fn comparison_and_select_chain() {
        let x = VarId(1);
        let e = E::from(x).lt(10i64).select(1.0, 0.0).expr();
        assert!(matches!(e, Expr::Select(..)));
    }

    #[test]
    fn builder_allocates_sequential_ids() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let v0 = b.var("i");
        let v1 = b.var("j");
        assert_eq!(n, ParamId(0));
        assert_eq!(a, ArrayId(0));
        assert_eq!(v0, VarId(0));
        assert_eq!(v1, VarId(1));
        let p = b.finish(vec![]);
        assert_eq!(p.var_name(v1), "j");
        assert_eq!(p.var_name(VarId(99)), "v99");
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_param_panics() {
        let mut b = ProgramBuilder::new("p");
        b.iparam("n");
        b.iparam("n");
    }

    #[test]
    fn statement_helpers_produce_expected_shapes() {
        let a = ArrayId(0);
        let i = VarId(0);
        let s = st(a, E::from(i) + 1i64, 2.0);
        assert!(matches!(
            s,
            Stmt::Store {
                space: MemSpace::Global,
                ..
            }
        ));
        let f = for_(i, 0i64, 8i64, vec![st(a, i, 0.0)]);
        if let Stmt::For { step, body, .. } = f {
            assert_eq!(step, 1);
            assert_eq!(body.0.len(), 1);
        } else {
            panic!("expected For");
        }
    }

    #[test]
    fn neg_and_unary_helpers() {
        let x = VarId(0);
        assert!(matches!((-E::from(x)).expr(), Expr::Un(UnOp::Neg, _)));
        assert!(matches!(E::from(x).sqrt().expr(), Expr::Un(UnOp::Sqrt, _)));
        assert!(matches!(E::from(2.0).fma(3.0, 4.0).expr(), Expr::Fma(..)));
    }
}
