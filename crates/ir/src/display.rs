//! Pretty-printing of the IR as pseudo-C with `#pragma acc` lines.
//!
//! The printed form is what the `ptx_inspector` example and the
//! study reports show next to PTX listings, mirroring the code
//! listings in the paper (Figures 5, 8 and 13).

use crate::expr::{BinOp, CmpOp, Expr, SpecialVar, UnOp};
use crate::kernel::{Kernel, KernelBody, LoopClauses};
use crate::program::{Dir, HostStmt, Program};
use crate::stmt::{Block, Stmt};
use crate::types::MemSpace;
use std::fmt::Write;

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program {}", p.name);
    let params: Vec<String> = p
        .params
        .iter()
        .map(|d| format!("{} {}", d.ty, d.name))
        .collect();
    let _ = writeln!(out, "void {}({}) {{", p.name, params.join(", "));
    for a in &p.arrays {
        let _ = writeln!(
            out,
            "  {} {}[{}];  // intent: {:?}",
            a.elem,
            a.name,
            expr_to_string(p, &a.len),
            a.intent
        );
    }
    for s in &p.body {
        host_stmt(p, s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn host_stmt(p: &Program, s: &HostStmt, depth: usize, out: &mut String) {
    match s {
        HostStmt::DataRegion { arrays, body } => {
            indent(depth, out);
            let names: Vec<&str> = arrays.iter().map(|a| p.array(*a).name.as_str()).collect();
            let _ = writeln!(out, "#pragma acc data copy({})", names.join(", "));
            indent(depth, out);
            out.push_str("{\n");
            for s in body {
                host_stmt(p, s, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        HostStmt::Launch(k) => kernel_to_string_at(p, k, depth, out),
        HostStmt::HostLoop { var, lo, hi, body } => {
            indent(depth, out);
            let v = p.var_name(*var);
            let _ = writeln!(
                out,
                "for ({v} = {}; {v} < {}; {v}++) {{",
                expr_to_string(p, lo),
                expr_to_string(p, hi)
            );
            for s in body {
                host_stmt(p, s, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        HostStmt::WhileFlag {
            flag,
            max_iters,
            body,
        } => {
            indent(depth, out);
            let _ = writeln!(out, "do {{  // at most {max_iters} iterations");
            for s in body {
                host_stmt(p, s, depth + 1, out);
            }
            indent(depth, out);
            let _ = writeln!(out, "}} while ({}[0]);", p.array(*flag).name);
        }
        HostStmt::HostAssign { var, value, .. } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "{} = {};  // host",
                p.var_name(*var),
                expr_to_string(p, value)
            );
        }
        HostStmt::HostStore {
            array,
            index,
            value,
        } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "{}[{}] = {};  // host",
                p.array(*array).name,
                expr_to_string(p, index),
                expr_to_string(p, value)
            );
        }
        HostStmt::HostCompute { label, instr } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "/* host work: {label}, ~{} instructions */",
                expr_to_string(p, instr)
            );
        }
        HostStmt::EnterData { arrays } => {
            indent(depth, out);
            let names: Vec<&str> = arrays.iter().map(|a| p.array(*a).name.as_str()).collect();
            let _ = writeln!(out, "#pragma acc enter data copyin({})", names.join(", "));
        }
        HostStmt::ExitData { arrays } => {
            indent(depth, out);
            let names: Vec<&str> = arrays.iter().map(|a| p.array(*a).name.as_str()).collect();
            let _ = writeln!(out, "#pragma acc exit data copyout({})", names.join(", "));
        }
        HostStmt::Update { array, dir } => {
            indent(depth, out);
            let d = match dir {
                Dir::ToDevice => "device",
                Dir::ToHost => "host",
            };
            let _ = writeln!(out, "#pragma acc update {d}({})", p.array(*array).name);
        }
    }
}

fn clause_string(c: &LoopClauses) -> String {
    let mut parts = Vec::new();
    if c.independent {
        parts.push("independent".to_string());
    }
    if let Some(g) = c.gang {
        parts.push(format!("gang({g})"));
    }
    if let Some(w) = c.worker {
        parts.push(format!("worker({w})"));
    }
    if let Some(v) = c.vector {
        parts.push(format!("vector({v})"));
    }
    if let Some(t) = c.tile {
        parts.push(format!("tile({t})"));
    }
    for o in &c.device_overrides {
        let mut sub = Vec::new();
        if let Some(g) = o.gang {
            sub.push(format!("gang({g})"));
        }
        if let Some(w) = o.worker {
            sub.push(format!("worker({w})"));
        }
        if let Some(v) = o.vector {
            sub.push(format!("vector({v})"));
        }
        parts.push(format!(
            "device_type({}) {}",
            o.device.spelling(),
            sub.join(" ")
        ));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" {}", parts.join(" "))
    }
}

/// Render one kernel (compute region).
pub fn kernel_to_string(p: &Program, k: &Kernel) -> String {
    let mut out = String::new();
    kernel_to_string_at(p, k, 0, &mut out);
    out
}

fn kernel_to_string_at(p: &Program, k: &Kernel, depth: usize, out: &mut String) {
    indent(depth, out);
    let _ = writeln!(out, "// kernel {}", k.name);
    indent(depth, out);
    out.push_str("#pragma acc parallel\n");
    let mut d = depth;
    for lp in &k.loops {
        indent(d, out);
        let _ = writeln!(out, "#pragma acc loop{}", clause_string(&lp.clauses));
        if let Some(u) = lp.clauses.unroll_jam {
            indent(d, out);
            let _ = writeln!(out, "#pragma hmppcg unroll({u}), jam");
        }
        indent(d, out);
        let v = p.var_name(lp.var);
        let _ = writeln!(
            out,
            "for ({v} = {}; {v} < {}; {v}++) {{",
            expr_to_string(p, &lp.lo),
            expr_to_string(p, &lp.hi)
        );
        d += 1;
    }
    match &k.body {
        KernelBody::Simple(b) => block_to_string(p, b, d, out),
        KernelBody::Grouped(g) => {
            indent(d, out);
            let _ = writeln!(out, "// work-group body, group_size = {}", g.group_size);
            for l in &g.locals {
                indent(d, out);
                let _ = writeln!(out, "__local {} {}[{}];", l.elem, l.name, l.len);
            }
            for (i, phase) in g.phases.iter().enumerate() {
                if i > 0 {
                    indent(d, out);
                    out.push_str("barrier(CLK_LOCAL_MEM_FENCE);\n");
                }
                block_to_string(p, phase, d, out);
            }
        }
    }
    if let Some(rr) = &k.region_reduction {
        indent(d, out);
        let _ = writeln!(
            out,
            "// reduction({:?}) -> {}[0] of {}",
            rr.op,
            p.array(rr.dest).name,
            expr_to_string(p, &rr.value)
        );
    }
    for i in (depth..d).rev() {
        indent(i, out);
        out.push_str("}\n");
    }
}

fn block_to_string(p: &Program, b: &Block, depth: usize, out: &mut String) {
    for s in &b.0 {
        stmt_to_string(p, s, depth, out);
    }
}

fn stmt_to_string(p: &Program, s: &Stmt, depth: usize, out: &mut String) {
    match s {
        Stmt::Let { var, ty, init } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "{ty} {} = {};",
                p.var_name(*var),
                expr_to_string(p, init)
            );
        }
        Stmt::Assign { var, value } => {
            indent(depth, out);
            let _ = writeln!(out, "{} = {};", p.var_name(*var), expr_to_string(p, value));
        }
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => {
            indent(depth, out);
            let prefix = match space {
                MemSpace::Global => "",
                MemSpace::Local => "/*local*/ ",
            };
            let name = local_or_global_name(p, *space, *array);
            let _ = writeln!(
                out,
                "{prefix}{}[{}] = {};",
                name,
                expr_to_string(p, index),
                expr_to_string(p, value)
            );
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            indent(depth, out);
            let _ = writeln!(out, "if ({}) {{", expr_to_string(p, cond));
            block_to_string(p, then_blk, depth + 1, out);
            if !else_blk.is_empty() {
                indent(depth, out);
                out.push_str("} else {\n");
                block_to_string(p, else_blk, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            indent(depth, out);
            let v = p.var_name(*var);
            let inc = if *step == 1 {
                format!("{v}++")
            } else {
                format!("{v} += {step}")
            };
            let _ = writeln!(
                out,
                "for ({v} = {}; {v} < {}; {inc}) {{",
                expr_to_string(p, lo),
                expr_to_string(p, hi)
            );
            block_to_string(p, body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Barrier => {
            indent(depth, out);
            out.push_str("barrier(CLK_LOCAL_MEM_FENCE);\n");
        }
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => {
            indent(depth, out);
            out.push_str("#pragma acc atomic\n");
            indent(depth, out);
            let sym = match op {
                crate::kernel::ReduceOp::Add => "+=",
                crate::kernel::ReduceOp::Max => "= max of",
                crate::kernel::ReduceOp::Min => "= min of",
            };
            let _ = writeln!(
                out,
                "{}[{}] {sym} {};",
                p.array(*array).name,
                expr_to_string(p, index),
                expr_to_string(p, value)
            );
        }
    }
}

fn local_or_global_name(p: &Program, space: MemSpace, array: crate::types::ArrayId) -> String {
    match space {
        MemSpace::Global => p.array(array).name.clone(),
        // Local arrays are numbered within the kernel's own table;
        // the program-level table does not know their names.
        MemSpace::Local => format!("local{}", array.0),
    }
}

/// Render one expression.
pub fn expr_to_string(p: &Program, e: &Expr) -> String {
    match e {
        Expr::FConst(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}f")
            } else {
                format!("{v}f")
            }
        }
        Expr::IConst(v) => v.to_string(),
        Expr::BConst(v) => v.to_string(),
        Expr::Param(id) => p.param(*id).name.clone(),
        Expr::Var(id) => p.var_name(*id),
        Expr::Special(sv) => match sv {
            SpecialVar::LocalId(d) => format!("get_local_id({d})"),
            SpecialVar::GroupId(d) => format!("get_group_id({d})"),
            SpecialVar::LocalSize(d) => format!("get_local_size({d})"),
            SpecialVar::NumGroups(d) => format!("get_num_groups({d})"),
        },
        Expr::Load {
            space,
            array,
            index,
        } => format!(
            "{}[{}]",
            local_or_global_name(p, *space, *array),
            expr_to_string(p, index)
        ),
        Expr::Un(op, a) => {
            let a = expr_to_string(p, a);
            match op {
                UnOp::Neg => format!("(-{a})"),
                UnOp::Abs => format!("fabs({a})"),
                UnOp::Rcp => format!("(1.0f/{a})"),
                UnOp::Sqrt => format!("sqrt({a})"),
                UnOp::Not => format!("(!{a})"),
                UnOp::Exp => format!("exp({a})"),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = expr_to_string(p, a);
            let b = expr_to_string(p, b);
            match op {
                BinOp::Add => format!("({a} + {b})"),
                BinOp::Sub => format!("({a} - {b})"),
                BinOp::Mul => format!("({a} * {b})"),
                BinOp::Div => format!("({a} / {b})"),
                BinOp::Rem => format!("({a} % {b})"),
                BinOp::Min => format!("min({a}, {b})"),
                BinOp::Max => format!("max({a}, {b})"),
                BinOp::And => format!("({a} && {b})"),
                BinOp::Or => format!("({a} || {b})"),
                BinOp::Shl => format!("({a} << {b})"),
                BinOp::Shr => format!("({a} >> {b})"),
            }
        }
        Expr::Cmp(op, a, b) => {
            let a = expr_to_string(p, a);
            let b = expr_to_string(p, b);
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({a} {sym} {b})")
        }
        Expr::Fma(a, b, c) => format!(
            "fmaf({}, {}, {})",
            expr_to_string(p, a),
            expr_to_string(p, b),
            expr_to_string(p, c)
        ),
        Expr::Select(c, a, b) => format!(
            "({} ? {} : {})",
            expr_to_string(p, c),
            expr_to_string(p, a),
            expr_to_string(p, b)
        ),
        Expr::Cast(t, a) => format!("({t})({})", expr_to_string(p, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ld, st, ProgramBuilder, E};
    use crate::kernel::{Kernel, ParallelLoop};
    use crate::types::{Intent, Scalar};

    #[test]
    fn renders_pragmas_and_loops() {
        let mut b = ProgramBuilder::new("saxpy");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        lp.clauses.gang = Some(256);
        lp.clauses.worker = Some(16);
        let k = Kernel::simple(
            "saxpy",
            vec![lp],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let s = program_to_string(&p);
        assert!(s.contains("#pragma acc loop independent gang(256) worker(16)"));
        assert!(s.contains("y[i] = ((2.0f * x[i]) + y[i]);"));
        assert!(s.contains("for (i = 0; i < n; i++)"));
    }

    #[test]
    fn renders_special_vars_and_barrier() {
        let b = ProgramBuilder::new("g");
        let p = b.finish(vec![]);
        let e = Expr::Special(SpecialVar::LocalId(0));
        assert_eq!(expr_to_string(&p, &e), "get_local_id(0)");
    }
}
