//! Structural validation of programs.
//!
//! All benchmark builders run their output through [`validate`] in
//! tests, so malformed IR is caught at construction time rather than
//! deep inside the interpreter or a compiler lowering.

use crate::expr::Expr;
use crate::kernel::{Kernel, KernelBody};
use crate::program::{HostStmt, Program};
use crate::stmt::{Block, Stmt};
use crate::types::{ArrayId, MemSpace, ParamId, VarId};

/// A validation failure with a human-readable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    pub location: String,
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.message)
    }
}

/// Validate a whole program. Returns all problems found.
pub fn validate(p: &Program) -> Result<(), Vec<ValidationError>> {
    let mut ctx = Ctx {
        p,
        errors: Vec::new(),
        defined_vars: Default::default(),
        local_scope: None,
    };
    // Array length expressions may only use parameters.
    for (i, a) in p.arrays.iter().enumerate() {
        ctx.check_param_only(&a.len, &format!("array `{}` length", a.name));
        if p.arrays[..i].iter().any(|b| b.name == a.name) {
            ctx.err("arrays", format!("duplicate array name `{}`", a.name));
        }
    }
    for s in &p.body {
        ctx.host_stmt(s);
    }
    if ctx.errors.is_empty() {
        Ok(())
    } else {
        Err(ctx.errors)
    }
}

struct Ctx<'a> {
    p: &'a Program,
    errors: Vec<ValidationError>,
    defined_vars: std::collections::BTreeSet<VarId>,
    /// `Some(n_locals)` while validating a grouped phase body; local
    /// memory accesses are only legal there, and their array ids index
    /// the kernel's own local table of that size.
    local_scope: Option<usize>,
}

impl<'a> Ctx<'a> {
    fn err(&mut self, loc: &str, msg: String) {
        self.errors.push(ValidationError {
            location: loc.to_string(),
            message: msg,
        });
    }

    fn check_array(&mut self, a: ArrayId, loc: &str) {
        if a.0 as usize >= self.p.arrays.len() {
            self.err(loc, format!("array id {} out of range", a.0));
        }
    }

    fn check_param(&mut self, id: ParamId, loc: &str) {
        if id.0 as usize >= self.p.params.len() {
            self.err(loc, format!("param id {} out of range", id.0));
        }
    }

    fn check_param_only(&mut self, e: &Expr, loc: &str) {
        let mut bad = false;
        e.walk(&mut |e| {
            if matches!(e, Expr::Var(_) | Expr::Load { .. } | Expr::Special(_)) {
                bad = true;
            }
        });
        if bad {
            self.err(loc, "expression must only reference parameters".into());
        }
    }

    fn host_stmt(&mut self, s: &HostStmt) {
        match s {
            HostStmt::DataRegion { arrays, body } => {
                for a in arrays {
                    self.check_array(*a, "data region");
                }
                for s in body {
                    self.host_stmt(s);
                }
            }
            HostStmt::Launch(k) => self.kernel(k),
            HostStmt::HostLoop { var, lo, hi, body } => {
                self.expr(lo, "host loop bound", false);
                self.expr(hi, "host loop bound", false);
                self.defined_vars.insert(*var);
                for s in body {
                    self.host_stmt(s);
                }
            }
            HostStmt::WhileFlag {
                flag,
                max_iters,
                body,
            } => {
                self.check_array(*flag, "while flag");
                if *max_iters == 0 {
                    self.err("while flag", "max_iters must be positive".into());
                }
                for s in body {
                    self.host_stmt(s);
                }
            }
            HostStmt::HostAssign { var, value, .. } => {
                self.expr(value, "host assign", false);
                self.defined_vars.insert(*var);
            }
            HostStmt::HostStore {
                array,
                index,
                value,
            } => {
                self.check_array(*array, "host store");
                self.expr(index, "host store index", false);
                self.expr(value, "host store value", false);
            }
            HostStmt::Update { array, .. } => self.check_array(*array, "update"),
            HostStmt::HostCompute { instr, .. } => self.expr(instr, "host compute", false),
            HostStmt::EnterData { arrays } | HostStmt::ExitData { arrays } => {
                for a in arrays {
                    self.check_array(*a, "enter/exit data");
                }
            }
        }
    }

    fn kernel(&mut self, k: &Kernel) {
        let loc = format!("kernel `{}`", k.name);
        if k.loops.is_empty() {
            self.err(&loc, "kernel must have at least one parallel loop".into());
        }
        let saved: std::collections::BTreeSet<VarId> = self.defined_vars.clone();
        let grouped = matches!(k.body, KernelBody::Grouped(_));
        for lp in &k.loops {
            self.expr(&lp.lo, &loc, grouped);
            self.expr(&lp.hi, &loc, grouped);
            self.defined_vars.insert(lp.var);
            if let Some(t) = lp.clauses.tile {
                if t == 0 {
                    self.err(&loc, "tile(0) is invalid".into());
                }
            }
            if let Some(u) = lp.clauses.unroll_jam {
                if u < 2 {
                    self.err(&loc, "unroll factor must be >= 2".into());
                }
            }
        }
        match &k.body {
            KernelBody::Simple(b) => self.block(b, &loc, false, false),
            KernelBody::Grouped(g) => {
                if g.group_size == 0 {
                    self.err(&loc, "group_size must be positive".into());
                }
                if g.phases.is_empty() {
                    self.err(&loc, "grouped body needs at least one phase".into());
                }
                let n_locals = g.locals.len();
                for phase in &g.phases {
                    self.block_with_locals(phase, &loc, n_locals);
                }
            }
        }
        if let Some(rr) = &k.region_reduction {
            self.check_array(rr.dest, &loc);
            self.expr(&rr.value, &loc, grouped);
        }
        self.defined_vars = saved;
    }

    fn block(&mut self, b: &Block, loc: &str, grouped: bool, in_local_scope: bool) {
        for s in &b.0 {
            match s {
                Stmt::Let { var, init, .. } => {
                    self.expr(init, loc, grouped);
                    self.defined_vars.insert(*var);
                }
                Stmt::Assign { var, value } => {
                    if !self.defined_vars.contains(var) {
                        self.err(
                            loc,
                            format!("assignment to undeclared local `{}`", self.p.var_name(*var)),
                        );
                    }
                    self.expr(value, loc, grouped);
                }
                Stmt::Store {
                    space,
                    array,
                    index,
                    value,
                } => {
                    if *space == MemSpace::Local && !in_local_scope {
                        self.err(loc, "local-memory store outside a grouped body".into());
                    }
                    if *space == MemSpace::Global {
                        self.check_array(*array, loc);
                    }
                    self.expr(index, loc, grouped);
                    self.expr(value, loc, grouped);
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.expr(cond, loc, grouped);
                    // Each branch opens its own scope: a `Let` in one
                    // branch must not legitimize an `Assign` in the
                    // other branch or after the `If`.
                    let saved = self.defined_vars.clone();
                    self.block(then_blk, loc, grouped, in_local_scope);
                    self.defined_vars = saved.clone();
                    self.block(else_blk, loc, grouped, in_local_scope);
                    self.defined_vars = saved;
                }
                Stmt::For {
                    var, lo, hi, body, ..
                } => {
                    self.expr(lo, loc, grouped);
                    self.expr(hi, loc, grouped);
                    // `Let`s inside the body are scoped to the body.
                    // The loop variable itself stays bound afterwards
                    // (the interpreter's variable slots persist, like
                    // a C89 `for` with the induction variable declared
                    // outside).
                    let saved = self.defined_vars.clone();
                    self.defined_vars.insert(*var);
                    self.block(body, loc, grouped, in_local_scope);
                    self.defined_vars = saved;
                    self.defined_vars.insert(*var);
                }
                Stmt::Barrier => {
                    if !grouped {
                        self.err(loc, "barrier outside a grouped body".into());
                    }
                }
                Stmt::Atomic {
                    array,
                    index,
                    value,
                    ..
                } => {
                    self.check_array(*array, loc);
                    self.expr(index, loc, grouped);
                    self.expr(value, loc, grouped);
                }
            }
        }
    }

    fn block_with_locals(&mut self, b: &Block, loc: &str, n_locals: usize) {
        // Local array ids index the kernel's own local table.
        let check_local = |this: &mut Self, a: ArrayId| {
            if a.0 as usize >= n_locals {
                this.err(loc, format!("local array id {} out of range", a.0));
            }
        };
        b.walk(&mut |s| {
            if let Stmt::Store {
                space: MemSpace::Local,
                array,
                ..
            } = s
            {
                check_local(self, *array);
            }
        });
        let prev = self.local_scope.replace(n_locals);
        self.block(b, loc, true, true);
        self.local_scope = prev;
    }

    fn expr(&mut self, e: &Expr, loc: &str, grouped: bool) {
        e.walk(&mut |e| match e {
            Expr::Param(id) => self.check_param(*id, loc),
            Expr::Load {
                space: MemSpace::Global,
                array,
                ..
            } => self.check_array(*array, loc),
            Expr::Load {
                space: MemSpace::Local,
                array,
                ..
            } => match self.local_scope {
                // Mirrors the `Store` checks: local memory only exists
                // inside a grouped phase, and ids index its table.
                None => self.err(loc, "local-memory load outside a grouped body".into()),
                Some(n) if array.0 as usize >= n => {
                    self.err(loc, format!("local array id {} out of range", array.0));
                }
                Some(_) => {}
            },
            Expr::Special(sv) if !grouped => {
                self.err(
                    loc,
                    format!("work-group builtin {sv:?} outside a grouped body"),
                );
            }
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{st, ProgramBuilder, E};
    use crate::kernel::ParallelLoop;
    use crate::types::{Intent, Scalar};

    fn base() -> (ProgramBuilder, ParamId, ArrayId, VarId) {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        (b, n, a, i)
    }

    #[test]
    fn valid_program_passes() {
        let (b, n, a, i) = base();
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, i, 0.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn out_of_range_array_caught() {
        let (b, n, _a, i) = base();
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(ArrayId(9), i, 0.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn barrier_outside_grouped_caught() {
        let (b, n, _a, i) = base();
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![Stmt::Barrier]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("barrier")));
    }

    #[test]
    fn assign_before_let_caught() {
        let (mut b, n, a, i) = base();
        let tmp = b.var("tmp");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![
                crate::builder::assign(tmp, 1.0),
                st(a, i, E::from(tmp)),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared")));
    }

    #[test]
    fn array_len_must_be_param_only() {
        let mut b = ProgramBuilder::new("p");
        let i = b.var("i");
        b.array("a", Scalar::F32, E::from(i), Intent::In);
        let p = b.finish(vec![]);
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("only reference parameters")));
    }

    #[test]
    fn let_in_then_branch_does_not_reach_else_branch() {
        use crate::builder::{assign, if_else, let_};
        let (mut b, n, a, i) = base();
        let tmp = b.var("tmp");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![
                if_else(
                    Expr::BConst(true),
                    vec![let_(tmp, Scalar::F32, 1.0)],
                    vec![assign(tmp, 2.0)],
                ),
                st(a, i, 0.0),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared")));
    }

    #[test]
    fn let_in_if_branch_does_not_leak_past_the_if() {
        use crate::builder::{assign, if_, let_};
        let (mut b, n, a, i) = base();
        let tmp = b.var("tmp");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![
                if_(Expr::BConst(true), vec![let_(tmp, Scalar::F32, 1.0)]),
                assign(tmp, 2.0),
                st(a, i, 0.0),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared")));
    }

    #[test]
    fn let_in_for_body_does_not_leak_past_the_loop() {
        use crate::builder::{assign, for_, let_};
        let (mut b, n, a, i) = base();
        let kv = b.var("kv");
        let tmp = b.var("tmp");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![
                for_(kv, 0i64, 4i64, vec![let_(tmp, Scalar::F32, 1.0)]),
                assign(tmp, 2.0),
                st(a, i, 0.0),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared")));
    }

    #[test]
    fn for_loop_var_stays_bound_after_the_loop() {
        // Matches the interpreter, whose variable slots persist.
        use crate::builder::{assign, for_};
        let (mut b, n, a, i) = base();
        let kv = b.var("kv");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![
                for_(kv, 0i64, 4i64, vec![st(a, i, 0.0)]),
                assign(kv, 0i64),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn local_load_outside_grouped_body_caught() {
        use crate::builder::ld_local;
        let (b, n, a, i) = base();
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, i, ld_local(ArrayId(0), 0i64))]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("local-memory load outside")));
    }

    #[test]
    fn out_of_range_local_load_caught_like_the_store() {
        use crate::builder::{ld_local, st_local};
        use crate::kernel::{GroupedBody, KernelBody};
        use crate::types::LocalArrayDecl;
        let (b, n, _a, i) = base();
        let sdata = LocalArrayDecl {
            name: "sdata".into(),
            elem: Scalar::F32,
            len: 8,
        };
        let mk = |body: Block| {
            let mut k = Kernel::simple(
                "k",
                vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
                Block::default(),
            );
            k.body = KernelBody::Grouped(GroupedBody {
                group_size: 8,
                locals: vec![sdata.clone()],
                phases: vec![body],
            });
            k
        };
        // In-range local load and store: fine.
        let ok = mk(Block::new(vec![st_local(
            ArrayId(0),
            0i64,
            ld_local(ArrayId(0), 1i64),
        )]));
        let p = base().0.finish(vec![HostStmt::Launch(ok)]);
        assert!(validate(&p).is_ok(), "{:?}", validate(&p));
        // Out-of-range local *load* now errors like the store does.
        let bad = mk(Block::new(vec![st_local(
            ArrayId(0),
            0i64,
            ld_local(ArrayId(3), 1i64),
        )]));
        let p = b.finish(vec![HostStmt::Launch(bad)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("local array id 3 out of range")));
    }

    #[test]
    fn kernel_without_loops_caught() {
        let (b, _n, _a, _i) = base();
        let k = Kernel::simple("k", vec![], Block::default());
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("at least one parallel loop")));
    }
}
