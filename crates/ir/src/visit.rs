//! Mutable traversal helpers used by the optimization-method
//! transformations in `paccport-core`.

use crate::kernel::Kernel;
use crate::program::{HostStmt, Program};

impl Program {
    /// Apply `f` to every kernel in the program, in launch-site order.
    pub fn map_kernels(&mut self, mut f: impl FnMut(&mut Kernel)) {
        map_kernels_in(&mut self.body, &mut f);
    }

    /// Apply `f` to the kernel with the given name; returns whether it
    /// was found.
    pub fn map_kernel(&mut self, name: &str, mut f: impl FnMut(&mut Kernel)) -> bool {
        let mut found = false;
        self.map_kernels(|k| {
            if k.name == name {
                f(k);
                found = true;
            }
        });
        found
    }
}

fn map_kernels_in(body: &mut [HostStmt], f: &mut impl FnMut(&mut Kernel)) {
    for s in body {
        match s {
            HostStmt::Launch(k) => f(k),
            HostStmt::DataRegion { body, .. }
            | HostStmt::HostLoop { body, .. }
            | HostStmt::WhileFlag { body, .. } => map_kernels_in(body, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::kernel::{Kernel, ParallelLoop};
    use crate::program::HostStmt;
    use crate::stmt::Block;
    use crate::Expr;

    #[test]
    fn map_kernels_reaches_nested_launches() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let i = b.var("i");
        let t = b.var("t");
        let mk = |name: &str, var| {
            HostStmt::Launch(Kernel::simple(
                name,
                vec![ParallelLoop::new(var, Expr::iconst(0), Expr::param(n))],
                Block::default(),
            ))
        };
        let mut p = b.finish(vec![
            mk("outer", i),
            HostStmt::HostLoop {
                var: t,
                lo: Expr::iconst(0),
                hi: Expr::param(n),
                body: vec![mk("inner", i)],
            },
        ]);
        let mut names = Vec::new();
        p.map_kernels(|k| names.push(k.name.clone()));
        assert_eq!(names, vec!["outer", "inner"]);
        assert!(p.map_kernel("inner", |k| k.name = "renamed".into()));
        assert!(p.kernel("renamed").is_some());
        assert!(!p.map_kernel("missing", |_| ()));
    }
}
