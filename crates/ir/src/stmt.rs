//! Statements and blocks: the body language of kernels.

use crate::expr::Expr;
use crate::types::{ArrayId, MemSpace, Scalar, VarId};
use serde::{Deserialize, Serialize};

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block(stmts)
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Pre-order walk over every statement (including nested ones).
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.0 {
            s.walk(f);
        }
    }

    /// Walk every expression appearing anywhere in the block.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.walk(&mut |s| s.for_each_expr(&mut |e| e.walk(f)));
    }

    /// Substitute variable `v` with `with` throughout the block.
    pub fn subst_var(&self, v: VarId, with: &Expr) -> Block {
        Block(self.0.iter().map(|s| s.subst_var(v, with)).collect())
    }

    /// Collect all `(space, array, index)` store targets in the block.
    pub fn collect_stores<'a>(&'a self, out: &mut Vec<(MemSpace, ArrayId, &'a Expr)>) {
        for s in &self.0 {
            match s {
                Stmt::Store {
                    space,
                    array,
                    index,
                    ..
                } => out.push((*space, *array, index)),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    then_blk.collect_stores(out);
                    else_blk.collect_stores(out);
                }
                Stmt::For { body, .. } => body.collect_stores(out),
                _ => {}
            }
        }
    }
}

/// Kernel-body statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Declare-and-initialize a kernel-local scalar.
    Let { var: VarId, ty: Scalar, init: Expr },
    /// Re-assign a previously declared local scalar.
    Assign { var: VarId, value: Expr },
    /// `array[index] = value`.
    Store {
        space: MemSpace,
        array: ArrayId,
        index: Expr,
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Block,
    },
    /// A *sequential* inner loop `for (var = lo; var < hi; var += step)`.
    ///
    /// Parallel loops live in [`crate::kernel::ParallelLoop`]; this is
    /// the loop the unroll (step 3) and tile (step 4) transformations
    /// operate on.
    For {
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: i64,
        body: Block,
    },
    /// Work-group barrier. Only meaningful inside staged (work-group)
    /// kernel bodies; lowered to PTX `bar.sync`.
    Barrier,
    /// OpenACC 2.0 atomics directive (Section II-B, feature 3):
    /// `#pragma acc atomic` around `array[index] ⊕= value`. Atomic
    /// updates synchronize, so the dependence analysis does not treat
    /// them as parallelization hazards.
    Atomic {
        op: crate::kernel::ReduceOp,
        array: ArrayId,
        index: Expr,
        value: Expr,
    },
}

impl Stmt {
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                then_blk.walk(f);
                else_blk.walk(f);
            }
            Stmt::For { body, .. } => body.walk(f),
            _ => {}
        }
    }

    /// Visit each *directly owned* expression of this statement (not
    /// of nested statements — combine with [`Stmt::walk`] for that).
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Stmt::Let { init, .. } => f(init),
            Stmt::Assign { value, .. } => f(value),
            Stmt::Store { index, value, .. } => {
                f(index);
                f(value);
            }
            Stmt::If { cond, .. } => f(cond),
            Stmt::For { lo, hi, .. } => {
                f(lo);
                f(hi);
            }
            Stmt::Barrier => {}
            Stmt::Atomic { index, value, .. } => {
                f(index);
                f(value);
            }
        }
    }

    pub fn subst_var(&self, v: VarId, with: &Expr) -> Stmt {
        match self {
            Stmt::Let { var, ty, init } => Stmt::Let {
                var: *var,
                ty: *ty,
                init: init.subst_var(v, with),
            },
            Stmt::Assign { var, value } => Stmt::Assign {
                var: *var,
                value: value.subst_var(v, with),
            },
            Stmt::Store {
                space,
                array,
                index,
                value,
            } => Stmt::Store {
                space: *space,
                array: *array,
                index: index.subst_var(v, with),
                value: value.subst_var(v, with),
            },
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => Stmt::If {
                cond: cond.subst_var(v, with),
                then_blk: then_blk.subst_var(v, with),
                else_blk: else_blk.subst_var(v, with),
            },
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => Stmt::For {
                var: *var,
                lo: lo.subst_var(v, with),
                hi: hi.subst_var(v, with),
                step: *step,
                // Shadowing: an inner loop over the same name stops
                // substitution (builders never shadow, but stay sound).
                body: if *var == v {
                    body.clone()
                } else {
                    body.subst_var(v, with)
                },
            },
            Stmt::Barrier => Stmt::Barrier,
            Stmt::Atomic {
                op,
                array,
                index,
                value,
            } => Stmt::Atomic {
                op: *op,
                array: *array,
                index: index.subst_var(v, with),
                value: value.subst_var(v, with),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn walk_visits_nested_statements() {
        let blk = Block::new(vec![Stmt::If {
            cond: Expr::BConst(true),
            then_blk: Block::new(vec![Stmt::Store {
                space: MemSpace::Global,
                array: ArrayId(0),
                index: Expr::var(v(0)),
                value: Expr::fconst(1.0),
            }]),
            else_blk: Block::default(),
        }]);
        let mut n = 0;
        blk.walk(&mut |_| n += 1);
        assert_eq!(n, 2); // If + Store
    }

    #[test]
    fn collect_stores_sees_through_loops() {
        let blk = Block::new(vec![Stmt::For {
            var: v(1),
            lo: Expr::iconst(0),
            hi: Expr::iconst(4),
            step: 1,
            body: Block::new(vec![Stmt::Store {
                space: MemSpace::Global,
                array: ArrayId(7),
                index: Expr::var(v(1)),
                value: Expr::fconst(0.0),
            }]),
        }]);
        let mut stores = Vec::new();
        blk.collect_stores(&mut stores);
        assert_eq!(stores.len(), 1);
        assert_eq!(stores[0].1, ArrayId(7));
    }

    #[test]
    fn subst_respects_shadowing() {
        let inner_store = Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: Expr::var(v(0)),
            value: Expr::fconst(0.0),
        };
        let loop_over_v0 = Stmt::For {
            var: v(0),
            lo: Expr::iconst(0),
            hi: Expr::var(v(0)), // bound uses the *outer* v0
            step: 1,
            body: Block::new(vec![inner_store]),
        };
        let s = loop_over_v0.subst_var(v(0), &Expr::iconst(9));
        if let Stmt::For { hi, body, .. } = s {
            assert_eq!(hi, Expr::iconst(9)); // bound substituted
                                             // body untouched because var is shadowed by the loop
            if let Stmt::Store { index, .. } = &body.0[0] {
                assert_eq!(*index, Expr::var(v(0)));
            } else {
                panic!("expected store");
            }
        } else {
            panic!("expected for");
        }
    }

    #[test]
    fn walk_exprs_reaches_loop_bounds() {
        let blk = Block::new(vec![Stmt::For {
            var: v(1),
            lo: Expr::iconst(0),
            hi: Expr::bin(BinOp::Add, Expr::var(v(2)), Expr::iconst(1)),
            step: 1,
            body: Block::default(),
        }]);
        let mut saw_v2 = false;
        blk.walk_exprs(&mut |e| {
            if matches!(e, Expr::Var(x) if *x == v(2)) {
                saw_v2 = true;
            }
        });
        assert!(saw_v2);
    }
}
