//! Loop-carried dependence analysis (the basis of Step 1 of the
//! systematic optimization method, and of Table II of the paper).
//!
//! The analysis is deliberately conservative — exactly like the
//! analysis an application developer (or a 2014-era compiler) performs
//! before daring to write `#pragma acc loop independent`:
//!
//! * affine accesses (`a*i + b`, with coefficients that may carry one
//!   parameter factor, covering linearized `i*n + j`) are tested
//!   pairwise with a distance test;
//! * anything non-affine — indirect indexing (`cost[edges[i]]`, as in
//!   BFS), products of two loop variables, data-dependent indices —
//!   is reported as [`DepKind::Unknown`] and treated as a dependence.
//!
//! This conservatism is *load-bearing for the reproduction*: the paper
//! reports that `independent` could not be added to LUD "due to the
//! dependencies found in the loops", and that PGI refused to
//! parallelize BFS's irregular loop even with `independent` present.

use crate::expr::{to_affine, Expr};
use crate::kernel::{Kernel, KernelBody, ParallelLoop};
use crate::stmt::Block;
use crate::types::{ArrayId, MemSpace, VarId};
use serde::{Deserialize, Serialize};

/// Classification of a potential loop-carried dependence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepKind {
    /// Proven carried dependence with the given distance in iterations
    /// of the analyzed loop (e.g. `A[i] = A[i-1] + 1` has distance 1).
    Carried { array: ArrayId, distance: i64 },
    /// A pair of accesses the analysis cannot reason about
    /// (non-affine index, indirect addressing, …).
    Unknown { array: ArrayId, reason: String },
}

/// Result of analyzing one parallel loop level.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DepReport {
    pub deps: Vec<DepKind>,
}

impl DepReport {
    /// `true` iff the loop is safely parallel: no proven carried
    /// dependences and no unanalyzable accesses.
    pub fn is_independent(&self) -> bool {
        self.deps.is_empty()
    }

    /// `true` iff only `Unknown` entries are present — the loop *may*
    /// be parallel, but a conservative tool will not assert it.
    pub fn only_unknown(&self) -> bool {
        !self.deps.is_empty()
            && self
                .deps
                .iter()
                .all(|d| matches!(d, DepKind::Unknown { .. }))
    }
}

struct Access<'a> {
    array: ArrayId,
    index: &'a Expr,
    is_write: bool,
}

fn collect_accesses<'a>(block: &'a Block, out: &mut Vec<Access<'a>>) {
    // Writes.
    let mut stores = Vec::new();
    block.collect_stores(&mut stores);
    for (space, array, index) in stores {
        if space == MemSpace::Global {
            out.push(Access {
                array,
                index,
                is_write: true,
            });
        }
    }
    // Reads: walk every expression, collecting loads.
    collect_reads(block, out);
}

fn collect_reads<'a>(block: &'a Block, out: &mut Vec<Access<'a>>) {
    use crate::stmt::Stmt;
    fn from_expr<'a>(e: &'a Expr, out: &mut Vec<Access<'a>>) {
        let mut loads = Vec::new();
        e.collect_loads(&mut loads);
        for (space, array, index) in loads {
            if space == MemSpace::Global {
                out.push(Access {
                    array,
                    index,
                    is_write: false,
                });
            }
        }
    }
    for s in &block.0 {
        match s {
            Stmt::Let { init, .. } => from_expr(init, out),
            Stmt::Assign { value, .. } => from_expr(value, out),
            Stmt::Store { index, value, .. } => {
                from_expr(index, out);
                from_expr(value, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                from_expr(cond, out);
                collect_reads(then_blk, out);
                collect_reads(else_blk, out);
            }
            Stmt::For { lo, hi, body, .. } => {
                from_expr(lo, out);
                from_expr(hi, out);
                collect_reads(body, out);
            }
            Stmt::Barrier => {}
            // Atomic updates synchronize — the update itself is not a
            // parallelization hazard — but the expressions still read.
            Stmt::Atomic { index, value, .. } => {
                from_expr(index, out);
                from_expr(value, out);
            }
        }
    }
}

/// Analyze whether iterations of the loop over `loop_var` may be
/// executed in parallel, given the kernel body `block`.
///
/// `inner_parallel_vars` lists loop variables *inside* this level
/// (including sequential inner loops); accesses whose affine forms
/// differ only in those variables are still compared — a pair like
/// `store A[i*n+j]` / `load A[k*n+j]` with distinct variable sets is
/// conservatively `Unknown`.
pub fn analyze_block(loop_var: VarId, block: &Block) -> DepReport {
    let mut accesses = Vec::new();
    collect_accesses(block, &mut accesses);

    let mut report = DepReport::default();
    let mut seen_unknown: std::collections::BTreeSet<ArrayId> = Default::default();
    let mut seen_carried: std::collections::BTreeSet<(ArrayId, i64)> = Default::default();

    for (ai, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(ai) {
            if a.array != b.array || (!a.is_write && !b.is_write) {
                continue; // different arrays or read-read: no dependence
            }
            let array = a.array;
            let (fa, fb) = match (to_affine(a.index), to_affine(b.index)) {
                (Some(fa), Some(fb)) => (fa, fb),
                _ => {
                    if seen_unknown.insert(array) {
                        report.deps.push(DepKind::Unknown {
                            array,
                            reason: "non-affine index expression".into(),
                        });
                    }
                    continue;
                }
            };
            let ca = fa.coeff(loop_var);
            let cb = fb.coeff(loop_var);
            if ca != cb {
                // Accesses move at different rates w.r.t. the loop —
                // cannot be disproven with the distance test.
                if seen_unknown.insert(array) {
                    report.deps.push(DepKind::Unknown {
                        array,
                        reason: "loop coefficient mismatch".into(),
                    });
                }
                continue;
            }
            if ca.is_zero() {
                // Neither access moves with the loop, so every
                // iteration touches the same location. Any pair with a
                // write is a carried dependence — including a single
                // store statement paired with itself, because two
                // *different iterations* both execute it (the
                // `bfs_kernel2` stop-flag store: a lone loop-invariant
                // write the detector observes as a write-write race).
                // Read-read pairs were already filtered above.
                if fa == fb && seen_carried.insert((array, 0)) {
                    report.deps.push(DepKind::Carried { array, distance: 0 });
                }
                continue;
            }
            match fa.const_delta(&fb) {
                Some(0) => {
                    // Same location in the same iteration: fine.
                }
                Some(delta) if delta % ca.k == 0 && ca.param.is_none() => {
                    let distance = delta / ca.k;
                    if seen_carried.insert((array, distance)) {
                        report.deps.push(DepKind::Carried { array, distance });
                    }
                }
                Some(_) => {
                    // Delta not a multiple of the stride: accesses hit
                    // disjoint residue classes — independent.
                }
                None => {
                    // Forms differ in other variables/parameters:
                    // conservatively unknown.
                    if seen_unknown.insert(array) {
                        report.deps.push(DepKind::Unknown {
                            array,
                            reason: "index forms differ in other variables".into(),
                        });
                    }
                }
            }
        }
    }
    report
}

/// Analyze one parallel-loop level of a kernel.
pub fn analyze_loop(kernel: &Kernel, level: usize) -> DepReport {
    let lp: &ParallelLoop = &kernel.loops[level];
    match &kernel.body {
        KernelBody::Simple(b) => analyze_block(lp.var, b),
        KernelBody::Grouped(_) => {
            // Hand-written work-group kernels synchronize explicitly;
            // treat the global loop as independent by construction.
            DepReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::stmt::Stmt;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// Table II, left column: `for i: A[i] = A[i-1] + 1` — dependent.
    #[test]
    fn table2_dependent_loop() {
        let body = Block::new(vec![Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: Expr::var(v(0)),
            value: Expr::bin(
                BinOp::Add,
                Expr::load(
                    ArrayId(0),
                    Expr::bin(BinOp::Sub, Expr::var(v(0)), Expr::iconst(1)),
                ),
                Expr::fconst(1.0),
            ),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(!r.is_independent());
        assert!(r
            .deps
            .iter()
            .any(|d| matches!(d, DepKind::Carried { distance, .. } if distance.abs() == 1)));
    }

    /// Table II, right column: `for i: A[i] = A[i] + 1` — independent.
    #[test]
    fn table2_independent_loop() {
        let body = Block::new(vec![Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: Expr::var(v(0)),
            value: Expr::bin(
                BinOp::Add,
                Expr::load(ArrayId(0), Expr::var(v(0))),
                Expr::fconst(1.0),
            ),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(r.is_independent(), "got {:?}", r);
    }

    /// BFS-style indirect store: `cost[edges[i]] = ...` — unknown.
    #[test]
    fn indirect_access_is_unknown() {
        let body = Block::new(vec![Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: Expr::load(ArrayId(1), Expr::var(v(0))),
            value: Expr::fconst(0.0),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(!r.is_independent());
        assert!(r.only_unknown());
    }

    /// LUD-style mixed-variable pair: store `A[i*n+j]`, load `A[k*n+j]`
    /// (k a free variable) — conservatively unknown w.r.t. loop `i`.
    #[test]
    fn lud_style_pair_is_conservatively_dependent() {
        use crate::types::ParamId;
        let n = ParamId(0);
        let i = v(0);
        let j = v(1);
        let k = v(2);
        let idx = |row: VarId| {
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var(row), Expr::param(n)),
                Expr::var(j),
            )
        };
        let body = Block::new(vec![Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: idx(i),
            value: Expr::load(ArrayId(0), idx(k)),
        }]);
        let r = analyze_block(i, &body);
        assert!(!r.is_independent());
        assert!(r.only_unknown());
    }

    /// Reduction into a loop-invariant location is a carried
    /// dependence (distance 0 classification).
    #[test]
    fn scalar_accumulation_is_carried() {
        let body = Block::new(vec![Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: Expr::iconst(0),
            value: Expr::bin(
                BinOp::Add,
                Expr::load(ArrayId(0), Expr::iconst(0)),
                Expr::var(v(0)),
            ),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(!r.is_independent());
        assert!(r
            .deps
            .iter()
            .any(|d| matches!(d, DepKind::Carried { distance: 0, .. })));
    }

    /// Writes to `A[2i]` with reads of `A[2i+1]`: disjoint residue
    /// classes — independent.
    #[test]
    fn strided_disjoint_accesses_are_independent() {
        let two_i = Expr::bin(BinOp::Mul, Expr::iconst(2), Expr::var(v(0)));
        let body = Block::new(vec![Stmt::Store {
            space: MemSpace::Global,
            array: ArrayId(0),
            index: two_i.clone(),
            value: Expr::load(ArrayId(0), Expr::bin(BinOp::Add, two_i, Expr::iconst(1))),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(r.is_independent(), "got {:?}", r);
    }

    /// A store buried in a sequential inner `For` body is still a
    /// hazard of the enclosing parallel loop: `for i: for k:
    /// A[i+1] = A[i]` carries distance 1.
    #[test]
    fn store_inside_sequential_inner_loop_is_analyzed() {
        let i = v(0);
        let k = v(1);
        let body = Block::new(vec![Stmt::For {
            var: k,
            lo: Expr::iconst(0),
            hi: Expr::iconst(4),
            step: 1,
            body: Block::new(vec![Stmt::Store {
                space: MemSpace::Global,
                array: ArrayId(0),
                index: Expr::bin(BinOp::Add, Expr::var(i), Expr::iconst(1)),
                value: Expr::load(ArrayId(0), Expr::var(i)),
            }]),
        }]);
        let r = analyze_block(i, &body);
        assert!(!r.is_independent());
        assert!(r
            .deps
            .iter()
            .any(|d| matches!(d, DepKind::Carried { distance, .. } if distance.abs() == 1)));
    }

    /// Accumulating into the iteration's own slot from inside a
    /// sequential inner loop (`for i: for k: A[i] += B[k]`) is
    /// independent w.r.t. the parallel loop.
    #[test]
    fn per_iteration_accumulation_in_inner_loop_is_independent() {
        let i = v(0);
        let k = v(1);
        let body = Block::new(vec![Stmt::For {
            var: k,
            lo: Expr::iconst(0),
            hi: Expr::iconst(4),
            step: 1,
            body: Block::new(vec![Stmt::Store {
                space: MemSpace::Global,
                array: ArrayId(0),
                index: Expr::var(i),
                value: Expr::bin(
                    BinOp::Add,
                    Expr::load(ArrayId(0), Expr::var(i)),
                    Expr::load(ArrayId(1), Expr::var(k)),
                ),
            }]),
        }]);
        let r = analyze_block(i, &body);
        assert!(r.is_independent(), "got {r:?}");
    }

    /// Atomic updates synchronize: a histogram-style kernel whose only
    /// write is `atomic hist[0] += x[i]` is reported independent.
    #[test]
    fn atomic_only_updates_are_independent() {
        use crate::kernel::ReduceOp;
        let body = Block::new(vec![Stmt::Atomic {
            op: ReduceOp::Add,
            array: ArrayId(0),
            index: Expr::iconst(0),
            value: Expr::load(ArrayId(1), Expr::var(v(0))),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(r.is_independent(), "got {r:?}");
    }

    /// …but the atomic's index/value expressions still *read*: a load
    /// of `A[i+1]` inside an atomic pairs with a plain store of `A[i]`
    /// into a carried dependence.
    #[test]
    fn atomic_operands_are_read_collected() {
        use crate::kernel::ReduceOp;
        let i = v(0);
        let body = Block::new(vec![
            Stmt::Store {
                space: MemSpace::Global,
                array: ArrayId(0),
                index: Expr::var(i),
                value: Expr::fconst(1.0),
            },
            Stmt::Atomic {
                op: ReduceOp::Add,
                array: ArrayId(1),
                index: Expr::iconst(0),
                value: Expr::load(
                    ArrayId(0),
                    Expr::bin(BinOp::Add, Expr::var(i), Expr::iconst(1)),
                ),
            },
        ]);
        let r = analyze_block(i, &body);
        assert!(!r.is_independent());
        assert!(r.deps.iter().any(
            |d| matches!(d, DepKind::Carried { array: ArrayId(0), distance } if distance.abs() == 1)
        ));
    }

    /// A single loop-invariant store (BFS's `stop[0] = 1`) conflicts
    /// with *itself* across iterations: two different iterations both
    /// write the same location. Found by the dynamic race detector —
    /// the old analysis only compared distinct store statements, so a
    /// lone flag store was silently "proven" independent.
    #[test]
    fn lone_loop_invariant_store_is_carried() {
        let i = v(0);
        // if (mask[i] != 0) { stop[0] = 1 }
        let body = Block::new(vec![Stmt::If {
            cond: Expr::cmp(
                crate::expr::CmpOp::Ne,
                Expr::load(ArrayId(0), Expr::var(i)),
                Expr::iconst(0),
            ),
            then_blk: Block::new(vec![Stmt::Store {
                space: MemSpace::Global,
                array: ArrayId(1),
                index: Expr::iconst(0),
                value: Expr::iconst(1),
            }]),
            else_blk: Block::new(vec![]),
        }]);
        let r = analyze_block(i, &body);
        assert!(!r.is_independent());
        assert!(r.deps.iter().any(|d| matches!(
            d,
            DepKind::Carried {
                array: ArrayId(1),
                distance: 0
            }
        )));
    }

    /// Read-read pairs never constitute a dependence.
    #[test]
    fn read_only_kernels_are_independent() {
        let body = Block::new(vec![Stmt::Let {
            var: v(5),
            ty: crate::types::Scalar::F32,
            init: Expr::bin(
                BinOp::Add,
                Expr::load(ArrayId(0), Expr::var(v(0))),
                Expr::load(
                    ArrayId(0),
                    Expr::bin(BinOp::Add, Expr::var(v(0)), Expr::iconst(1)),
                ),
            ),
        }]);
        let r = analyze_block(v(0), &body);
        assert!(r.is_independent());
    }
}
