//! Whole programs: host control flow around kernel launches.

use crate::expr::Expr;
use crate::kernel::Kernel;
use crate::types::{ArrayDecl, ArrayId, ParamDecl, ParamId, Scalar, VarId};
use serde::{Deserialize, Serialize};

/// Direction of an explicit `#pragma acc update` transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// `update device(...)` — host → device.
    ToDevice,
    /// `update host(...)` — device → host.
    ToHost,
}

/// Host-side statements. This mirrors the structure of the benchmark
/// `main()` functions: data regions, the sequential outer loops that
/// launch kernels per iteration (LUD's `k`, GE's `t`, Hydro's time
/// step), BFS's flag-controlled `while`, and scalar host bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HostStmt {
    /// `#pragma acc data copyin/copyout/create(...) { body }`.
    /// Which arrays move in which direction follows their declared
    /// [`crate::types::Intent`].
    DataRegion {
        arrays: Vec<ArrayId>,
        body: Vec<HostStmt>,
    },
    /// Launch a compute region.
    Launch(Kernel),
    /// Sequential host loop `for (var = lo; var < hi; ++var)`.
    HostLoop {
        var: VarId,
        lo: Expr,
        hi: Expr,
        body: Vec<HostStmt>,
    },
    /// `do { body } while (flag[0] != 0)`, capped at `max_iters`
    /// (BFS's frontier loop). The flag is read from the *host* copy,
    /// so the body must `Update`-transfer it explicitly.
    WhileFlag {
        flag: ArrayId,
        max_iters: u32,
        body: Vec<HostStmt>,
    },
    /// Host scalar assignment. `Expr::Load` reads the host copy of an
    /// array (Hydro derives the time step from the reduced Courant
    /// number this way).
    HostAssign { var: VarId, ty: Scalar, value: Expr },
    /// Host-side array store (e.g. resetting BFS's stop flag).
    HostStore {
        array: ArrayId,
        index: Expr,
        value: Expr,
    },
    /// `#pragma acc update host/device(array)`.
    Update { array: ArrayId, dir: Dir },
    /// OpenACC 2.0 unstructured data regions (Section II-B, feature
    /// 2): begin a data lifetime that ends at a later `ExitData`,
    /// possibly in a different program scope.
    EnterData { arrays: Vec<ArrayId> },
    /// End an unstructured data lifetime (copy-out per intent).
    ExitData { arrays: Vec<ArrayId> },
    /// Host-side C work the IR does not model statement-by-statement
    /// (Hydro's boundary handling, transposes, …). `instr` evaluates
    /// to the approximate instruction count; the timing model divides
    /// by the host compiler's throughput (the GCC→ICC effect of
    /// Fig. 15). Functionally a no-op.
    HostCompute { label: String, instr: Expr },
}

impl HostStmt {
    /// Pre-order walk over nested host statements.
    pub fn walk(&self, f: &mut impl FnMut(&HostStmt)) {
        f(self);
        match self {
            HostStmt::DataRegion { body, .. }
            | HostStmt::HostLoop { body, .. }
            | HostStmt::WhileFlag { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }
}

/// A complete directive-annotated program: the unit the simulated
/// compilers compile and the device simulator runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub arrays: Vec<ArrayDecl>,
    pub body: Vec<HostStmt>,
    /// Human-readable names for every [`VarId`], indexed by id.
    /// Builders allocate ids monotonically; `var_names.len()` is the
    /// next free id.
    pub var_names: Vec<String>,
    /// Free-form source markers the simulated compilers react to,
    /// standing in for C-level properties the IR does not model
    /// (e.g. `"pointer-heavy-headers"` on Hydro, which makes the
    /// PGI personality fail to compile, as reported in the paper).
    pub tags: Vec<String>,
}

impl Program {
    /// Look up a parameter by name.
    pub fn param_id(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| ParamId(i as u32))
    }

    /// Look up an array by name.
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    pub fn param(&self, id: ParamId) -> &ParamDecl {
        &self.params[id.0 as usize]
    }

    /// Human-readable name of a variable (falls back to `v<N>`).
    pub fn var_name(&self, id: VarId) -> String {
        self.var_names
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("v{}", id.0))
    }

    /// Iterate over every kernel in the program (in launch-site order,
    /// each kernel once even if its launch site is inside a loop).
    pub fn kernels(&self) -> Vec<&Kernel> {
        let mut out = Vec::new();
        collect_kernels(&self.body, &mut out);
        out
    }

    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels().into_iter().find(|k| k.name == name)
    }

    /// Total number of distinct kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels().len()
    }

    /// Whether any statement opens an explicit data region.
    pub fn has_data_region(&self) -> bool {
        let mut found = false;
        for s in &self.body {
            s.walk(&mut |s| {
                if matches!(s, HostStmt::DataRegion { .. }) {
                    found = true;
                }
            });
        }
        found
    }

    /// Total IR statement count: every host statement (nested ones
    /// included) plus every kernel-body statement (nested `If`/`For`
    /// bodies included; all phases of a grouped body). This is the
    /// size metric shrunk conformance counterexamples are judged by.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0usize;
        for s in &self.body {
            s.walk(&mut |s| {
                n += 1;
                if let HostStmt::Launch(k) = s {
                    let blocks: Vec<&crate::stmt::Block> = match &k.body {
                        crate::kernel::KernelBody::Simple(b) => vec![b],
                        crate::kernel::KernelBody::Grouped(g) => g.phases.iter().collect(),
                    };
                    for b in blocks {
                        b.walk(&mut |_| n += 1);
                    }
                }
            });
        }
        n
    }
}

fn collect_kernels<'a>(body: &'a [HostStmt], out: &mut Vec<&'a Kernel>) {
    for s in body {
        match s {
            HostStmt::Launch(k) => out.push(k),
            HostStmt::DataRegion { body, .. }
            | HostStmt::HostLoop { body, .. }
            | HostStmt::WhileFlag { body, .. } => collect_kernels(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ParallelLoop;
    use crate::stmt::Block;
    use crate::types::Intent;

    fn tiny_program() -> Program {
        Program {
            name: "t".into(),
            params: vec![ParamDecl {
                name: "n".into(),
                ty: Scalar::I32,
            }],
            arrays: vec![ArrayDecl {
                name: "a".into(),
                elem: Scalar::F32,
                len: Expr::param(ParamId(0)),
                intent: Intent::InOut,
            }],
            body: vec![HostStmt::HostLoop {
                var: VarId(0),
                lo: Expr::iconst(0),
                hi: Expr::param(ParamId(0)),
                body: vec![HostStmt::Launch(Kernel::simple(
                    "inner",
                    vec![ParallelLoop::new(
                        VarId(1),
                        Expr::iconst(0),
                        Expr::param(ParamId(0)),
                    )],
                    Block::default(),
                ))],
            }],
            var_names: vec!["k".into(), "i".into()],
            tags: vec![],
        }
    }

    #[test]
    fn lookups_by_name() {
        let p = tiny_program();
        assert_eq!(p.param_id("n"), Some(ParamId(0)));
        assert_eq!(p.array_id("a"), Some(ArrayId(0)));
        assert_eq!(p.param_id("m"), None);
        assert_eq!(p.array_id("b"), None);
    }

    #[test]
    fn kernels_found_inside_loops() {
        let p = tiny_program();
        assert_eq!(p.kernel_count(), 1);
        assert!(p.kernel("inner").is_some());
        assert!(p.kernel("missing").is_none());
    }

    #[test]
    fn data_region_detection() {
        let mut p = tiny_program();
        assert!(!p.has_data_region());
        p.body = vec![HostStmt::DataRegion {
            arrays: vec![ArrayId(0)],
            body: p.body.clone(),
        }];
        assert!(p.has_data_region());
        assert_eq!(p.kernel_count(), 1);
    }
}
