//! Kernels: OpenACC compute regions with their parallel loop nests.

use crate::expr::Expr;
use crate::stmt::Block;
use crate::types::{LocalArrayDecl, Scalar, VarId};
use serde::{Deserialize, Serialize};

/// Reduction operators supported by the `reduction(op: var)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    Add,
    Max,
    Min,
}

impl ReduceOp {
    /// Identity element of the reduction (f64 view; narrowed on use).
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// A `reduction(op: var)` clause attached to a sequential inner loop
/// that a compiler may parallelize with a shared-memory tree (Fig. 13
/// of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reduction {
    pub op: ReduceOp,
    /// The accumulator scalar (must be a `Let` local of the body).
    pub acc: VarId,
}

/// OpenACC 2.0 `device_type` targets (Section II-B, feature 4: set
/// "different gang/worker/vector for NVIDIA GPU and AMD GPU").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccDeviceType {
    Nvidia,
    Radeon,
    XeonPhi,
}

impl AccDeviceType {
    pub fn spelling(self) -> &'static str {
        match self {
            AccDeviceType::Nvidia => "nvidia",
            AccDeviceType::Radeon => "radeon",
            AccDeviceType::XeonPhi => "xeonphi",
        }
    }
}

/// One `device_type(<dev>) gang(g) worker(w) vector(v)` override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceTypeClause {
    pub device: AccDeviceType,
    pub gang: Option<u32>,
    pub worker: Option<u32>,
    pub vector: Option<u32>,
}

/// Per-loop OpenACC clauses (Section II-B / III of the paper).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LoopClauses {
    /// `#pragma acc loop independent` — the programmer asserts no
    /// loop-carried dependence (Step 1 of the systematic method).
    pub independent: bool,
    /// `gang(n)` — requested gang count (thread blocks / global work).
    pub gang: Option<u32>,
    /// `worker(n)` — requested workers per gang.
    pub worker: Option<u32>,
    /// `vector(n)` — requested vector lanes.
    pub vector: Option<u32>,
    /// `tile(n)` — OpenACC 2.0 tiling clause (Step 4).
    pub tile: Option<u32>,
    /// HMPP-style `unroll(n), jam` request (Step 3, CAPS only;
    /// PGI uses the `-Munroll` flag instead).
    pub unroll_jam: Option<u32>,
    /// `device_type(...)` overrides (OpenACC 2.0): per-device
    /// gang/worker/vector replacing the defaults above when the
    /// compile target matches.
    pub device_overrides: Vec<DeviceTypeClause>,
}

impl LoopClauses {
    pub fn independent() -> Self {
        LoopClauses {
            independent: true,
            ..Default::default()
        }
    }

    /// True when the programmer requested an explicit distribution.
    pub fn has_explicit_distribution(&self) -> bool {
        self.gang.is_some() || self.worker.is_some() || self.vector.is_some()
    }

    /// The clauses in effect for a compile target: the base values
    /// overridden by a matching `device_type` clause, if any.
    pub fn for_device(&self, device: AccDeviceType) -> LoopClauses {
        let mut out = self.clone();
        if let Some(o) = self.device_overrides.iter().find(|o| o.device == device) {
            if o.gang.is_some() {
                out.gang = o.gang;
            }
            if o.worker.is_some() {
                out.worker = o.worker;
            }
            if o.vector.is_some() {
                out.vector = o.vector;
            }
        }
        out
    }
}

/// One level of a parallelizable loop nest.
///
/// Bounds may reference program parameters, host loop variables and
/// *outer* parallel loop variables (triangular nests, as in Gaussian
/// elimination's `for i in t+1..n`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelLoop {
    pub var: VarId,
    pub lo: Expr,
    pub hi: Expr,
    pub clauses: LoopClauses,
}

impl ParallelLoop {
    pub fn new(var: VarId, lo: Expr, hi: Expr) -> Self {
        ParallelLoop {
            var,
            lo,
            hi,
            clauses: LoopClauses::default(),
        }
    }
}

/// Work-group ("staged") kernel body used by the hand-written OpenCL
/// comparison versions and by reduction lowering.
///
/// Execution model: the global index space is split into groups of
/// `group_size` threads. Each `phase` is executed by every thread of a
/// group before any thread proceeds to the next phase — i.e. there is
/// an implicit work-group barrier between phases (CUDA
/// `__syncthreads()`). Local arrays live per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedBody {
    pub group_size: u32,
    pub locals: Vec<LocalArrayDecl>,
    pub phases: Vec<Block>,
}

/// The body of a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelBody {
    /// Per-iteration body indexed by the parallel loop variables.
    Simple(Block),
    /// Work-group SPMD body with local memory and barriers.
    Grouped(GroupedBody),
}

/// Launch-shape information that is part of the *source* for
/// hand-written OpenCL kernels (`clEnqueueNDRangeKernel` arguments):
/// the local work size, whether the range is two-dimensional, and
/// whether each work-group cooperates on a single outer iteration
/// (reduction-style kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchHint {
    pub local: (u32, u32),
    pub two_d: bool,
    pub group_per_iter: bool,
}

/// A compute region: `#pragma acc parallel`/`kernels` around a loop
/// nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    pub name: String,
    /// Outermost-first parallel loops. At least one.
    pub loops: Vec<ParallelLoop>,
    pub body: KernelBody,
    /// Locals that must be declared before interpretation (collected
    /// from `Let` statements during validation; kept for printing).
    pub locals: Vec<(VarId, Scalar)>,
    /// A reduction over the *parallel* iteration space writing a
    /// scalar result (e.g. Hydro's Courant number, BP's weight sums).
    /// The reduced value is stored to `result_array[0]`.
    pub region_reduction: Option<RegionReduction>,
    /// `#pragma acc parallel reduction` requested on the inner
    /// accumulation loop (Step V-D2 of the paper, Back Propagation).
    /// Compilers attempt the shared-memory tree lowering when set.
    pub reduction: Option<Reduction>,
    /// OpenCL NDRange information (hand-written kernels only).
    pub launch_hint: Option<LaunchHint>,
}

/// Reduction over the whole parallel iteration space of a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReduction {
    pub op: ReduceOp,
    /// Value produced by each iteration (evaluated after the body, so
    /// it may reference body locals).
    pub value: Expr,
    /// Destination array (length ≥ 1); element 0 receives the result.
    pub dest: crate::types::ArrayId,
}

impl Kernel {
    pub fn simple(name: impl Into<String>, loops: Vec<ParallelLoop>, body: Block) -> Self {
        Kernel {
            name: name.into(),
            loops,
            body: KernelBody::Simple(body),
            locals: Vec::new(),
            region_reduction: None,
            reduction: None,
            launch_hint: None,
        }
    }

    /// Dimensionality of the parallel index space.
    pub fn rank(&self) -> usize {
        self.loops.len()
    }

    /// Whether any loop in the nest carries the `independent` clause.
    pub fn any_independent(&self) -> bool {
        self.loops.iter().any(|l| l.clauses.independent)
    }

    /// Whether the body uses work-group local memory.
    pub fn uses_local_memory(&self) -> bool {
        match &self.body {
            KernelBody::Grouped(g) => !g.locals.is_empty(),
            KernelBody::Simple(b) => {
                let mut uses = false;
                b.walk(&mut |s| {
                    if matches!(
                        s,
                        crate::stmt::Stmt::Store {
                            space: crate::types::MemSpace::Local,
                            ..
                        }
                    ) {
                        uses = true;
                    }
                });
                uses
            }
        }
    }

    /// The simple-body block, if this is a simple kernel.
    pub fn simple_body(&self) -> Option<&Block> {
        match &self.body {
            KernelBody::Simple(b) => Some(b),
            KernelBody::Grouped(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Stmt;
    use crate::types::{ArrayId, MemSpace};

    #[test]
    fn reduce_op_identities() {
        assert_eq!(ReduceOp::Add.identity(), 0.0);
        assert_eq!(ReduceOp::Max.combine(ReduceOp::Max.identity(), 3.0), 3.0);
        assert_eq!(ReduceOp::Min.combine(ReduceOp::Min.identity(), -3.0), -3.0);
    }

    #[test]
    fn clauses_distribution_detection() {
        let mut c = LoopClauses::independent();
        assert!(c.independent);
        assert!(!c.has_explicit_distribution());
        c.gang = Some(256);
        assert!(c.has_explicit_distribution());
    }

    #[test]
    fn kernel_rank_and_local_memory() {
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(
                VarId(0),
                Expr::iconst(0),
                Expr::iconst(8),
            )],
            Block::new(vec![Stmt::Store {
                space: MemSpace::Local,
                array: ArrayId(0),
                index: Expr::iconst(0),
                value: Expr::fconst(0.0),
            }]),
        );
        assert_eq!(k.rank(), 1);
        assert!(k.uses_local_memory());
        assert!(!k.any_independent());
    }
}
