//! Core identifier and declaration types shared by the whole IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar element / value types understood by the IR.
///
/// The benchmarks in the paper use single-precision floats and 32-bit
/// integers; `F64` exists for reference-precision checks and `Bool`
/// for mask arrays (BFS frontier masks are `bool` in Rodinia).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scalar {
    F32,
    F64,
    I32,
    U32,
    Bool,
}

impl Scalar {
    /// Size of one element in bytes on the simulated devices.
    pub fn size_bytes(self) -> usize {
        match self {
            Scalar::F32 | Scalar::I32 | Scalar::U32 => 4,
            Scalar::F64 => 8,
            Scalar::Bool => 1,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F32 | Scalar::F64)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scalar::F32 => "float",
            Scalar::F64 => "double",
            Scalar::I32 => "int",
            Scalar::U32 => "unsigned",
            Scalar::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Index of an array declared in a [`crate::Program`]'s array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

/// Index of a scalar parameter declared in a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub u32);

/// Index of a scalar variable: loop induction variables (host or
/// device) and kernel-local scalars share one numbering per program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// Which memory an array access refers to.
///
/// `Local` is OpenCL `__local` / CUDA `__shared__` memory; only
/// work-group ("staged") kernel bodies may touch it. The PTX-analysis
/// part of the paper hinges on this distinction: OpenACC tiling never
/// produced `ld.shared`/`st.shared` instructions, while the
/// hand-written OpenCL and the `reduction` directive did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    Global,
    Local,
}

/// Host/device data-movement intent of a program array, in the sense
/// of the OpenACC `data` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intent {
    /// `copyin` — host → device at region entry.
    In,
    /// `copyout` — device → host at region exit.
    Out,
    /// `copy` — both directions.
    InOut,
    /// `create` — device-only scratch, never transferred.
    Scratch,
}

impl Intent {
    pub fn copies_in(self) -> bool {
        matches!(self, Intent::In | Intent::InOut)
    }
    pub fn copies_out(self) -> bool {
        matches!(self, Intent::Out | Intent::InOut)
    }
}

/// Declaration of a scalar program parameter (e.g. the matrix order
/// `n`). Parameters are bound to concrete values at run/compile time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    pub name: String,
    pub ty: Scalar,
}

/// Declaration of a (device-resident) program array.
///
/// `len` is an expression over parameters only, evaluated when the
/// program is instantiated (e.g. `n*n` for a square matrix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    pub name: String,
    pub elem: Scalar,
    pub len: crate::expr::Expr,
    pub intent: Intent,
}

/// Declaration of a work-group local array in a staged kernel body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalArrayDecl {
    pub name: String,
    pub elem: Scalar,
    /// Compile-time constant length (local memory must be statically
    /// sized, as in CUDA `__shared__` declarations).
    pub len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_device_abi() {
        assert_eq!(Scalar::F32.size_bytes(), 4);
        assert_eq!(Scalar::F64.size_bytes(), 8);
        assert_eq!(Scalar::I32.size_bytes(), 4);
        assert_eq!(Scalar::U32.size_bytes(), 4);
        assert_eq!(Scalar::Bool.size_bytes(), 1);
    }

    #[test]
    fn intent_transfer_directions() {
        assert!(Intent::In.copies_in() && !Intent::In.copies_out());
        assert!(!Intent::Out.copies_in() && Intent::Out.copies_out());
        assert!(Intent::InOut.copies_in() && Intent::InOut.copies_out());
        assert!(!Intent::Scratch.copies_in() && !Intent::Scratch.copies_out());
    }

    #[test]
    fn float_classification() {
        assert!(Scalar::F32.is_float());
        assert!(Scalar::F64.is_float());
        assert!(!Scalar::I32.is_float());
        assert!(!Scalar::Bool.is_float());
    }

    #[test]
    fn display_is_c_like() {
        assert_eq!(Scalar::F32.to_string(), "float");
        assert_eq!(Scalar::U32.to_string(), "unsigned");
    }
}
