//! # paccport-ir — an OpenACC-like directive / loop-nest IR
//!
//! This crate is the "source language" of the reproduction: every
//! benchmark in the study (the Rodinia kernels and the Hydro mini-app)
//! is written as a [`Program`] in this IR, exactly mirroring the
//! structure of its original C + `#pragma acc` source.
//!
//! The IR captures precisely the information OpenACC directives carry:
//!
//! * **host control flow** — data regions, host loops (e.g. the `k`
//!   loop of Gaussian elimination that launches kernels per iteration),
//!   flag-driven `while` loops (BFS), explicit `update` transfers;
//! * **parallel loop nests** — rectangular or triangular, with the
//!   OpenACC clauses `independent`, `gang(n)`, `worker(n)`,
//!   `vector(n)`, `collapse`, `tile(n)` and `reduction(op: var)`;
//! * **kernel bodies** — a small expression/statement language rich
//!   enough for dense linear algebra, graph traversal, neural-network
//!   training and Godunov hydrodynamics, including sequential inner
//!   loops and work-group ("staged") bodies with local memory and
//!   barriers for the hand-written OpenCL comparison versions.
//!
//! Downstream crates lower this IR to a PTX-like ISA
//! (`paccport-compilers`), execute it functionally and model its
//! timing (`paccport-devsim`), and transform it according to the
//! paper's four-step systematic optimization method (`paccport-core`).
//!
//! ```
//! use paccport_ir::*;
//!
//! // float a[n]; #pragma acc loop independent
//! // for (i = 0; i < n; i++) a[i] = 2*a[i] + 1;
//! let mut b = ProgramBuilder::new("axpb");
//! let n = b.iparam("n");
//! let a = b.array("a", Scalar::F32, n, Intent::InOut);
//! let i = b.var("i");
//! let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
//! lp.clauses.independent = true;
//! let k = Kernel::simple("axpb", vec![lp],
//!     Block::new(vec![st(a, i, E::from(2.0) * ld(a, i) + 1.0)]));
//! let program = b.finish(vec![HostStmt::Launch(k)]);
//!
//! validate(&program).unwrap();
//! let rep = analyze_loop(program.kernel("axpb").unwrap(), 0);
//! assert!(rep.is_independent());
//! assert!(program_to_string(&program).contains("#pragma acc loop independent"));
//! ```

pub mod builder;
pub mod deps;
pub mod display;
pub mod expr;
pub mod kernel;
pub mod program;
pub mod simplify;
pub mod stmt;
pub mod types;
pub mod validate;
pub mod visit;

pub use builder::{
    assign, for_, if_, if_else, ld, ld_local, let_, st, st_local, ProgramBuilder, E,
};
pub use deps::{analyze_block, analyze_loop, DepKind, DepReport};
pub use display::{expr_to_string, kernel_to_string, program_to_string};
pub use expr::{BinOp, CmpOp, Expr, SpecialVar, UnOp};
pub use kernel::{
    AccDeviceType, DeviceTypeClause, GroupedBody, Kernel, KernelBody, LaunchHint, LoopClauses,
    ParallelLoop, ReduceOp, Reduction, RegionReduction,
};
pub use program::{Dir, HostStmt, Program};
pub use simplify::{
    narrowed_float, scalar_kind, simplify, simplify_block, simplify_block_in, simplify_in,
    simplify_kernel, simplify_kernel_in, value_kind, KindEnv, ValueKind,
};
pub use stmt::{Block, Stmt};
pub use types::{
    ArrayDecl, ArrayId, Intent, LocalArrayDecl, MemSpace, ParamDecl, ParamId, Scalar, VarId,
};
pub use validate::{validate, ValidationError};
