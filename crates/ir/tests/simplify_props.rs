//! Property tests for `simplify`: for random well-typed expression
//! trees, the simplified tree evaluates **bitwise-equal** to the
//! original under the engines' evaluation rules — including `-0.0`,
//! NaN payloads, infinities, i64 overflow, and the f32-narrowed float
//! path — and simplification is a fixpoint (running it twice changes
//! nothing).
//!
//! The reference evaluator below mirrors `paccport-devsim`'s
//! interpreter (`interp::bin`/`coerce`) with the conformance oracle's
//! trap discipline for the cases where the interpreter would panic:
//! division by zero, `i64::MIN / -1`, and shifts outside `0..64` are
//! `Err` (both engines reject or trap on them), and integer overflow
//! wraps (the engines' release-mode semantics, which the oracle makes
//! explicit with `wrapping_*`). Expressions that trap are skipped —
//! the exactness contract is conditional on the original evaluating.

use paccport_ir::{
    simplify_in, value_kind, BinOp, CmpOp, Expr, KindEnv, Scalar, UnOp, ValueKind, VarId,
};
use proptest::prelude::*;

// ---------------------------------------------------------------
// Reference evaluator (engine semantics, trap-as-Err)
// ---------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum V {
    I(i64),
    F(f64),
    B(bool),
}

fn as_f(v: V) -> f64 {
    match v {
        V::I(v) => v as f64,
        V::F(v) => v,
        V::B(v) => v as i64 as f64,
    }
}

fn as_i(v: V) -> i64 {
    match v {
        V::I(v) => v,
        V::F(v) => v as i64,
        V::B(v) => v as i64,
    }
}

fn as_b(v: V) -> bool {
    match v {
        V::I(v) => v != 0,
        V::F(v) => v != 0.0,
        V::B(v) => v,
    }
}

/// Bitwise value equality: floats compare by `to_bits`, so `-0.0`
/// differs from `+0.0` and NaN payloads must match exactly.
fn v_eq(a: V, b: V) -> bool {
    match (a, b) {
        (V::I(x), V::I(y)) => x == y,
        (V::B(x), V::B(y)) => x == y,
        (V::F(x), V::F(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

fn ebin(op: BinOp, a: V, b: V) -> Result<V, ()> {
    use BinOp::*;
    let float = matches!(a, V::F(_)) || matches!(b, V::F(_));
    match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            if float {
                let x = as_f(a) as f32;
                let y = as_f(b) as f32;
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Rem => x % y,
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                };
                Ok(V::F(r as f64))
            } else {
                let x = as_i(a);
                let y = as_i(b);
                Ok(V::I(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div | Rem => {
                        if y == 0 || (x == i64::MIN && y == -1) {
                            return Err(());
                        }
                        if matches!(op, Div) {
                            x / y
                        } else {
                            x % y
                        }
                    }
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                }))
            }
        }
        And => Ok(V::B(as_b(a) && as_b(b))),
        Or => Ok(V::B(as_b(a) || as_b(b))),
        Shl | Shr => {
            let y = as_i(b);
            if !(0..64).contains(&y) {
                return Err(());
            }
            let x = as_i(a);
            Ok(V::I(if matches!(op, Shl) { x << y } else { x >> y }))
        }
    }
}

fn ecmp(op: CmpOp, a: V, b: V) -> bool {
    let float = matches!(a, V::F(_)) || matches!(b, V::F(_));
    if float {
        let (x, y) = (as_f(a), as_f(b));
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        let (x, y) = (as_i(a), as_i(b));
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
}

fn eval(e: &Expr, vars: &[V]) -> Result<V, ()> {
    match e {
        Expr::IConst(v) => Ok(V::I(*v)),
        Expr::FConst(v) => Ok(V::F(*v)),
        Expr::BConst(v) => Ok(V::B(*v)),
        Expr::Var(id) => Ok(vars[id.0 as usize]),
        Expr::Un(op, a) => {
            let va = eval(a, vars)?;
            Ok(match op {
                UnOp::Neg => match va {
                    V::I(v) => V::I(v.wrapping_neg()),
                    other => V::F(-as_f(other)),
                },
                UnOp::Abs => match va {
                    V::I(v) => V::I(v.wrapping_abs()),
                    other => V::F(as_f(other).abs()),
                },
                UnOp::Rcp => V::F(1.0 / as_f(va)),
                UnOp::Sqrt => V::F(as_f(va).sqrt()),
                UnOp::Exp => V::F(as_f(va).exp()),
                UnOp::Not => V::B(!as_b(va)),
            })
        }
        Expr::Bin(op, a, b) => ebin(*op, eval(a, vars)?, eval(b, vars)?),
        Expr::Cmp(op, a, b) => Ok(V::B(ecmp(*op, eval(a, vars)?, eval(b, vars)?))),
        Expr::Fma(a, b, c) => {
            let x = as_f(eval(a, vars)?) as f32;
            let y = as_f(eval(b, vars)?) as f32;
            let z = as_f(eval(c, vars)?) as f32;
            Ok(V::F(x.mul_add(y, z) as f64))
        }
        // Lazy, like the interpreter: only the taken branch runs (and
        // only its traps count).
        Expr::Select(c, a, b) => {
            if as_b(eval(c, vars)?) {
                eval(a, vars)
            } else {
                eval(b, vars)
            }
        }
        Expr::Cast(ty, a) => {
            let v = eval(a, vars)?;
            Ok(match ty {
                Scalar::F32 => V::F(as_f(v) as f32 as f64),
                Scalar::F64 => V::F(as_f(v)),
                Scalar::I32 => V::I(as_i(v) as i32 as i64),
                Scalar::U32 => V::I(as_i(v) as u32 as i64),
                Scalar::Bool => V::B(as_b(v)),
            })
        }
        other => unreachable!("generator never emits {other:?}"),
    }
}

// ---------------------------------------------------------------
// Well-typed tree generator (splitmix64-driven)
// ---------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Interesting i64 values: identities, overflow edges, shift edges.
const INTS: &[i64] = &[
    0,
    1,
    -1,
    2,
    3,
    7,
    -8,
    63,
    64,
    i64::MAX,
    i64::MIN,
    i64::MIN + 1,
    1 << 31,
    (1 << 62) + 3,
    -12345,
];

/// f32-representable floats, stored widened to f64 (the narrowed set
/// the engines produce): signed zeros, infinities, a qNaN with a
/// nonzero payload, a subnormal.
fn f32_values() -> Vec<f64> {
    [
        0.0f32,
        -0.0,
        1.0,
        -1.0,
        1.5,
        -2.25,
        0.5,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::from_bits(0x7fc0_1234),
        f32::MIN_POSITIVE,
        f32::from_bits(0x0000_0007),
        3.0e38,
    ]
    .iter()
    .map(|&v| v as f64)
    .collect()
}

/// f64 values with no exact f32 representation (plus a few that have
/// one) — what an `F64` binding or a literal like `0.1` can hold.
fn f64_values() -> Vec<f64> {
    vec![
        0.1,
        -0.1,
        1e300,
        -1e300,
        1.0 + f64::EPSILON,
        0.0,
        -0.0,
        f64::INFINITY,
        f64::from_bits(0x7ff8_0000_00ab_cdef),
        2.5,
    ]
}

const V_INT0: VarId = VarId(0);
const V_INT1: VarId = VarId(1);
const V_F32: VarId = VarId(2);
const V_F64: VarId = VarId(3);
const V_BOOL0: VarId = VarId(4);
const V_BOOL1: VarId = VarId(5);

fn gen_leaf(kind: ValueKind, g: &mut Rng) -> Expr {
    match kind {
        ValueKind::Int => match g.below(3) {
            0 => Expr::var(V_INT0),
            1 => Expr::var(V_INT1),
            _ => Expr::iconst(INTS[g.below(INTS.len() as u64) as usize]),
        },
        ValueKind::Float => match g.below(4) {
            0 => Expr::var(V_F32),
            1 => Expr::var(V_F64),
            2 => {
                let t = f32_values();
                Expr::fconst(t[g.below(t.len() as u64) as usize])
            }
            _ => {
                let t = f64_values();
                Expr::fconst(t[g.below(t.len() as u64) as usize])
            }
        },
        ValueKind::Bool => match g.below(3) {
            0 => Expr::var(V_BOOL0),
            1 => Expr::var(V_BOOL1),
            _ => Expr::BConst(g.below(2) == 0),
        },
    }
}

fn any_kind(g: &mut Rng) -> ValueKind {
    match g.below(3) {
        0 => ValueKind::Int,
        1 => ValueKind::Float,
        _ => ValueKind::Bool,
    }
}

fn gen_expr(kind: ValueKind, depth: u32, g: &mut Rng) -> Expr {
    if depth == 0 || g.below(5) == 0 {
        return gen_leaf(kind, g);
    }
    let d = depth - 1;
    match kind {
        ValueKind::Int => match g.below(10) {
            0..=4 => {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Min,
                    BinOp::Max,
                ][g.below(7) as usize];
                Expr::bin(op, gen_expr(kind, d, g), gen_expr(kind, d, g))
            }
            5 => {
                let op = if g.below(2) == 0 {
                    BinOp::Shl
                } else {
                    BinOp::Shr
                };
                // Mostly in-range shift amounts so folds get exercised;
                // out-of-range ones trap and prune the case.
                let rhs = if g.below(3) == 0 {
                    gen_expr(kind, d, g)
                } else {
                    Expr::iconst(g.below(70) as i64 - 3)
                };
                Expr::bin(op, gen_expr(kind, d, g), rhs)
            }
            6 => {
                let op = if g.below(2) == 0 {
                    UnOp::Neg
                } else {
                    UnOp::Abs
                };
                Expr::un(op, gen_expr(kind, d, g))
            }
            7 => Expr::select(
                gen_expr(ValueKind::Bool, d, g),
                gen_expr(kind, d, g),
                gen_expr(kind, d, g),
            ),
            8 => {
                let ty = if g.below(2) == 0 {
                    Scalar::I32
                } else {
                    Scalar::U32
                };
                Expr::cast(ty, gen_expr(any_kind(g), d, g))
            }
            _ => gen_leaf(kind, g),
        },
        ValueKind::Float => match g.below(10) {
            0..=3 => {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Min,
                    BinOp::Max,
                ][g.below(7) as usize];
                // At least one float operand keeps the result on the
                // float path whatever the other side is.
                let (ka, kb) = match g.below(3) {
                    0 => (ValueKind::Float, ValueKind::Float),
                    1 => (ValueKind::Float, ValueKind::Int),
                    _ => (ValueKind::Int, ValueKind::Float),
                };
                Expr::bin(op, gen_expr(ka, d, g), gen_expr(kb, d, g))
            }
            4 => {
                let op = if g.below(2) == 0 {
                    UnOp::Neg
                } else {
                    UnOp::Abs
                };
                let operand = if g.below(5) == 0 {
                    // Neg/Abs of a boolean coerces to float.
                    gen_expr(ValueKind::Bool, d, g)
                } else {
                    gen_expr(ValueKind::Float, d, g)
                };
                Expr::un(op, operand)
            }
            5 => {
                let op = [UnOp::Rcp, UnOp::Sqrt, UnOp::Exp][g.below(3) as usize];
                Expr::un(op, gen_expr(any_kind(g), d, g))
            }
            6 => Expr::fma(
                gen_expr(any_kind(g), d, g),
                gen_expr(any_kind(g), d, g),
                gen_expr(any_kind(g), d, g),
            ),
            7 => Expr::select(
                gen_expr(ValueKind::Bool, d, g),
                gen_expr(kind, d, g),
                gen_expr(kind, d, g),
            ),
            8 => {
                let ty = if g.below(2) == 0 {
                    Scalar::F32
                } else {
                    Scalar::F64
                };
                Expr::cast(ty, gen_expr(any_kind(g), d, g))
            }
            _ => gen_leaf(kind, g),
        },
        ValueKind::Bool => match g.below(8) {
            0..=2 => {
                let op = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ][g.below(6) as usize];
                let (ka, kb) = match g.below(4) {
                    0 => (ValueKind::Int, ValueKind::Int),
                    1 => (ValueKind::Float, ValueKind::Float),
                    2 => (ValueKind::Int, ValueKind::Float),
                    _ => (ValueKind::Bool, ValueKind::Bool),
                };
                Expr::cmp(op, gen_expr(ka, d, g), gen_expr(kb, d, g))
            }
            3 => {
                let op = if g.below(2) == 0 {
                    BinOp::And
                } else {
                    BinOp::Or
                };
                // And/Or coerce any operand kind through `as_b`.
                Expr::bin(op, gen_expr(any_kind(g), d, g), gen_expr(any_kind(g), d, g))
            }
            4 => Expr::un(UnOp::Not, gen_expr(any_kind(g), d, g)),
            5 => Expr::select(
                gen_expr(kind, d, g),
                gen_expr(kind, d, g),
                gen_expr(kind, d, g),
            ),
            6 => Expr::cast(Scalar::Bool, gen_expr(any_kind(g), d, g)),
            _ => gen_leaf(kind, g),
        },
    }
}

/// The kind environment matching the generator's variable conventions:
/// two `I32` ints, one narrowed `F32` float, one wide `F64` float, two
/// bools — modelling `Let` bindings with those declared types.
fn test_env() -> KindEnv {
    let mut env = KindEnv::new();
    env.set_var_scalar(V_INT0, Scalar::I32);
    env.set_var_scalar(V_INT1, Scalar::I32);
    env.set_var_scalar(V_F32, Scalar::F32);
    env.set_var_scalar(V_F64, Scalar::F64);
    env.set_var_scalar(V_BOOL0, Scalar::Bool);
    env.set_var_scalar(V_BOOL1, Scalar::Bool);
    env
}

/// Variable values consistent with `test_env`: the `F32` variable only
/// ever holds widened-f32 values (a `Let` with type `F32` coerces
/// through f32), the `F64` one anything.
fn test_vars(g: &mut Rng) -> Vec<V> {
    let f32s = f32_values();
    let f64s = f64_values();
    vec![
        V::I(INTS[g.below(INTS.len() as u64) as usize]),
        V::I(INTS[g.below(INTS.len() as u64) as usize]),
        V::F(f32s[g.below(f32s.len() as u64) as usize]),
        V::F(f64s[g.below(f64s.len() as u64) as usize]),
        V::B(g.below(2) == 0),
        V::B(g.below(2) == 0),
    ]
}

/// Structural equality with floats compared by bits: the derived
/// `PartialEq` on `Expr` says `FConst(NaN) != FConst(NaN)`, which
/// would fail the fixpoint check on trees simplify never touched.
fn expr_eq_bits(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::FConst(x), Expr::FConst(y)) => x.to_bits() == y.to_bits(),
        (Expr::IConst(x), Expr::IConst(y)) => x == y,
        (Expr::BConst(x), Expr::BConst(y)) => x == y,
        (Expr::Var(x), Expr::Var(y)) => x == y,
        (Expr::Un(o1, a1), Expr::Un(o2, a2)) => o1 == o2 && expr_eq_bits(a1, a2),
        (Expr::Bin(o1, a1, b1), Expr::Bin(o2, a2, b2)) => {
            o1 == o2 && expr_eq_bits(a1, a2) && expr_eq_bits(b1, b2)
        }
        (Expr::Cmp(o1, a1, b1), Expr::Cmp(o2, a2, b2)) => {
            o1 == o2 && expr_eq_bits(a1, a2) && expr_eq_bits(b1, b2)
        }
        (Expr::Fma(a1, b1, c1), Expr::Fma(a2, b2, c2)) => {
            expr_eq_bits(a1, a2) && expr_eq_bits(b1, b2) && expr_eq_bits(c1, c2)
        }
        (Expr::Select(c1, a1, b1), Expr::Select(c2, a2, b2)) => {
            expr_eq_bits(c1, c2) && expr_eq_bits(a1, a2) && expr_eq_bits(b1, b2)
        }
        (Expr::Cast(t1, a1), Expr::Cast(t2, a2)) => t1 == t2 && expr_eq_bits(a1, a2),
        _ => false,
    }
}

fn runtime_kind(v: V) -> ValueKind {
    match v {
        V::I(_) => ValueKind::Int,
        V::F(_) => ValueKind::Float,
        V::B(_) => ValueKind::Bool,
    }
}

// ---------------------------------------------------------------
// Properties
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3000))]

    /// `simplify_in(e)` evaluates bitwise-equal to `e` whenever `e`
    /// evaluates at all, and the static kind analysis agrees with the
    /// runtime value class.
    #[test]
    fn simplify_is_bitwise_exact(seed in 0u64..u64::MAX) {
        let mut g = Rng(seed);
        let kind = any_kind(&mut g);
        let depth = 1 + g.below(4) as u32;
        let e = gen_expr(kind, depth, &mut g);
        let vars = test_vars(&mut g);
        let env = test_env();

        if let Ok(v0) = eval(&e, &vars) {
            if let Some(k) = value_kind(&e, &env) {
                prop_assert_eq!(k, runtime_kind(v0),
                    "static kind disagrees with runtime for {:?}", &e);
            }
            let s = simplify_in(&e, &env);
            let v1 = eval(&s, &vars);
            prop_assert!(v1.is_ok(),
                "simplification introduced a trap: {:?} -> {:?}", &e, &s);
            prop_assert!(v_eq(v0, v1.unwrap()),
                "{:?} = {:?} but simplified {:?} = {:?}", &e, v0, &s, v1);
        }
    }

    /// Simplification reaches a fixpoint in one application: running
    /// it a second time changes nothing. (The pass pipeline relies on
    /// this to terminate.)
    #[test]
    fn simplify_is_idempotent(seed in 0u64..u64::MAX) {
        let mut g = Rng(seed);
        let kind = any_kind(&mut g);
        let depth = 1 + g.below(4) as u32;
        let e = gen_expr(kind, depth, &mut g);
        let env = test_env();

        let once = simplify_in(&e, &env);
        let twice = simplify_in(&once, &env);
        prop_assert!(expr_eq_bits(&twice, &once),
            "not a fixpoint: {:?} -> {:?} -> {:?}", &e, &once, &twice);
    }

    /// With no kind information at all, only universally-exact folds
    /// may fire — exactness must hold for *any* runtime class the
    /// free variables take (ints here, floats and bools by kind-gate).
    #[test]
    fn untyped_simplify_is_exact_for_integer_vars(seed in 0u64..u64::MAX) {
        let mut g = Rng(seed);
        let e = gen_expr(ValueKind::Int, 1 + g.below(4) as u32, &mut g);
        let vars = test_vars(&mut g);

        if let Ok(v0) = eval(&e, &vars) {
            let s = simplify_in(&e, &KindEnv::new());
            let v1 = eval(&s, &vars);
            prop_assert!(v1.is_ok(),
                "simplification introduced a trap: {:?} -> {:?}", &e, &s);
            prop_assert!(v_eq(v0, v1.unwrap()),
                "{:?} = {:?} but simplified {:?} = {:?}", &e, v0, &s, v1);
        }
    }
}
