//! ASCII renderers for the experiment data structures — what the
//! `reproduce` binary prints and `EXPERIMENTS.md` records.

use crate::experiments::Table7Row;
use crate::ppr::PprComparison;
use crate::ptxcmp::{composition_line, PtxFigure};
use crate::study::ElapsedFigure;
use std::fmt::Write;

fn hline(out: &mut String, width: usize) {
    for _ in 0..width {
        out.push('-');
    }
    out.push('\n');
}

/// Human-readable seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Render an elapsed-time figure as a series × variant matrix.
pub fn render_elapsed(f: &ElapsedFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", f.title, f.id);
    let variants = f.variants();
    let _ = write!(out, "{:<22}", "series \\ variant");
    for v in &variants {
        let _ = write!(out, "{v:>16}");
    }
    out.push('\n');
    hline(&mut out, 22 + 16 * variants.len());
    for s in f.series() {
        let _ = write!(out, "{s:<22}");
        for v in &variants {
            match f.get(&s, v) {
                Some(m) => {
                    let _ = write!(out, "{:>16}", fmt_secs(m.seconds));
                }
                None if f.failure(&s, v).is_some() => {
                    let _ = write!(out, "{:>16}", "FAILED");
                }
                None => {
                    let _ = write!(out, "{:>16}", "-");
                }
            }
        }
        out.push('\n');
        // Thread-configuration row, as under the paper's bars.
        let _ = write!(out, "{:<22}", "  (threads)");
        for v in &variants {
            match f.get(&s, v) {
                Some(m) => {
                    let _ = write!(out, "{:>16}", m.config);
                }
                None => {
                    let _ = write!(out, "{:>16}", "");
                }
            }
        }
        out.push('\n');
    }
    // Quarantined cells, spelled out. Absent entirely on clean runs,
    // so fault-free reports are byte-identical to the pre-chaos path.
    for fail in &f.failures {
        let _ = writeln!(out, "  {}/{} {}", fail.series, fail.variant, fail);
    }
    out
}

/// Render the fault ledger: the chaos configuration, every injected
/// fault event, and every quarantined job. Both sets are pure
/// functions of (spec, seed) — see `paccport-faults` — so this renders
/// byte-identically across runs and job counts.
pub fn render_fault_ledger(quarantined: &[crate::engine::QuarantineRecord]) -> String {
    let mut out = String::new();
    let Some((spec, seed)) = paccport_faults::config_summary() else {
        return out;
    };
    let _ = writeln!(
        out,
        "== Fault ledger: --inject {spec} --fault-seed {seed} [faults] =="
    );
    let events = paccport_faults::ledger();
    let _ = writeln!(out, "{} fault(s) injected:", events.len());
    for e in &events {
        let _ = writeln!(
            out,
            "  {:<14}{} (attempt {})",
            e.kind.tag(),
            e.key,
            e.attempt
        );
    }
    if quarantined.is_empty() {
        let _ = writeln!(out, "0 job(s) quarantined: every fault was retried away");
    } else {
        let _ = writeln!(out, "{} job(s) quarantined:", quarantined.len());
        for q in quarantined {
            let _ = writeln!(
                out,
                "  {}: {} [{} attempts{}]",
                q.label,
                q.reason,
                q.attempts,
                if q.injected { "" } else { ", NOT injected" }
            );
        }
    }
    out
}

/// Render a PTX-composition figure.
pub fn render_ptx(f: &PtxFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", f.title, f.id);
    let _ = writeln!(
        out,
        "{:<34}{:>8}{:>8}  composition (A=arith FC=flow LS=logic DM=datamov GM=global SM=shared S=sync)",
        "version", "total", "threads"
    );
    hline(&mut out, 110);
    for b in &f.bars {
        let _ = writeln!(
            out,
            "{:<34}{:>8}{:>8}  {}",
            b.label,
            b.counts.total_plotted(),
            b.config,
            composition_line(&b.counts)
        );
        let _ = writeln!(
            out,
            "{:<34}        memcpy H-D {}  D-H {}  kernel launches {}",
            "", b.memcpy_h2d, b.memcpy_d2h, b.launches
        );
    }
    out
}

/// Render the Fig.-16 PPR bars.
pub fn render_ppr(rows: &[PprComparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== PPR across GPU and MIC (Eq. 1; lower is better) [fig16] =="
    );
    let _ = writeln!(
        out,
        "{:<10}{:>22}{:>22}{:>26}",
        "benchmark", "OpenACC (CAPS) PPR", "OpenCL PPR", "OpenACC more portable?"
    );
    hline(&mut out, 80);
    for c in rows {
        let _ = writeln!(
            out,
            "{:<10}{:>22.2}{:>22.2}{:>26}",
            c.openacc.benchmark,
            c.openacc.ppr(),
            c.opencl.ppr(),
            if c.openacc_is_more_portable() {
                "yes"
            } else {
                "no"
            }
        );
    }
    out
}

/// Render Table VII.
pub fn render_tab7(rows: &[Table7Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table VII: BFS execution modes and data transfers =="
    );
    let _ = writeln!(
        out,
        "{:<8}{:<20}{:<20}{:<30}",
        "", "Default modes", "With independent", "Data transfers"
    );
    hline(&mut out, 78);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8}{:<20}{:<20}{:<30}",
            r.compiler, r.default_mode, r.with_independent_mode, r.data_transfers
        );
    }
    out
}

/// Render the `--check` soundness table: one line per (benchmark,
/// variant, kernel, loop level), aggregated across the targets that
/// ran it, followed by the lost-update demonstrations and a verdict.
pub fn render_soundness(rep: &crate::soundness::SoundnessReport) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Soundness: static dependence analysis vs dynamic race detector [check] =="
    );
    let _ = writeln!(
        out,
        "{:<10}{:<30}{:<18}{:>2} {:>6}{:>7}  static verdict / status",
        "benchmark", "variant", "kernel", "L", "cells", "races"
    );
    hline(&mut out, 118);

    // (benchmark, variant, kernel, level) -> (cells, races, verdict,
    // proven, all-consistent). The static verdict only depends on the
    // source program, so it is identical across a group's targets.
    #[allow(clippy::type_complexity)]
    let mut groups: BTreeMap<
        (String, String, String, usize),
        (usize, usize, String, bool, bool),
    > = BTreeMap::new();
    for r in rep.rows.iter().filter(|r| !r.lost_update_demo) {
        let g = groups
            .entry((
                r.benchmark.clone(),
                r.variant.clone(),
                r.kernel.clone(),
                r.level,
            ))
            .or_insert((0, 0, r.verdict.clone(), r.proven_independent, true));
        g.0 += 1;
        g.1 += r.races;
        g.4 &= r.consistent;
    }
    for ((bench, variant, kernel, level), (cells, races, verdict, proven, ok)) in &groups {
        let status = if !ok {
            "VIOLATION"
        } else if *proven {
            "independent, race-free"
        } else {
            "not asserted"
        };
        let _ = writeln!(
            out,
            "{bench:<10}{variant:<30}{kernel:<18}{level:>2} {cells:>6}{races:>7}  {status}: {verdict}"
        );
    }

    let demos: Vec<_> = rep.rows.iter().filter(|r| r.lost_update_demo).collect();
    if !demos.is_empty() {
        let _ = writeln!(
            out,
            "\nknown-wrong plans, demonstrated via their effective lowering:"
        );
        let mut seen = Vec::new();
        for d in demos {
            let key = (&d.benchmark, &d.variant, &d.kernel, &d.series);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let _ = writeln!(
                out,
                "  {} {} / {} -> {}",
                d.benchmark,
                d.variant,
                d.series,
                if d.races > 0 {
                    d.race_note.as_str()
                } else {
                    "NOT CAUGHT"
                }
            );
        }
    }

    let _ = writeln!(
        out,
        "\n{} cells checked, {} shadow-logged accesses, {} loop levels",
        rep.cells,
        rep.accesses,
        groups.len()
    );
    for f in &rep.failures {
        let _ = writeln!(out, "cell FAILED: {f}");
    }
    if rep.all_consistent() {
        let _ = writeln!(
            out,
            "soundness invariant holds: every statically-independent loop ran race-free{}",
            if rep.lost_update_caught() {
                ", and every known-wrong reduction plan was caught as a write-write race"
            } else {
                ""
            }
        );
        if !rep.failures.is_empty() {
            let _ = writeln!(
                out,
                "({} cell(s) quarantined by injected faults; see the fault ledger)",
                rep.failures.len()
            );
        }
    } else {
        let _ = writeln!(
            out,
            "SOUNDNESS VIOLATIONS: {} row(s), {} genuinely failed cell(s)",
            rep.violations().len(),
            rep.uninjected_failures().len()
        );
    }
    out
}

/// Render Table I.
pub fn render_tab1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: Compiler flags used in the method ==");
    let _ = writeln!(out, "{:<36}{:<10}Usage", "Flags", "Compilers");
    hline(&mut out, 86);
    for row in paccport_compilers::flags::table1() {
        let _ = writeln!(out, "{:<36}{:<10}{}", row.flag, row.compiler, row.usage);
    }
    out
}

/// Render Table III.
pub fn render_tab3() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table III: Parallelism across programming models =="
    );
    let _ = writeln!(
        out,
        "{:<10}{:<10}{:<10}{:<16}{:<12}",
        "OpenACC", "CAPS", "PGI", "CUDA", "OpenCL"
    );
    hline(&mut out, 58);
    for r in paccport_compilers::mapping::table3() {
        let _ = writeln!(
            out,
            "{:<10}{:<10}{:<10}{:<16}{:<12}",
            r.openacc, r.caps, r.pgi, r.cuda, r.opencl
        );
    }
    out
}

/// Render Table IV.
pub fn render_tab4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table IV: The four kernel benchmarks ==");
    let _ = writeln!(
        out,
        "{:<22}{:<24}{:<22}{:<12}",
        "Kernels", "Dwarves", "Domains", "Input Size"
    );
    hline(&mut out, 80);
    for r in paccport_kernels::table4() {
        let _ = writeln!(
            out,
            "{:<22}{:<24}{:<22}{:<12}",
            r.kernel, r.dwarf, r.domain, r.input_size
        );
    }
    out
}

/// Render Table V.
pub fn render_tab5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table V: PTX instruction categories ==");
    use paccport_ptx::{Opcode, CATEGORIES};
    let all = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Max,
        Opcode::Min,
        Opcode::Fma,
        Opcode::Mad,
        Opcode::Rcp,
        Opcode::Abs,
        Opcode::Neg,
        Opcode::Setp,
        Opcode::Selp,
        Opcode::Bra,
        Opcode::Or,
        Opcode::Not,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Cvt,
        Opcode::Mov,
        Opcode::LdParam,
        Opcode::CvtaToGlobal,
        Opcode::LdGlobal,
        Opcode::StGlobal,
        Opcode::LdShared,
        Opcode::StShared,
    ];
    for cat in CATEGORIES {
        let ops: Vec<&str> = all
            .iter()
            .filter(|o| o.category() == cat)
            .map(|o| o.mnemonic())
            .collect();
        if !ops.is_empty() {
            let _ = writeln!(out, "{:<16}{}", cat.label(), ops.join(", "));
        }
    }
    out
}

/// Render Table VI.
pub fn render_tab6(input_size: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table VI: Default thread distributions (input size {input_size}) =="
    );
    let _ = writeln!(
        out,
        "{:<10}{:<14}{:<28}{:<14}",
        "Compilers", "Modes", "Grid Size", "Block Size"
    );
    hline(&mut out, 66);
    for r in paccport_compilers::mapping::table6(input_size) {
        let _ = writeln!(
            out,
            "{:<10}{:<14}{:<28}{:<14}",
            r.compiler, r.mode, r.grid, r.block
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(123.4), "123 s");
        assert_eq!(fmt_secs(1.5), "1.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(12e-6), "12.0 us");
    }

    #[test]
    fn static_tables_render() {
        assert!(render_tab1().contains("-Munroll"));
        assert!(render_tab3().contains("Thread block"));
        assert!(render_tab4().contains("Graph Traversal"));
        assert!(render_tab5().contains("cvta.to.global"));
        assert!(render_tab6(4096).contains("[32,4,1]"));
    }
}
