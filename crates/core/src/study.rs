//! Study orchestration: scales, measurement points and the helpers
//! every figure generator shares.

use paccport_compilers::{compile, ArtifactCache, CompileOptions, CompilerId};
use paccport_devsim::{run, RunConfig};
use paccport_ptx::CategoryCounts;
use serde::{Deserialize, Serialize};

/// Input sizes for the whole study.
///
/// `paper()` uses Table IV's sizes (evaluated through the timing
/// model); `quick()` is small enough for functional validation and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    pub lud_n: usize,
    pub ge_n: usize,
    pub bfs_n: usize,
    pub bfs_avg_degree: usize,
    pub bfs_levels: u32,
    pub bp_in: usize,
    pub bp_hid: usize,
    pub hydro_n: usize,
    pub hydro_steps: usize,
}

impl Scale {
    /// Table IV: 4K matrix, 8K matrix, 32M nodes, 20M-unit layer.
    pub fn paper() -> Self {
        Scale {
            lud_n: 4096,
            ge_n: 8192,
            bfs_n: 32_000_000,
            bfs_avg_degree: 4,
            bfs_levels: 14,
            bp_in: 20_000_000,
            bp_hid: 16,
            hydro_n: 1024,
            hydro_steps: 4,
        }
    }

    /// Smallest sizes that still exercise every kernel: what the
    /// functional soundness check (`reproduce --check`) interprets
    /// instruction-by-instruction under the race detector.
    pub fn smoke() -> Self {
        Scale {
            lud_n: 32,
            ge_n: 32,
            bfs_n: 120,
            bfs_avg_degree: 3,
            bfs_levels: 10,
            bp_in: 96,
            bp_hid: 16,
            hydro_n: 16,
            hydro_steps: 1,
        }
    }

    /// CI-friendly sizes with the same qualitative behaviour.
    pub fn quick() -> Self {
        Scale {
            lud_n: 512,
            ge_n: 512,
            bfs_n: 500_000,
            bfs_avg_degree: 4,
            bfs_levels: 10,
            bp_in: 200_000,
            bp_hid: 16,
            hydro_n: 128,
            hydro_steps: 2,
        }
    }
}

/// One measured configuration of one benchmark version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measured {
    /// e.g. "CAPS-CUDA-K40", "OCL-5110P".
    pub series: String,
    /// e.g. "Base", "Indep", "Dist(256,16)".
    pub variant: String,
    pub seconds: f64,
    pub kernel_seconds: f64,
    pub transfer_seconds: f64,
    /// Thread-configuration label of the dominant kernel.
    pub config: String,
    /// Static PTX counts summed over the module.
    pub counts: CategoryCounts,
    pub h2d: u64,
    pub d2h: u64,
    pub launches: u64,
    /// Whether every kernel actually ran on the accelerator.
    pub on_device: bool,
    /// Frontier-loop iterations (BFS; 0 elsewhere).
    pub while_iterations: u64,
    /// Average transfers per frontier iteration (Table VII).
    pub transfers_per_while_iter: f64,
    /// Transfers outside the frontier loop (Table VII's "in total").
    pub transfers_outside_while: u64,
}

impl Measured {
    /// Table VII-style execution-mode label.
    pub fn exec_mode(&self) -> &'static str {
        if !self.on_device {
            "Host (sequential)"
        } else if self.config == "1x1" {
            "Sequential mode"
        } else {
            "Parallel mode"
        }
    }
}

/// One cell of an experiment matrix: everything needed to produce a
/// [`Measured`] point, owned so cells can move across worker threads.
/// Built by the figure generators in `experiments`, executed by
/// [`crate::engine::Engine::measure_matrix`].
#[derive(Debug, Clone)]
pub struct CellSpec {
    pub series: String,
    pub variant: String,
    pub compiler: CompilerId,
    pub options: CompileOptions,
    pub program: paccport_ir::Program,
    pub cfg: RunConfig,
}

impl CellSpec {
    pub fn new(
        series: impl Into<String>,
        variant: impl Into<String>,
        compiler: CompilerId,
        options: CompileOptions,
        program: paccport_ir::Program,
        cfg: RunConfig,
    ) -> Self {
        CellSpec {
            series: series.into(),
            variant: variant.into(),
            compiler,
            options,
            program,
            cfg,
        }
    }
}

/// Compile and run one program, collecting a [`Measured`] point.
pub fn measure(
    series: &str,
    variant: &str,
    compiler: CompilerId,
    options: &CompileOptions,
    program: &paccport_ir::Program,
    cfg: &RunConfig,
) -> Result<Measured, String> {
    let c = compile(compiler, program, options).map_err(|e| e.to_string())?;
    measure_compiled(series, variant, &c, cfg)
}

/// Like [`measure`], but compiling through a shared [`ArtifactCache`]
/// so identical (program, options, device) artifacts are built once
/// across the whole experiment matrix.
pub fn measure_cached(
    cache: &ArtifactCache,
    series: &str,
    variant: &str,
    compiler: CompilerId,
    options: &CompileOptions,
    program: &paccport_ir::Program,
    cfg: &RunConfig,
) -> Result<Measured, String> {
    let c = cache
        .compile(compiler, program, options)
        .map_err(|e| e.to_string())?;
    measure_compiled(series, variant, &c, cfg)
}

/// The run-and-collect half shared by the serial and cached paths.
fn measure_compiled(
    series: &str,
    variant: &str,
    c: &paccport_compilers::CompiledProgram,
    cfg: &RunConfig,
) -> Result<Measured, String> {
    let r = run(c, cfg)?;
    // Dominant kernel: the one with the most device time.
    let dominant = r
        .kernel_stats
        .iter()
        .max_by(|a, b| a.device_time.total_cmp(&b.device_time));
    Ok(Measured {
        series: series.into(),
        variant: variant.into(),
        seconds: r.elapsed,
        kernel_seconds: r.kernel_time,
        transfer_seconds: r.transfer_time_s,
        config: dominant.map(|d| d.config_label.clone()).unwrap_or_default(),
        counts: c.module.counts(),
        h2d: r.transfers.h2d_count,
        d2h: r.transfers.d2h_count,
        launches: r.kernel_stats.iter().map(|s| s.launches).sum(),
        on_device: r.kernel_stats.iter().all(|s| s.ran_on_device),
        while_iterations: r.while_iterations,
        transfers_per_while_iter: r.transfers_per_while_iter,
        transfers_outside_while: r.transfers_outside_while,
    })
}

/// A cell that exhausted its retries and was quarantined: the figure
/// completes with partial results and renders this as an explicit
/// `FAILED(reason, attempts)` entry instead of dying.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    pub series: String,
    pub variant: String,
    /// Final error (or panic message). Injected faults carry the
    /// `paccport_faults::INJECTED` marker.
    pub reason: String,
    pub attempts: u32,
    pub injected: bool,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FAILED({}, {} attempts)", self.reason, self.attempts)
    }
}

/// A figure of elapsed-time bars: series × variants, plus the cells
/// that failed out of the matrix (graceful degradation: a figure with
/// quarantined cells still renders everything that succeeded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElapsedFigure {
    pub id: String,
    pub title: String,
    pub points: Vec<Measured>,
    pub failures: Vec<CellFailure>,
    /// Every (series, variant) pair in matrix submission order —
    /// successes and failures alike — so grid layout is stable no
    /// matter which cells were quarantined.
    pub order: Vec<(String, String)>,
}

impl ElapsedFigure {
    pub fn get(&self, series: &str, variant: &str) -> Option<&Measured> {
        self.points
            .iter()
            .find(|m| m.series == series && m.variant == variant)
    }

    /// The failure record for a quarantined cell, if any.
    pub fn failure(&self, series: &str, variant: &str) -> Option<&CellFailure> {
        self.failures
            .iter()
            .find(|f| f.series == series && f.variant == variant)
    }

    /// All distinct series labels in matrix order (failed cells
    /// included, so a quarantined series still appears in the grid).
    pub fn series(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in self.label_stream(|o| &o.0, |m| &m.series, |f| &f.series) {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// All distinct variant labels in matrix order (failed cells
    /// included).
    pub fn variants(&self) -> Vec<String> {
        let mut out = Vec::new();
        for v in self.label_stream(|o| &o.1, |m| &m.variant, |f| &f.variant) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Labels in `order` when recorded, otherwise points then
    /// failures (hand-built figures without an explicit order).
    fn label_stream<'a>(
        &'a self,
        from_order: impl Fn(&'a (String, String)) -> &'a String + 'a,
        from_point: impl Fn(&'a Measured) -> &'a String + 'a,
        from_failure: impl Fn(&'a CellFailure) -> &'a String + 'a,
    ) -> Box<dyn Iterator<Item = String> + 'a> {
        if self.order.is_empty() {
            Box::new(
                self.points
                    .iter()
                    .map(from_point)
                    .chain(self.failures.iter().map(from_failure))
                    .cloned(),
            )
        } else {
            Box::new(self.order.iter().map(from_order).cloned())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_kernels::{lud, VariantCfg};

    #[test]
    fn measure_produces_complete_points() {
        let p = lud::program(&VariantCfg::thread_dist(256, 16));
        let cfg = RunConfig::timing(vec![("n".into(), 256.0)], 1);
        let m = measure(
            "CAPS-CUDA-K40",
            "Dist(256,16)",
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &p,
            &cfg,
        )
        .unwrap();
        assert!(m.seconds > 0.0);
        assert_eq!(m.config, "256x16");
        assert!(m.counts.total() > 0);
        assert_eq!(m.launches, 2 * 256);
        assert!(m.on_device);
    }

    #[test]
    fn figure_lookup() {
        let mk = |s: &str, v: &str| Measured {
            series: s.into(),
            variant: v.into(),
            seconds: 1.0,
            kernel_seconds: 1.0,
            transfer_seconds: 0.0,
            config: "1x1".into(),
            counts: CategoryCounts::default(),
            h2d: 0,
            d2h: 0,
            launches: 0,
            on_device: true,
            while_iterations: 0,
            transfers_per_while_iter: 0.0,
            transfers_outside_while: 0,
        };
        let f = ElapsedFigure {
            id: "fig3".into(),
            title: "t".into(),
            points: vec![mk("A", "Base"), mk("A", "Opt"), mk("B", "Base")],
            failures: Vec::new(),
            order: Vec::new(),
        };
        assert!(f.get("A", "Opt").is_some());
        assert!(f.get("B", "Opt").is_none());
        assert_eq!(f.series(), vec!["A", "B"]);
        assert_eq!(f.variants(), vec!["Base", "Opt"]);
    }

    #[test]
    fn scales_are_ordered() {
        let p = Scale::paper();
        let q = Scale::quick();
        assert!(p.lud_n > q.lud_n);
        assert_eq!(p.lud_n, 4096);
        assert_eq!(p.ge_n, 8192);
        assert_eq!(p.bfs_n, 32_000_000);
    }
}
