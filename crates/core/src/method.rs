//! The paper's primary contribution: the four-step systematic
//! hand-written optimization method (Section III).
//!
//! 1. **Add `independent` directives** — only where a conservative
//!    dependence analysis agrees (exactly why LUD never receives them
//!    in the paper, Section V-A1);
//! 2. **Thread distribution** — explicit gang/worker clauses (CAPS
//!    gang mode / PGI without `independent`), or the gridify defaults
//!    once `independent` is present; [`select_portable_distribution`]
//!    searches the Fig.-4 heat maps for the best cross-device config;
//! 3. **Unrolling loops** — the HMPP `unroll(n), jam` directive
//!    (CAPS) / `-Munroll` (PGI, applied at compile time);
//! 4. **Tiling** — the OpenACC 2.0 `tile(n)` clause (CAPS only).
//!
//! Every step records what it did *and why*, because half the paper's
//! insight is in the refusals.

use paccport_ir::{analyze_loop, DepKind, Program};
use serde::{Deserialize, Serialize};

/// What one step did to one loop/kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepAction {
    AddedIndependent {
        kernel: String,
        level: usize,
    },
    RefusedIndependent {
        kernel: String,
        level: usize,
        reason: String,
    },
    SetDistribution {
        kernel: String,
        gang: u32,
        worker: u32,
    },
    RequestedUnroll {
        kernel: String,
        factor: u32,
    },
    RequestedTile {
        kernel: String,
        size: u32,
    },
}

/// Requested manual knobs for steps 2–4 (step 1 is automatic, plus
/// the programmer's overriding judgment).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MethodOptions {
    /// Kernels whose loops the programmer asserts independent even
    /// when the conservative analysis cannot prove it — the paper's
    /// actual workflow for GE and BFS (humans reviewed the refusals
    /// and vouched from domain knowledge). Loops with *proven* carried
    /// dependences are still refused.
    pub programmer_asserts: Vec<String>,
    /// Step 2: explicit `(gang, worker)` clauses.
    pub distribution: Option<(u32, u32)>,
    /// Step 3: `unroll(n), jam`.
    pub unroll: Option<u32>,
    /// Step 4: `tile(n)`.
    pub tile: Option<u32>,
}

/// The optimized program plus the audit trail.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    pub program: Program,
    pub actions: Vec<StepAction>,
}

impl OptimizationOutcome {
    /// Did step 1 add `independent` anywhere?
    pub fn any_independent_added(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, StepAction::AddedIndependent { .. }))
    }

    /// All refusals, for the report.
    pub fn refusals(&self) -> Vec<&StepAction> {
        self.actions
            .iter()
            .filter(|a| matches!(a, StepAction::RefusedIndependent { .. }))
            .collect()
    }
}

/// The human-readable refusal reason for one dependence, shared by
/// step 1's audit trail and the `reproduce --check` soundness table
/// (so both report the same wording for the same hazard).
pub fn dep_reason(d: &DepKind) -> String {
    match d {
        DepKind::Carried { array, distance } => {
            format!(
                "carried dependence on array {} (distance {distance})",
                array.0
            )
        }
        DepKind::Unknown { array, reason } => {
            format!("unanalyzable access to array {} ({reason})", array.0)
        }
    }
}

/// Apply the systematic method to a program.
pub fn apply_method(program: &Program, opts: &MethodOptions) -> OptimizationOutcome {
    let mut p = program.clone();
    let mut actions = Vec::new();

    // ---------------- Step 1: independent ----------------
    // Analyze on the original program, then set clauses.
    let mut independents: Vec<(String, usize)> = Vec::new();
    for k in program.kernels() {
        for level in 0..k.loops.len() {
            let rep = analyze_loop(k, level);
            let vouched = opts.programmer_asserts.contains(&k.name);
            if rep.is_independent() || (vouched && rep.only_unknown()) {
                independents.push((k.name.clone(), level));
                actions.push(StepAction::AddedIndependent {
                    kernel: k.name.clone(),
                    level,
                });
            } else {
                let reason = rep
                    .deps
                    .iter()
                    .map(dep_reason)
                    .collect::<Vec<_>>()
                    .join("; ");
                actions.push(StepAction::RefusedIndependent {
                    kernel: k.name.clone(),
                    level,
                    reason,
                });
            }
        }
    }
    p.map_kernels(|k| {
        for (level, lp) in k.loops.iter_mut().enumerate() {
            if independents
                .iter()
                .any(|(n, l)| *n == k.name && *l == level)
            {
                lp.clauses.independent = true;
            }
        }
    });

    // ---------------- Step 2: thread distribution ----------------
    if let Some((gang, worker)) = opts.distribution {
        let mut names = Vec::new();
        p.map_kernels(|k| {
            // Explicit clauses only help kernels that gridify cannot
            // reach (no `independent`); setting them elsewhere would
            // be ignored by PGI anyway (Section III-A).
            if !k.any_independent() {
                for lp in &mut k.loops {
                    lp.clauses.gang = Some(gang);
                    lp.clauses.worker = Some(worker);
                }
                names.push(k.name.clone());
            }
        });
        for kernel in names {
            actions.push(StepAction::SetDistribution {
                kernel,
                gang,
                worker,
            });
        }
    }

    // ---------------- Step 3: unroll ----------------
    if let Some(f) = opts.unroll {
        let mut names = Vec::new();
        p.map_kernels(|k| {
            if let Some(lp) = k.loops.first_mut() {
                lp.clauses.unroll_jam = Some(f);
            }
            names.push(k.name.clone());
        });
        for kernel in names {
            actions.push(StepAction::RequestedUnroll { kernel, factor: f });
        }
    }

    // ---------------- Step 4: tile ----------------
    if let Some(t) = opts.tile {
        let mut names = Vec::new();
        p.map_kernels(|k| {
            if let Some(lp) = k.loops.first_mut() {
                lp.clauses.tile = Some(t);
            }
            names.push(k.name.clone());
        });
        for kernel in names {
            actions.push(StepAction::RequestedTile { kernel, size: t });
        }
    }

    OptimizationOutcome {
        program: p,
        actions,
    }
}

/// Search the gang × worker space on GPU *and* MIC and pick the
/// configuration with the best worst-case (normalized) time across
/// both — the paper's "(> 256, 16)" portability conclusion for LUD.
pub fn select_portable_distribution(
    gpu: &paccport_devsim::HeatMap,
    mic: &paccport_devsim::HeatMap,
) -> (u32, u32) {
    let (_, _, gpu_best) = gpu.best();
    let (_, _, mic_best) = mic.best();
    let mut best = (gpu.gangs[0], gpu.workers[0], f64::INFINITY);
    for g in &gpu.gangs {
        for w in &gpu.workers {
            let (Some(tg), Some(tm)) = (gpu.at(*g, *w), mic.at(*g, *w)) else {
                continue;
            };
            if !tg.is_finite() || !tm.is_finite() {
                continue;
            }
            // Worst-case slowdown relative to each device's optimum.
            let score = (tg / gpu_best).max(tm / mic_best);
            if score < best.2 {
                best = (*g, *w, score);
            }
        }
    }
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_kernels::{gaussian, lud, VariantCfg};

    #[test]
    fn step1_refuses_lud_but_accepts_ge_fan1() {
        let out = apply_method(
            &lud::program(&VariantCfg::baseline()),
            &MethodOptions::default(),
        );
        assert!(!out.any_independent_added(), "LUD must be refused");
        assert_eq!(out.refusals().len(), 2, "both LUD kernels refused");

        let out = apply_method(
            &gaussian::program(&VariantCfg::baseline()),
            &MethodOptions::default(),
        );
        // Fan1 writes m[] and reads a[] — independent w.r.t. i.
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, StepAction::AddedIndependent { kernel, .. } if kernel == "fan1")));
    }

    #[test]
    fn step2_sets_clauses_only_without_independent() {
        let opts = MethodOptions {
            distribution: Some((256, 16)),
            ..Default::default()
        };
        let out = apply_method(&lud::program(&VariantCfg::baseline()), &opts);
        let k = out.program.kernel("lud_row").unwrap();
        assert_eq!(k.loops[0].clauses.gang, Some(256));
        assert_eq!(k.loops[0].clauses.worker, Some(16));

        // GE's fan1 got `independent`, so no explicit clauses.
        let out = apply_method(&gaussian::program(&VariantCfg::baseline()), &opts);
        let k = out.program.kernel("fan1").unwrap();
        assert!(k.loops[0].clauses.independent);
        assert_eq!(k.loops[0].clauses.gang, None);
    }

    #[test]
    fn steps_3_and_4_request_clauses() {
        let opts = MethodOptions {
            unroll: Some(8),
            tile: Some(32),
            ..Default::default()
        };
        let out = apply_method(&lud::program(&VariantCfg::baseline()), &opts);
        let k = out.program.kernel("lud_row").unwrap();
        assert_eq!(k.loops[0].clauses.unroll_jam, Some(8));
        assert_eq!(k.loops[0].clauses.tile, Some(32));
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, StepAction::RequestedUnroll { factor: 8, .. })));
    }

    #[test]
    fn portable_distribution_balances_devices() {
        use paccport_devsim::HeatMap;
        // GPU prefers (256,16); MIC prefers (240,1); worker 16 is an
        // acceptable compromise per the paper.
        let gangs = vec![64, 240, 256];
        let workers = vec![1, 16, 32];
        let gpu = HeatMap {
            title: "gpu".into(),
            gangs: gangs.clone(),
            workers: workers.clone(),
            cells: vec![
                vec![8.0, 3.0, 3.5],
                vec![5.0, 1.2, 1.5],
                vec![4.0, 1.0, 1.3],
            ],
        };
        let mic = HeatMap {
            title: "mic".into(),
            gangs,
            workers,
            cells: vec![
                vec![4.0, 3.0, 3.2],
                vec![1.0, 1.3, 1.6],
                vec![1.1, 1.25, 1.8],
            ],
        };
        let (g, w) = select_portable_distribution(&gpu, &mic);
        assert!(g >= 240, "gang {g}");
        assert_eq!(w, 16);
    }
}
