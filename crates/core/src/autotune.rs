//! Compiler-driven auto-tuning of thread distributions — the
//! alternative the paper positions its hand-written method *against*
//! (Dolbeau et al.'s "One OpenCL to Rule Them All?" and the
//! CAPS/OpenARC auto-tuning technology of Section I, "not ready for
//! production codes yet").
//!
//! The tuner searches per-kernel launch configurations by compiling
//! and timing candidate clause assignments through the device model,
//! then emits a program with the winning clauses baked in — what an
//! auto-tuning compiler would persist in its codelet cache.

use paccport_compilers::{compile, CompileOptions, CompilerId};
use paccport_devsim::{run, RunConfig};
use paccport_ir::Program;
use serde::{Deserialize, Serialize};

/// One candidate distribution for the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    pub gang: u32,
    pub worker: u32,
}

/// The default search space: the cross of gang counts and worker
/// widths a 2014 auto-tuner would scan (Sabne et al. sweep comparable
/// grids).
pub fn default_candidates() -> Vec<Candidate> {
    let mut out = Vec::new();
    for gang in [64u32, 128, 240, 256, 512, 1024] {
        for worker in [1u32, 8, 16, 32, 64, 128] {
            out.push(Candidate { gang, worker });
        }
    }
    out
}

/// Result of tuning one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedKernel {
    pub kernel: String,
    pub chosen: Candidate,
    pub seconds: f64,
    pub candidates_tried: usize,
}

/// Outcome of an auto-tuning pass.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    pub program: Program,
    pub per_kernel: Vec<TunedKernel>,
    pub total_runs: usize,
}

/// Auto-tune the thread distribution of every kernel, greedily and
/// per-kernel: each kernel's candidates are evaluated with all other
/// kernels held at their current best (one pass, as production
/// auto-tuners do to bound the search).
pub fn autotune_distribution(
    program: &Program,
    compiler: CompilerId,
    options: &CompileOptions,
    cfg: &RunConfig,
    candidates: &[Candidate],
) -> Result<TuneOutcome, String> {
    let kernel_names: Vec<String> = program.kernels().iter().map(|k| k.name.clone()).collect();
    let mut best = program.clone();
    let mut per_kernel = Vec::new();
    let mut total_runs = 0usize;

    for name in &kernel_names {
        let mut chosen: Option<(Candidate, f64)> = None;
        for cand in candidates {
            let mut trial = best.clone();
            trial.map_kernel(name, |k| {
                for lp in &mut k.loops {
                    lp.clauses.gang = Some(cand.gang);
                    lp.clauses.worker = Some(cand.worker);
                }
            });
            let Ok(c) = compile(compiler, &trial, options) else {
                continue;
            };
            let Ok(r) = run(&c, cfg) else {
                continue;
            };
            total_runs += 1;
            if chosen.is_none_or(|(_, t)| r.elapsed < t) {
                chosen = Some((*cand, r.elapsed));
            }
        }
        let (cand, seconds) =
            chosen.ok_or_else(|| format!("no candidate compiled for kernel `{name}`"))?;
        best.map_kernel(name, |k| {
            for lp in &mut k.loops {
                lp.clauses.gang = Some(cand.gang);
                lp.clauses.worker = Some(cand.worker);
            }
        });
        per_kernel.push(TunedKernel {
            kernel: name.clone(),
            chosen: cand,
            seconds,
            candidates_tried: candidates.len(),
        });
    }
    Ok(TuneOutcome {
        program: best,
        per_kernel,
        total_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_kernels::{lud, VariantCfg};

    #[test]
    fn autotune_finds_a_fast_lud_distribution() {
        let p = lud::program(&VariantCfg::baseline());
        let cfg = RunConfig::timing(vec![("n".into(), 1024.0)], 1);
        let o = CompileOptions::gpu();
        let out = autotune_distribution(&p, CompilerId::OpenArc, &o, &cfg, &default_candidates())
            .unwrap();
        assert_eq!(out.per_kernel.len(), 2);
        assert!(out.total_runs >= 2 * default_candidates().len());

        // The tuned program must be at least as fast as the hand
        // method's (256,16) pick under the same compiler…
        let hand = lud::program(&VariantCfg::thread_dist(256, 16));
        let t_hand = run(&compile(CompilerId::OpenArc, &hand, &o).unwrap(), &cfg)
            .unwrap()
            .elapsed;
        let t_tuned = run(
            &compile(CompilerId::OpenArc, &out.program, &o).unwrap(),
            &cfg,
        )
        .unwrap()
        .elapsed;
        assert!(
            t_tuned <= t_hand * 1.05,
            "auto-tuned {t_tuned} vs hand {t_hand}"
        );
        // …and the chosen workers are sane (the paper's valley).
        for tk in &out.per_kernel {
            assert!(tk.chosen.gang >= 64, "{tk:?}");
        }
    }

    #[test]
    fn search_space_shape() {
        let c = default_candidates();
        assert_eq!(c.len(), 36);
        assert!(c.contains(&Candidate {
            gang: 256,
            worker: 16
        }));
    }
}
