//! Request coalescing primitives for the experiment server.
//!
//! [`Singleflight`] is keyed in-flight deduplication: when N callers
//! ask for the same key concurrently, exactly one (the *leader*) runs
//! the computation and every other caller (*followers*) blocks until
//! the leader publishes its result, then shares it. Unlike the
//! [`paccport_compilers::ArtifactCache`] — which memoizes forever —
//! a flight lives only while its computation is running: once the
//! leader finishes, the key is vacant again and the next request for
//! it starts a fresh flight. That is exactly the semantics a serving
//! layer wants on top of a cache: the cache makes *repeated* work
//! cheap, the singleflight makes *concurrent duplicate* work free.
//!
//! [`Gate`] is a test-only rendezvous: threads park on [`Gate::pass`]
//! until somebody calls [`Gate::open`]. The server threads it through
//! its request and run paths so integration tests can hold requests
//! mid-flight deterministically (fill the admission queue, pile
//! followers onto a flight) instead of racing against the scheduler.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The state a flight can be in, as seen by followers.
enum FlightState<V> {
    Pending,
    Ready(Arc<V>),
    /// The leader panicked out of the computation; followers must
    /// retry as fresh flights rather than wait forever.
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
    /// Followers currently blocked on this flight (for observability;
    /// tests poll this through [`Singleflight::waiting`]).
    waiters: AtomicU64,
}

/// Keyed in-flight computation deduplication (see module docs).
pub struct Singleflight<V> {
    inflight: Mutex<HashMap<String, Arc<Flight<V>>>>,
    coalesced: AtomicU64,
    led: AtomicU64,
}

impl<V> Default for Singleflight<V> {
    fn default() -> Self {
        Singleflight {
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            led: AtomicU64::new(0),
        }
    }
}

/// Removes the flight and wakes followers if the leader unwinds
/// without publishing (panic inside the computation).
struct LeaderGuard<'a, V> {
    sf: &'a Singleflight<V>,
    key: &'a str,
    flight: &'a Arc<Flight<V>>,
    done: bool,
}

impl<V> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if !self.done {
            let mut map = self.sf.inflight.lock().unwrap();
            if map
                .get(self.key)
                .is_some_and(|cur| Arc::ptr_eq(cur, self.flight))
            {
                map.remove(self.key);
            }
            *self.flight.state.lock().unwrap() = FlightState::Abandoned;
            self.flight.cv.notify_all();
        }
    }
}

impl<V> Singleflight<V> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` under `key`, coalescing with any in-flight computation
    /// for the same key. Returns the (shared) value and whether this
    /// caller led the flight (`true`) or coalesced onto another
    /// caller's (`false`).
    pub fn run(&self, key: &str, f: impl FnOnce() -> V) -> (Arc<V>, bool) {
        // `f` is FnOnce, so if we lose the leadership race we cannot
        // re-run it — but then we never needed to: a follower never
        // calls its closure.
        let mut f = Some(f);
        loop {
            let (flight, leader) = {
                let mut map = self.inflight.lock().unwrap();
                match map.get(key) {
                    Some(fl) => (Arc::clone(fl), false),
                    None => {
                        let fl = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                            waiters: AtomicU64::new(0),
                        });
                        map.insert(key.to_string(), Arc::clone(&fl));
                        (fl, true)
                    }
                }
            };
            if leader {
                self.led.fetch_add(1, Ordering::Relaxed);
                let mut guard = LeaderGuard {
                    sf: self,
                    key,
                    flight: &flight,
                    done: false,
                };
                let v = Arc::new(f.take().expect("leader runs the closure once")());
                // Publish, then vacate the key: later requests start a
                // fresh flight (this is coalescing, not memoization).
                {
                    let mut map = self.inflight.lock().unwrap();
                    if map.get(key).is_some_and(|cur| Arc::ptr_eq(cur, &flight)) {
                        map.remove(key);
                    }
                }
                *flight.state.lock().unwrap() = FlightState::Ready(Arc::clone(&v));
                flight.cv.notify_all();
                guard.done = true;
                return (v, true);
            }
            // Follower: count ourselves in (observable while blocked),
            // wait for the leader, and share its value.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            paccport_trace::metrics::counter_add("coalesce_waits_total", &[], 1);
            flight.waiters.fetch_add(1, Ordering::Relaxed);
            let mut st = flight.state.lock().unwrap();
            loop {
                match &*st {
                    FlightState::Pending => st = flight.cv.wait(st).unwrap(),
                    FlightState::Ready(v) => {
                        let v = Arc::clone(v);
                        flight.waiters.fetch_sub(1, Ordering::Relaxed);
                        return (v, false);
                    }
                    FlightState::Abandoned => break,
                }
            }
            flight.waiters.fetch_sub(1, Ordering::Relaxed);
            // Leader died without publishing: retry as a fresh flight.
        }
    }

    /// Followers currently blocked across all flights.
    pub fn waiting(&self) -> u64 {
        self.inflight
            .lock()
            .unwrap()
            .values()
            .map(|fl| fl.waiters.load(Ordering::Relaxed))
            .sum()
    }

    /// Total callers that coalesced onto another caller's flight.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Total flights led (computations actually run).
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }
}

/// A reusable test rendezvous: [`Gate::pass`] parks until
/// [`Gate::open`]; [`Gate::wait_parked`] lets the controlling thread
/// wait until `n` threads are parked before opening.
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    open: bool,
    parked: usize,
}

impl Default for Gate {
    fn default() -> Self {
        Gate {
            state: Mutex::new(GateState {
                open: false,
                parked: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

impl Gate {
    pub fn new() -> Arc<Gate> {
        Arc::new(Gate::default())
    }

    /// Park until the gate is opened (a no-op once open).
    pub fn pass(&self) {
        let mut st = self.state.lock().unwrap();
        st.parked += 1;
        self.cv.notify_all();
        while !st.open {
            st = self.cv.wait(st).unwrap();
        }
        st.parked -= 1;
        self.cv.notify_all();
    }

    /// Open the gate, releasing every parked (and future) passer.
    pub fn open(&self) {
        let mut st = self.state.lock().unwrap();
        st.open = true;
        self.cv.notify_all();
    }

    /// Block until at least `n` threads are parked on the gate.
    pub fn wait_parked(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        while st.parked < n {
            st = self.cv.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_runs_each_lead() {
        let sf: Singleflight<u32> = Singleflight::new();
        let (a, led_a) = sf.run("k", || 1);
        let (b, led_b) = sf.run("k", || 2);
        assert!(led_a && led_b, "non-overlapping flights both lead");
        assert_eq!((*a, *b), (1, 2), "no memoization across flights");
        assert_eq!(sf.coalesced(), 0);
        assert_eq!(sf.led(), 2);
    }

    #[test]
    fn concurrent_identical_keys_run_once() {
        let sf: Arc<Singleflight<u64>> = Arc::new(Singleflight::new());
        let runs = AtomicUsize::new(0);
        let gate = Gate::new();
        let runs = &runs;
        let results: Vec<(Arc<u64>, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let sf = Arc::clone(&sf);
                    let gate = Arc::clone(&gate);
                    s.spawn(move || {
                        sf.run("same", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open until every other
                            // thread has had a chance to pile on.
                            gate.pass();
                            42u64
                        })
                    })
                })
                .collect();
            // One thread leads and parks inside the computation; wait
            // for the other 7 to block on the flight, then release.
            gate.wait_parked(1);
            while sf.waiting() < 7 {
                std::thread::yield_now();
            }
            gate.open();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one leader ran");
        assert_eq!(results.iter().filter(|(_, led)| *led).count(), 1);
        assert!(results.iter().all(|(v, _)| **v == 42));
        assert_eq!(sf.coalesced(), 7);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf: Singleflight<String> = Singleflight::new();
        let (a, _) = sf.run("x", || "ax".to_string());
        let (b, _) = sf.run("y", || "by".to_string());
        assert_ne!(*a, *b);
        assert_eq!(sf.coalesced(), 0);
    }

    #[test]
    fn leader_panic_releases_followers_to_retry() {
        let sf: Arc<Singleflight<u32>> = Arc::new(Singleflight::new());
        let gate = Gate::new();
        let done = std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sf.run("k", || {
                            gate.pass();
                            panic!("leader dies");
                        })
                    }));
                    assert!(r.is_err());
                })
            };
            gate.wait_parked(1);
            let follower = {
                let sf = Arc::clone(&sf);
                s.spawn(move || sf.run("k", || 7u32))
            };
            while sf.waiting() < 1 {
                std::thread::yield_now();
            }
            gate.open();
            leader.join().unwrap();
            follower.join().unwrap()
        });
        let (v, led) = done;
        assert_eq!(*v, 7, "follower retried and computed its own value");
        assert!(led, "the retry leads a fresh flight");
    }
}
