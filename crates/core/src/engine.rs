//! Parallel cached experiment engine.
//!
//! The paper's study is an *experiment matrix*: benchmark × compiler ×
//! device × optimization variant, every cell independent of every
//! other. The serial driver walks that matrix one cell at a time; this
//! module fans it out across a small work-stealing thread pool while
//! keeping two invariants the reporting layer depends on:
//!
//! 1. **Deterministic ordering** — results come back in submission
//!    order regardless of which worker finished first, so
//!    `report::render_*` output is byte-identical to the serial path.
//!    (The cells themselves are pure: the device simulator is an
//!    analytic timing model, so a cell's value never depends on
//!    scheduling.)
//! 2. **Compile-once** — all workers share one
//!    [`ArtifactCache`], so a program+options+device triple that
//!    appears in many figures (LUD ThreadDist shows up in figs. 3, 4
//!    and 6) is compiled exactly once per engine.
//!
//! `Engine::serial()` (or `jobs = 1`) runs everything inline on the
//! caller's thread — that is the reference path the equivalence tests
//! compare against.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use paccport_compilers::ArtifactCache;
use paccport_persist::wire::{Reader, Writer};

use crate::durable::{CellJournal, DurableResult};
use crate::study::{measure_cached, CellFailure, CellSpec, Measured};

/// How the engine retries failing jobs.
///
/// Backoff runs on the *virtual* clock (`paccport_faults::vclock`):
/// a retry "sleeps" by advancing it, so schedules are deterministic
/// and tests never wall-sleep. Each attempt runs under a step-budget
/// watchdog (the per-job timeout) and `catch_unwind` panic isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first run + retries), ≥ 1.
    pub max_attempts: u32,
    /// Base backoff delay (virtual ns); doubles per retry.
    pub backoff_base_ns: u64,
    /// Backoff ceiling (virtual ns), applied after jitter.
    pub backoff_cap_ns: u64,
    /// Watchdog step budget per attempt — the per-job timeout.
    pub step_budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ns: 50_000_000,   // 50 virtual ms
            backoff_cap_ns: 2_000_000_000, // 2 virtual s
            step_budget: paccport_faults::DEFAULT_STEP_BUDGET,
        }
    }
}

/// A job that exhausted its retry budget and was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    pub label: String,
    /// The last error (or panic message) observed.
    pub reason: String,
    /// Attempts consumed (== the policy's `max_attempts`).
    pub attempts: u32,
    /// Whether the final failure carried the injected-fault marker —
    /// chaos we asked for, as opposed to a genuine bug.
    pub injected: bool,
}

/// The engine's record of one quarantined job. (Only quarantines are
/// ledgered: whether a *recovery* needed 1 or 2 attempts can depend on
/// which worker warmed the compile cache first, but the quarantine set
/// is a pure function of the fault seed — see `paccport-faults`.)
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    pub label: String,
    pub reason: String,
    pub attempts: u32,
    pub injected: bool,
}

/// A batch executor with a shared compile cache.
///
/// Cheap to clone conceptually — share it with `Arc` if several
/// figures should reuse one cache (as `reproduce` does).
pub struct Engine {
    jobs: usize,
    cache: Arc<ArtifactCache>,
    policy: RetryPolicy,
    quarantine: Mutex<Vec<QuarantineRecord>>,
    /// Run journal for `--state-dir` runs: completed cells replay
    /// instead of recomputing (see [`crate::durable`]).
    journal: Option<Arc<CellJournal>>,
    /// Ordinal of the next journaled matrix, so every
    /// `measure_matrix_detailed` call gets a distinct key prefix in
    /// submission order.
    matrix_seq: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::serial()
    }
}

impl Engine {
    /// An engine running `jobs` worker threads (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            cache: Arc::new(ArtifactCache::new()),
            policy: RetryPolicy::default(),
            quarantine: Mutex::new(Vec::new()),
            journal: None,
            matrix_seq: AtomicU64::new(0),
        }
    }

    /// Attach a run journal (builder style): matrix and soundness
    /// cells journal their outcomes and replay on resume.
    pub fn with_journal(mut self, journal: Arc<CellJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Replace the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = RetryPolicy {
            max_attempts: policy.max_attempts.max(1),
            ..policy
        };
        self
    }

    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The reference single-threaded engine.
    pub fn serial() -> Self {
        Engine::new(1)
    }

    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shared compile cache (hit/miss counters live here).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Run a batch of independent closures, returning their results in
    /// submission order. With `jobs = 1` (or a batch of one) this runs
    /// inline; otherwise each worker owns a deque seeded round-robin,
    /// pops its own front, and steals from the back of the busiest
    /// other deque when empty.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if self.jobs <= 1 || n <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }

        let workers = self.jobs.min(n);
        // Task ordinals are allocated here, on the submitting thread,
        // so the telemetry lane/task layout is a pure function of
        // submission order — not of which worker steals which job.
        let task_base = paccport_trace::alloc_tasks(n as u64);
        // The submitter's request context rides along: worker threads
        // are fresh per batch, so without re-entering the scope here
        // a server request's engine spans would lose their request
        // attribution the moment the batch goes parallel.
        let ctx = paccport_trace::current_ctx();
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, f) in tasks.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, f));
        }

        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let queues = &queues;
        let slots = &slots;
        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || {
                    let _req = paccport_trace::request_scope(ctx);
                    loop {
                        // Own work first (front: preserves submission
                        // locality), then steal from the back of the
                        // longest other queue. The own-queue pop must
                        // be its own statement: chaining `.or_else`
                        // onto it keeps the own-queue guard alive
                        // through the steal (temporaries live to the
                        // end of the statement), and two workers
                        // stealing from each other then deadlock.
                        let own = queues[w].lock().unwrap().pop_front();
                        let job = own.or_else(|| {
                            let victim = (0..workers)
                                .filter(|&v| v != w)
                                .max_by_key(|&v| queues[v].lock().unwrap().len())?;
                            queues[victim].lock().unwrap().pop_back()
                        });
                        match job {
                            Some((i, f)) => {
                                paccport_trace::add("engine.jobs_run", 1);
                                // Canonical home lane: job i belongs
                                // to worker i % workers no matter who
                                // actually ran it after stealing.
                                let _scope = paccport_trace::task_scope(
                                    (i % workers) as u32 + 1,
                                    task_base + i as u64,
                                );
                                *slots[i].lock().unwrap() = Some(f());
                            }
                            None => break,
                        }
                    }
                });
            }
        });

        slots
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .take()
                    .expect("worker pool completed every slot")
            })
            .collect()
    }

    /// Run labeled fallible jobs with per-job panic isolation, a
    /// step-budget watchdog, bounded retry with exponential backoff on
    /// the virtual clock, and quarantine on exhaustion. Results come
    /// back in submission order; quarantined jobs are also appended to
    /// [`Engine::quarantined`].
    pub fn run_resilient<T, F>(&self, jobs: Vec<(String, F)>) -> Vec<Result<T, JobFailure>>
    where
        T: Send,
        F: Fn() -> Result<T, String> + Send,
    {
        paccport_faults::install_quiet_panic_hook();
        let policy = self.policy;
        let quarantine = &self.quarantine;
        let tasks: Vec<_> = jobs
            .into_iter()
            .map(|(label, f)| move || run_with_retry(label, f, policy, quarantine))
            .collect();
        self.run_batch(tasks)
    }

    /// [`Engine::run_resilient`] with a write-ahead of results into
    /// the engine's journal (a no-op without one). Each job carries a
    /// content fingerprint; the `i`-th job's journal key is
    /// `<prefix>/c<i>`. Outcomes journaled by a previous process life
    /// replay — successes decode without recomputation, quarantines
    /// re-enter the quarantine ledger — as long as the fingerprint
    /// still matches; any mismatch recomputes. Replay is per-cell, so
    /// a run that died mid-matrix resumes exactly at the first
    /// unjournaled cell.
    pub fn run_resilient_journaled<T, F>(
        &self,
        prefix: &str,
        jobs: Vec<(String, u128, F)>,
    ) -> Vec<Result<T, JobFailure>>
    where
        T: DurableResult + Send,
        F: Fn() -> Result<T, String> + Send,
    {
        let Some(journal) = self.journal.as_ref().map(Arc::clone) else {
            return self.run_resilient(jobs.into_iter().map(|(l, _, f)| (l, f)).collect());
        };
        paccport_faults::install_quiet_panic_hook();
        let policy = self.policy;
        let quarantine = &self.quarantine;
        let tasks: Vec<_> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (label, fp, f))| {
                let journal = Arc::clone(&journal);
                move || {
                    let key = format!("{prefix}/c{i}");
                    match journal.replay(&key, fp) {
                        Some(Ok(tokens)) => {
                            let mut r = Reader::new(tokens);
                            if let Ok(v) = T::decode(&mut r) {
                                paccport_trace::metrics::counter_add(
                                    "cells_replayed_total",
                                    &[],
                                    1,
                                );
                                return Ok(v);
                            }
                            // An undecodable journaled success means
                            // the journal predates a codec change the
                            // version guard missed; fall through and
                            // recompute (the re-journal is suppressed
                            // by the duplicate-key guard).
                        }
                        Some(Err(jf)) => {
                            paccport_trace::metrics::counter_add("cells_replayed_total", &[], 1);
                            quarantine.lock().unwrap().push(QuarantineRecord {
                                label: label.clone(),
                                reason: jf.reason.clone(),
                                attempts: jf.attempts,
                                injected: jf.injected,
                            });
                            return Err(JobFailure {
                                label,
                                reason: jf.reason.clone(),
                                attempts: jf.attempts,
                                injected: jf.injected,
                            });
                        }
                        None => {}
                    }
                    let res = run_with_retry(label, f, policy, quarantine);
                    match &res {
                        Ok(v) => {
                            let mut w = Writer::new();
                            v.encode(&mut w);
                            journal.record_ok(&key, fp, &w.finish());
                        }
                        Err(jf) => {
                            journal.record_err(&key, fp, &jf.reason, jf.attempts, jf.injected)
                        }
                    }
                    res
                }
            })
            .collect();
        self.run_batch(tasks)
    }

    /// Jobs quarantined by [`Engine::run_resilient`] so far, sorted by
    /// label (deterministic regardless of worker scheduling).
    pub fn quarantined(&self) -> Vec<QuarantineRecord> {
        let mut q = self.quarantine.lock().unwrap().clone();
        q.sort_by(|a, b| (&a.label, &a.reason).cmp(&(&b.label, &b.reason)));
        q
    }

    /// Quarantined jobs whose failure was *not* an injected fault —
    /// genuine breakage the `reproduce` CLI must exit nonzero for.
    pub fn uninjected_failures(&self) -> Vec<QuarantineRecord> {
        self.quarantined()
            .into_iter()
            .filter(|r| !r.injected)
            .collect()
    }

    /// Measure every cell of an experiment matrix through the shared
    /// cache, results in `cells` order. Failures are the rendered
    /// string form of [`CellFailure`]; use
    /// [`Engine::measure_matrix_detailed`] for the structured form.
    pub fn measure_matrix(&self, cells: Vec<CellSpec>) -> Vec<Result<Measured, String>> {
        self.measure_matrix_detailed(cells)
            .into_iter()
            .map(|r| r.map_err(|f| f.to_string()))
            .collect()
    }

    /// [`Engine::measure_matrix`] with structured failures: each
    /// quarantined cell comes back as a [`CellFailure`] carrying its
    /// series/variant, final error, attempt count and whether the
    /// fault was injected.
    pub fn measure_matrix_detailed(
        &self,
        cells: Vec<CellSpec>,
    ) -> Vec<Result<Measured, CellFailure>> {
        let _span = paccport_trace::span("engine.measure_matrix");
        let cache = &self.cache;
        let prefix = format!("m{}", self.matrix_seq.fetch_add(1, Ordering::Relaxed));
        let names: Vec<(String, String)> = cells
            .iter()
            .map(|c| (c.series.clone(), c.variant.clone()))
            .collect();
        let jobs: Vec<_> = cells
            .into_iter()
            .map(|cell| {
                let label = format!("{}/{}", cell.series, cell.variant);
                let mut cfg = cell.cfg.clone();
                if cfg.fault_scope.is_none() {
                    cfg.fault_scope = Some(label.clone());
                }
                // The replay gate: everything that shapes this cell's
                // result. The program contributes its compile-cache
                // fingerprint rather than its (large) Debug form.
                let fp = cell_fingerprint(&format!(
                    "{:?} {:?} {:?} {:?} {:032x} {:?}",
                    cell.series,
                    cell.variant,
                    cell.compiler,
                    cell.options,
                    paccport_compilers::fingerprint(&cell.program),
                    cfg
                ));
                let task = move || {
                    measure_cached(
                        cache,
                        &cell.series,
                        &cell.variant,
                        cell.compiler,
                        &cell.options,
                        &cell.program,
                        &cfg,
                    )
                };
                (label, fp, task)
            })
            .collect();
        self.run_resilient_journaled(&prefix, jobs)
            .into_iter()
            .zip(names)
            .map(|(r, (series, variant))| {
                r.map_err(|f| CellFailure {
                    series,
                    variant,
                    reason: f.reason,
                    attempts: f.attempts,
                    injected: f.injected,
                })
            })
            .collect()
    }

    /// Compile through the shared cache, retrying injected faults under
    /// the engine's policy. For generators that need an artifact on the
    /// calling thread (figs. 1 and 13) and would otherwise abort a
    /// chaos run on a transient fault; genuine errors return on the
    /// first attempt, exactly like [`ArtifactCache::compile`].
    pub fn compile_resilient(
        &self,
        id: paccport_compilers::CompilerId,
        program: &paccport_ir::Program,
        options: &paccport_compilers::CompileOptions,
    ) -> Result<Arc<paccport_compilers::CompiledProgram>, String> {
        let mut last = String::new();
        for attempt in 0..self.policy.max_attempts.max(1) {
            paccport_faults::set_attempt(attempt);
            let r = self.cache.compile(id, program, options);
            paccport_faults::set_attempt(0);
            match r {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = e.to_string();
                    if !paccport_faults::is_injected(&last) {
                        break;
                    }
                }
            }
        }
        Err(last)
    }
}

/// 128-bit content fingerprint for journal replay gates: two
/// independent 64-bit FNV-1a passes over the same bytes. Not
/// cryptographic — it only has to make "the cell spec changed between
/// runs" overwhelmingly unlikely to collide.
pub fn cell_fingerprint(spec: &str) -> u128 {
    fn fnv(bytes: &[u8], basis: u64) -> u64 {
        let mut h = basis;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    let lo = fnv(spec.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let hi = fnv(spec.as_bytes(), 0x6c62_272e_07bb_0142);
    ((hi as u128) << 64) | lo as u128
}

/// One job's attempt loop: watchdog + `catch_unwind` around every
/// attempt, virtual-clock backoff between attempts, quarantine at the
/// end. Transient injected faults clear because the fault-decision
/// hash includes the attempt counter set here.
fn run_with_retry<T, F>(
    label: String,
    f: F,
    policy: RetryPolicy,
    quarantine: &Mutex<Vec<QuarantineRecord>>,
) -> Result<T, JobFailure>
where
    F: Fn() -> Result<T, String>,
{
    let _job_span = paccport_trace::span_attrs("engine.job", vec![("label".into(), label.clone())]);
    let backoff = paccport_faults::Backoff {
        base_ns: policy.backoff_base_ns,
        cap_ns: policy.backoff_cap_ns,
        seed: paccport_faults::seed(),
    };
    let mut last = String::new();
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            let delay = backoff.delay_ns(&label, attempt);
            paccport_faults::vclock::advance(delay);
            paccport_trace::add("retry.attempts", 1);
            paccport_trace::add("retry.backoff_ns", delay);
            paccport_trace::metrics::counter_add("engine_retries_total", &[], 1);
        }
        let _attempt_span = paccport_trace::span_attrs(
            "engine.attempt",
            vec![
                ("label".into(), label.clone()),
                ("attempt".into(), attempt.to_string()),
            ],
        );
        paccport_faults::set_attempt(attempt);
        paccport_faults::arm_watchdog(policy.step_budget);
        let guard = paccport_faults::job_guard();
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        drop(guard);
        paccport_faults::disarm_watchdog();
        paccport_faults::set_attempt(0);
        match outcome {
            Ok(Ok(v)) => return Ok(v),
            Ok(Err(e)) => last = e,
            Err(payload) => last = paccport_faults::describe_panic(payload.as_ref()),
        }
    }
    paccport_trace::add("job.quarantined", 1);
    let injected = paccport_faults::is_injected(&last);
    paccport_trace::metrics::counter_add(
        "engine_quarantined_total",
        &[("injected", if injected { "true" } else { "false" })],
        1,
    );
    let record = QuarantineRecord {
        label: label.clone(),
        reason: last.clone(),
        attempts: policy.max_attempts.max(1),
        injected,
    };
    quarantine.lock().unwrap().push(record);
    Err(JobFailure {
        label,
        reason: last,
        attempts: policy.max_attempts.max(1),
        injected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_parallel_batches_agree_in_order() {
        let tasks = |n: usize| (0..n).map(|i| move || i * i).collect::<Vec<_>>();
        let serial = Engine::serial().run_batch(tasks(37));
        let parallel = Engine::new(8).run_batch(tasks(37));
        assert_eq!(serial, parallel);
        assert_eq!(serial[6], 36);
    }

    #[test]
    fn parallel_batch_uses_multiple_threads() {
        use std::collections::HashSet;
        let eng = Engine::new(4);
        let ids = eng.run_batch(
            (0..64)
                .map(|_| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_micros(300));
                        std::thread::current().id()
                    }
                })
                .collect::<Vec<_>>(),
        );
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on >1 worker thread");
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let results = Engine::new(3).run_batch(
            (0..100)
                .map(|i| move || (i, counter.fetch_add(1, Ordering::Relaxed)))
                .collect::<Vec<_>>(),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        // Slot i holds task i's result, whatever order they ran in.
        for (i, (task, _)) in results.iter().enumerate() {
            assert_eq!(*task, i);
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Engine::new(0).jobs(), 1);
    }

    #[test]
    fn resilient_jobs_succeed_and_quarantine_genuine_failures() {
        let eng = Engine::new(2);
        let jobs: Vec<(String, Box<dyn Fn() -> Result<u32, String> + Send>)> = vec![
            ("ok".into(), Box::new(|| Ok(7u32))),
            ("bad".into(), Box::new(|| Err("deliberate breakage".into()))),
        ];
        let results = eng.run_resilient(jobs);
        assert_eq!(results[0], Ok(7));
        let f = results[1].as_ref().unwrap_err();
        assert_eq!(f.label, "bad");
        assert_eq!(f.attempts, eng.policy().max_attempts);
        assert!(!f.injected, "a genuine error is not an injected fault");
        let q = eng.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].label, "bad");
        assert_eq!(eng.uninjected_failures().len(), 1);
    }

    #[test]
    fn resilient_jobs_isolate_panics() {
        let eng = Engine::serial();
        let jobs: Vec<(String, Box<dyn Fn() -> Result<u32, String> + Send>)> = vec![
            ("panics".into(), Box::new(|| panic!("kaboom"))),
            ("fine".into(), Box::new(|| Ok(1u32))),
        ];
        let results = eng.run_resilient(jobs);
        let f = results[0].as_ref().unwrap_err();
        assert!(f.reason.contains("kaboom"), "{}", f.reason);
        assert_eq!(results[1], Ok(1));
    }

    #[derive(Debug, PartialEq)]
    struct Val(u64);

    impl DurableResult for Val {
        fn encode(&self, w: &mut Writer) {
            w.u64(self.0);
        }
        fn decode(r: &mut Reader) -> Result<Self, String> {
            Ok(Val(r.u64()?))
        }
    }

    #[test]
    fn journaled_jobs_replay_across_engine_lives() {
        let dir =
            std::env::temp_dir().join(format!("paccport-engine-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        type Job<'a> = Box<dyn Fn() -> Result<Val, String> + Send + 'a>;
        fn jobs(ran: &AtomicUsize) -> Vec<(String, u128, Job<'_>)> {
            let a: Job<'_> = Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(Val(40))
            });
            let b: Job<'_> = Box::new(|| Err("deliberate breakage".to_string()));
            vec![
                ("good".into(), cell_fingerprint("good"), a),
                ("bad".into(), cell_fingerprint("bad"), b),
            ]
        }
        let ran = AtomicUsize::new(0);

        // First life: both outcomes computed and journaled.
        {
            let j = Arc::new(crate::durable::CellJournal::open(&dir, false).unwrap());
            let eng = Engine::new(2).with_journal(j);
            let res = eng.run_resilient_journaled("t", jobs(&ran));
            assert_eq!(res[0], Ok(Val(40)));
            assert!(res[1].is_err());
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1);

        // Second life: both replay — no recomputation, and the
        // quarantine ledger is rebuilt from the journal.
        {
            let j = Arc::new(crate::durable::CellJournal::open(&dir, true).unwrap());
            let eng = Engine::new(2).with_journal(j);
            let res = eng.run_resilient_journaled("t", jobs(&ran));
            assert_eq!(res[0], Ok(Val(40)));
            let f = res[1].as_ref().unwrap_err();
            assert_eq!(f.reason, "deliberate breakage");
            assert_eq!(f.attempts, eng.policy().max_attempts);
            let q = eng.quarantined();
            assert_eq!(q.len(), 1);
            assert_eq!(q[0].label, "bad");
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1, "replay must not recompute");

        // A changed fingerprint recomputes rather than misreplaying.
        {
            let j = Arc::new(crate::durable::CellJournal::open(&dir, true).unwrap());
            let eng = Engine::serial().with_journal(j);
            let mut js = jobs(&ran);
            js.truncate(1);
            js[0].1 = cell_fingerprint("good-but-different");
            let res = eng.run_resilient_journaled("t", js);
            assert_eq!(res[0], Ok(Val(40)));
        }
        assert_eq!(ran.load(Ordering::Relaxed), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_backoff_advances_virtual_clock_only() {
        let eng = Engine::serial();
        let before = paccport_faults::vclock::now_ns();
        let wall = std::time::Instant::now();
        let jobs: Vec<(String, Box<dyn Fn() -> Result<u32, String> + Send>)> =
            vec![("always-fails".into(), Box::new(|| Err("nope".into())))];
        let _ = eng.run_resilient(jobs);
        assert!(
            paccport_faults::vclock::now_ns() > before,
            "backoff must advance the virtual clock"
        );
        assert!(
            wall.elapsed() < std::time::Duration::from_secs(1),
            "backoff must never wall-sleep"
        );
    }
}
