//! Parallel cached experiment engine.
//!
//! The paper's study is an *experiment matrix*: benchmark × compiler ×
//! device × optimization variant, every cell independent of every
//! other. The serial driver walks that matrix one cell at a time; this
//! module fans it out across a small work-stealing thread pool while
//! keeping two invariants the reporting layer depends on:
//!
//! 1. **Deterministic ordering** — results come back in submission
//!    order regardless of which worker finished first, so
//!    `report::render_*` output is byte-identical to the serial path.
//!    (The cells themselves are pure: the device simulator is an
//!    analytic timing model, so a cell's value never depends on
//!    scheduling.)
//! 2. **Compile-once** — all workers share one
//!    [`ArtifactCache`], so a program+options+device triple that
//!    appears in many figures (LUD ThreadDist shows up in figs. 3, 4
//!    and 6) is compiled exactly once per engine.
//!
//! `Engine::serial()` (or `jobs = 1`) runs everything inline on the
//! caller's thread — that is the reference path the equivalence tests
//! compare against.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use paccport_compilers::ArtifactCache;

use crate::study::{measure_cached, CellSpec, Measured};

/// A batch executor with a shared compile cache.
///
/// Cheap to clone conceptually — share it with `Arc` if several
/// figures should reuse one cache (as `reproduce` does).
pub struct Engine {
    jobs: usize,
    cache: Arc<ArtifactCache>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::serial()
    }
}

impl Engine {
    /// An engine running `jobs` worker threads (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            cache: Arc::new(ArtifactCache::new()),
        }
    }

    /// The reference single-threaded engine.
    pub fn serial() -> Self {
        Engine::new(1)
    }

    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shared compile cache (hit/miss counters live here).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Run a batch of independent closures, returning their results in
    /// submission order. With `jobs = 1` (or a batch of one) this runs
    /// inline; otherwise each worker owns a deque seeded round-robin,
    /// pops its own front, and steals from the back of the busiest
    /// other deque when empty.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if self.jobs <= 1 || n <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }

        let workers = self.jobs.min(n);
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, f) in tasks.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, f));
        }

        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let queues = &queues;
        let slots = &slots;
        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || {
                    loop {
                        // Own work first (front: preserves submission
                        // locality), then steal from the back of the
                        // longest other queue.
                        let job = queues[w].lock().unwrap().pop_front().or_else(|| {
                            let victim = (0..workers)
                                .filter(|&v| v != w)
                                .max_by_key(|&v| queues[v].lock().unwrap().len())?;
                            queues[victim].lock().unwrap().pop_back()
                        });
                        match job {
                            Some((i, f)) => {
                                paccport_trace::add("engine.jobs_run", 1);
                                *slots[i].lock().unwrap() = Some(f());
                            }
                            None => break,
                        }
                    }
                });
            }
        });

        slots
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .take()
                    .expect("worker pool completed every slot")
            })
            .collect()
    }

    /// Measure every cell of an experiment matrix through the shared
    /// cache, results in `cells` order.
    pub fn measure_matrix(&self, cells: Vec<CellSpec>) -> Vec<Result<Measured, String>> {
        let _span = paccport_trace::span("engine.measure_matrix");
        let cache = &self.cache;
        let tasks: Vec<_> = cells
            .into_iter()
            .map(|cell| {
                move || {
                    measure_cached(
                        cache,
                        &cell.series,
                        &cell.variant,
                        cell.compiler,
                        &cell.options,
                        &cell.program,
                        &cell.cfg,
                    )
                }
            })
            .collect();
        self.run_batch(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_parallel_batches_agree_in_order() {
        let tasks = |n: usize| (0..n).map(|i| move || i * i).collect::<Vec<_>>();
        let serial = Engine::serial().run_batch(tasks(37));
        let parallel = Engine::new(8).run_batch(tasks(37));
        assert_eq!(serial, parallel);
        assert_eq!(serial[6], 36);
    }

    #[test]
    fn parallel_batch_uses_multiple_threads() {
        use std::collections::HashSet;
        let eng = Engine::new(4);
        let ids = eng.run_batch(
            (0..64)
                .map(|_| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_micros(300));
                        std::thread::current().id()
                    }
                })
                .collect::<Vec<_>>(),
        );
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on >1 worker thread");
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let results = Engine::new(3).run_batch(
            (0..100)
                .map(|i| move || (i, counter.fetch_add(1, Ordering::Relaxed)))
                .collect::<Vec<_>>(),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        // Slot i holds task i's result, whatever order they ran in.
        for (i, (task, _)) in results.iter().enumerate() {
            assert_eq!(*task, i);
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Engine::new(0).jobs(), 1);
    }
}
