//! Step 5 — automatic data-region insertion.
//!
//! The paper's stated future work: *"We will improve the systematic
//! optimization method, such as inserting the data region directives
//! for data-intensive kernels."* Without an enclosing
//! `#pragma acc data`, a 2014-era compiler synchronizes every array a
//! kernel touches around *every* launch; for codes that launch kernels
//! from a host loop (LUD launches 2N, GE 3N) the PCIe traffic dwarfs
//! the compute. This step hoists one data region around the outermost
//! kernel-launching construct, covering every array any kernel uses.

use paccport_compilers::lower::used_arrays;
use paccport_ir::{ArrayId, HostStmt, Program};
use std::collections::BTreeSet;

/// Remove every data region, splicing its body in place — the shape
/// of a naive port (and the "before" side of the Step-5 experiment).
pub fn strip_data_regions(program: &Program) -> Program {
    let mut p = program.clone();
    p.body = strip(std::mem::take(&mut p.body));
    p
}

fn strip(body: Vec<HostStmt>) -> Vec<HostStmt> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match s {
            HostStmt::DataRegion { body, .. } => out.extend(strip(body)),
            HostStmt::HostLoop { var, lo, hi, body } => out.push(HostStmt::HostLoop {
                var,
                lo,
                hi,
                body: strip(body),
            }),
            HostStmt::WhileFlag {
                flag,
                max_iters,
                body,
            } => out.push(HostStmt::WhileFlag {
                flag,
                max_iters,
                body: strip(body),
            }),
            other => out.push(other),
        }
    }
    out
}

/// Insert one data region around the whole program body, covering
/// every array any kernel references. Returns the covered arrays
/// (empty ⇒ the program was left unchanged because a region already
/// exists or no kernel launches were found).
pub fn insert_data_regions(program: &mut Program) -> Vec<ArrayId> {
    if program.has_data_region() {
        return Vec::new();
    }
    let mut covered: BTreeSet<ArrayId> = BTreeSet::new();
    for k in program.kernels() {
        covered.extend(used_arrays(k));
    }
    if covered.is_empty() {
        return Vec::new();
    }
    let arrays: Vec<ArrayId> = covered.into_iter().collect();
    let body = std::mem::take(&mut program.body);
    program.body = vec![HostStmt::DataRegion {
        arrays: arrays.clone(),
        body,
    }];
    arrays
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_compilers::{compile, CompileOptions, CompilerId};
    use paccport_devsim::{run, RunConfig};
    use paccport_kernels::{lud, VariantCfg};

    #[test]
    fn strip_then_insert_round_trips_coverage() {
        let p = lud::program(&VariantCfg::thread_dist(256, 16));
        assert!(p.has_data_region());
        let stripped = strip_data_regions(&p);
        assert!(!stripped.has_data_region());
        assert_eq!(stripped.kernel_count(), p.kernel_count());
        let mut restored = stripped.clone();
        let covered = insert_data_regions(&mut restored);
        assert!(!covered.is_empty());
        assert!(restored.has_data_region());
        // Inserting into a program that already has a region is a
        // no-op.
        let mut again = restored.clone();
        assert!(insert_data_regions(&mut again).is_empty());
    }

    /// The step's raison d'être: without the region, LUD re-transfers
    /// the matrix around every one of its 2N launches.
    #[test]
    fn region_insertion_slashes_transfers() {
        let n = 256usize;
        let base = lud::program(&VariantCfg::thread_dist(256, 16));
        let stripped = strip_data_regions(&base);
        let mut restored = stripped.clone();
        insert_data_regions(&mut restored);

        let rc = RunConfig::timing(vec![("n".into(), n as f64)], 1);
        let o = CompileOptions::gpu();
        let measure = |p: &Program| {
            let c = compile(CompilerId::Caps, p, &o).unwrap();
            let r = run(&c, &rc).unwrap();
            (r.transfers.total_count(), r.elapsed)
        };
        let (t_stripped, e_stripped) = measure(&stripped);
        let (t_restored, e_restored) = measure(&restored);
        // 2N launches × ≥2 transfers each vs 2 region transfers.
        assert!(
            t_stripped >= 4 * (n as u64) && t_restored <= 4,
            "{t_stripped} vs {t_restored} transfers"
        );
        assert!(
            e_restored < e_stripped / 10.0,
            "region insertion must dominate: {e_stripped} -> {e_restored}"
        );
        // Functional results stay identical.
        let a0 = paccport_kernels::diag_dominant_matrix(32, 3);
        let frc = RunConfig::functional(vec![("n".into(), 32.0)])
            .with_input("a", paccport_devsim::Buffer::F32(a0.clone()));
        let rs = run(&compile(CompilerId::Caps, &stripped, &o).unwrap(), &frc).unwrap();
        let rr = run(&compile(CompilerId::Caps, &restored, &o).unwrap(), &frc).unwrap();
        assert_eq!(rs.host, rr.host);
    }

    use paccport_ir::Program;
}
