//! The `reproduce profile` sweep: the nvprof-style per-kernel view
//! (`paccport_devsim::render_profile`) across the whole benchmark ×
//! variant × target matrix.
//!
//! The paper's authors found PGI's BFS kernels silently running on the
//! host by profiling (`PGI_ACC_TIME=1` + nvprof, Section V-C1); this
//! sweep makes the equivalent view available for every cell of the
//! reproduction in one command. Cells are the same functional
//! configurations the soundness check uses
//! ([`crate::experiments::soundness_cells`]), fanned out through the
//! shared engine, with output in submission order so the report is
//! byte-identical at any `--jobs` level.

use crate::engine::Engine;
use crate::study::Scale;
use paccport_devsim::{render_profile, run};

/// One profiled cell: its matrix label and the rendered profile table.
#[derive(Debug, Clone)]
pub struct CellProfile {
    pub label: String,
    pub profile: String,
}

/// The aggregated `reproduce profile` result.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    pub cells: Vec<CellProfile>,
    /// Cells that failed to compile or run, as `label: reason` lines.
    pub failures: Vec<String>,
}

impl ProfileReport {
    /// Failures that were *not* injected faults — genuine breakage.
    pub fn uninjected_failures(&self) -> Vec<&String> {
        self.failures
            .iter()
            .filter(|f| !paccport_faults::is_injected(f))
            .collect()
    }

    /// Deterministic text rendering: one profile block per cell in
    /// submission order, then any failures.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "per-kernel profiles: {} cells ({} failed)\n\n",
            self.cells.len() + self.failures.len(),
            self.failures.len()
        ));
        for c in &self.cells {
            out.push_str(&format!("== {} ==\n{}\n", c.label, c.profile));
        }
        for f in &self.failures {
            out.push_str(&format!("FAILED {f}\n"));
        }
        out
    }
}

/// Profile every benchmark variant × target cell through the engine.
pub fn profile_matrix_on(eng: &Engine, scale: &Scale) -> ProfileReport {
    let _g = paccport_trace::span("profile.matrix");
    let cells = crate::experiments::soundness_cells(scale);
    let jobs: Vec<_> = cells
        .into_iter()
        .map(|mut cell| {
            let cache = eng.cache();
            let label = cell.label();
            if cell.cfg.fault_scope.is_none() {
                cell.cfg.fault_scope = Some(label.clone());
            }
            let job_label = label.clone();
            (job_label, move || -> Result<CellProfile, String> {
                let c = cache
                    .compile(cell.compiler, &cell.program, &cell.options)
                    .map_err(|e| e.to_string())?;
                let r = run(&c, &cell.cfg)?;
                Ok(CellProfile {
                    label: label.clone(),
                    profile: render_profile(&r),
                })
            })
        })
        .collect();
    let mut report = ProfileReport::default();
    for res in eng.run_resilient(jobs) {
        match res {
            Ok(cp) => report.cells.push(cp),
            Err(f) => report.failures.push(format!(
                "{}: {} [{} attempts]",
                f.label, f.reason, f.attempts
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_sweep_covers_matrix_and_is_deterministic() {
        let scale = Scale::smoke();
        let a = profile_matrix_on(&Engine::serial(), &scale);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert!(a.cells.len() > 40, "expected the full matrix");
        let text = a.render();
        assert!(text.contains("LUD"), "{text}");
        assert!(text.contains("HOST (never launched)"), "PGI BFS finding");
        let b = profile_matrix_on(&Engine::new(4), &scale);
        assert_eq!(text, b.render(), "parallel sweep renders identically");
    }
}
