//! The Performance Portability Ratio (Eq. 1 of the paper):
//!
//! ```text
//! PPR = MIC_elapsed / GPU_elapsed
//! ```
//!
//! Lower is better (1.0 = perfectly portable performance); all the
//! paper's measurements land above 1 because the K40 outruns the
//! 5110P.

use serde::{Deserialize, Serialize};

/// One PPR measurement for a single-source version of a benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PprEntry {
    pub benchmark: String,
    /// "OpenACC (CAPS)" or "OpenCL" — the single source base.
    pub version: String,
    pub gpu_seconds: f64,
    pub mic_seconds: f64,
}

impl PprEntry {
    /// Eq. 1. A ratio only makes sense over two positive, finite
    /// timings; a zero or degenerate `gpu_seconds` yields `NaN`
    /// rather than silently injecting `inf` into reports (all
    /// comparison predicates are then false).
    pub fn ppr(&self) -> f64 {
        if self.is_valid() {
            self.mic_seconds / self.gpu_seconds
        } else {
            f64::NAN
        }
    }

    /// Both timings are positive and finite, so [`PprEntry::ppr`] is a
    /// meaningful ratio.
    pub fn is_valid(&self) -> bool {
        self.gpu_seconds > 0.0
            && self.gpu_seconds.is_finite()
            && self.mic_seconds > 0.0
            && self.mic_seconds.is_finite()
    }
}

/// The Fig.-16 comparison for one benchmark: OpenACC's PPR against
/// OpenCL's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PprComparison {
    pub openacc: PprEntry,
    pub opencl: PprEntry,
}

impl PprComparison {
    /// The paper's headline: "the optimized OpenACC versions are able
    /// to have a better PPR than the OpenCL versions" (lower ratio).
    pub fn openacc_is_more_portable(&self) -> bool {
        self.openacc.ppr() < self.opencl.ppr()
    }

    /// "Both … run faster on Kepler K40 than MIC 5110P as all the PPR
    /// are larger than 1."
    pub fn both_favor_gpu(&self) -> bool {
        self.openacc.ppr() > 1.0 && self.opencl.ppr() > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(version: &str, gpu: f64, mic: f64) -> PprEntry {
        PprEntry {
            benchmark: "GE".into(),
            version: version.into(),
            gpu_seconds: gpu,
            mic_seconds: mic,
        }
    }

    #[test]
    fn eq1_is_mic_over_gpu() {
        assert_eq!(entry("x", 2.0, 6.0).ppr(), 3.0);
    }

    #[test]
    fn zero_or_degenerate_gpu_time_yields_nan_not_inf() {
        for bad in [
            entry("x", 0.0, 6.0),
            entry("x", -1.0, 6.0),
            entry("x", f64::NAN, 6.0),
            entry("x", f64::INFINITY, 6.0),
            entry("x", 2.0, f64::NAN),
            entry("x", 2.0, 0.0),
        ] {
            assert!(!bad.is_valid());
            assert!(bad.ppr().is_nan(), "{bad:?}");
        }
        // The comparison predicates degrade safely rather than
        // declaring a winner off a division by zero.
        let c = PprComparison {
            openacc: entry("OpenACC", 0.0, 2.0),
            opencl: entry("OpenCL", 1.0, 9.0),
        };
        assert!(!c.openacc_is_more_portable());
        assert!(!c.both_favor_gpu());
    }

    #[test]
    fn comparison_predicates() {
        let c = PprComparison {
            openacc: entry("OpenACC", 1.0, 2.0),
            opencl: entry("OpenCL", 1.0, 9.0),
        };
        assert!(c.openacc_is_more_portable());
        assert!(c.both_favor_gpu());
        let c2 = PprComparison {
            openacc: entry("OpenACC", 1.0, 0.5),
            opencl: entry("OpenCL", 1.0, 2.0),
        };
        assert!(!c2.both_favor_gpu());
    }
}
