//! PTX-comparison analysis (the paper's Figures 6, 9, 11, 14): static
//! per-category counts of every version, plus the "did the PTX
//! actually change?" verdicts that exposed CAPS's fake unroll success
//! and the silent tiling no-op.

use paccport_ptx::{CategoryCounts, CATEGORIES};
use serde::{Deserialize, Serialize};

/// One bar of a PTX-composition plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PtxBar {
    /// e.g. "CAPS-CUDA-K40 / Indep".
    pub label: String,
    /// Thread-configuration line under the bar ("32x4", "1x1", …).
    pub config: String,
    pub counts: CategoryCounts,
    pub memcpy_h2d: u64,
    pub memcpy_d2h: u64,
    /// Kernel-launch count (Fig. 9's `3N` vs `2N` row).
    pub launches: u64,
}

/// A full PTX figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PtxFigure {
    pub id: String,
    pub title: String,
    pub bars: Vec<PtxBar>,
}

/// Verdict of comparing two adjacent optimization steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepVerdict {
    /// Counts identical — the "optimization" did nothing to the code
    /// (fake success / silent no-op).
    Unchanged,
    /// Counts changed; the listed categories grew/shrank.
    Changed(Vec<(String, i64)>),
}

/// Compare step `b` against its predecessor `a`.
pub fn compare_steps(a: &CategoryCounts, b: &CategoryCounts) -> StepVerdict {
    if b.unchanged_from(a) {
        StepVerdict::Unchanged
    } else {
        StepVerdict::Changed(
            b.diff(a)
                .into_iter()
                .map(|(c, d)| (c.label().to_string(), d))
                .collect(),
        )
    }
}

impl PtxFigure {
    /// Adjacent-step verdicts within one series (bars must share a
    /// series prefix "SERIES / VARIANT").
    pub fn verdicts(&self, series_prefix: &str) -> Vec<(String, StepVerdict)> {
        let bars: Vec<&PtxBar> = self
            .bars
            .iter()
            .filter(|b| b.label.starts_with(series_prefix))
            .collect();
        bars.windows(2)
            .map(|w| {
                (
                    format!("{} -> {}", w[0].label, w[1].label),
                    compare_steps(&w[0].counts, &w[1].counts),
                )
            })
            .collect()
    }

    /// Does any bar of the series use shared memory? (The tiling
    /// finding: OpenACC tiling never does.)
    pub fn any_shared_memory(&self, series_prefix: &str) -> bool {
        self.bars
            .iter()
            .filter(|b| b.label.starts_with(series_prefix))
            .any(|b| b.counts.get(paccport_ptx::Category::SharedMemory) > 0)
    }
}

/// Render the per-category composition of one bar as a one-line
/// summary.
pub fn composition_line(c: &CategoryCounts) -> String {
    CATEGORIES
        .iter()
        .map(|cat| format!("{}={}", short(cat.label()), c.get(*cat)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn short(label: &str) -> String {
    label
        .split_whitespace()
        .map(|w| w.chars().next().unwrap_or('?'))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ptx::Category;

    #[test]
    fn unchanged_detection() {
        let mut a = CategoryCounts::default();
        a.add_n(Category::Arithmetic, 4);
        assert_eq!(compare_steps(&a, &a), StepVerdict::Unchanged);
        let mut b = a;
        b.add_n(Category::DataMovement, 3);
        match compare_steps(&a, &b) {
            StepVerdict::Changed(d) => {
                assert_eq!(d, vec![("Data Mov.".to_string(), 3)]);
            }
            StepVerdict::Unchanged => panic!("should differ"),
        }
    }

    #[test]
    fn figure_verdicts_walk_adjacent_bars() {
        let mut c1 = CategoryCounts::default();
        c1.add_n(Category::Arithmetic, 2);
        let c2 = c1;
        let mut c3 = c1;
        c3.add_n(Category::Arithmetic, 2);
        let bar = |label: &str, counts| PtxBar {
            label: label.into(),
            config: "32x4".into(),
            counts,
            memcpy_h2d: 0,
            memcpy_d2h: 0,
            launches: 0,
        };
        let fig = PtxFigure {
            id: "t".into(),
            title: "t".into(),
            bars: vec![
                bar("CAPS / Base", c1),
                bar("CAPS / Tile", c2),
                bar("CAPS / Unroll", c3),
            ],
        };
        let v = fig.verdicts("CAPS");
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].1, StepVerdict::Unchanged);
        assert!(matches!(v[1].1, StepVerdict::Changed(_)));
        assert!(!fig.any_shared_memory("CAPS"));
    }

    #[test]
    fn composition_line_is_compact() {
        let mut c = CategoryCounts::default();
        c.add_n(Category::GlobalMemory, 7);
        let line = composition_line(&c);
        assert!(line.contains("GM=7"), "{line}");
    }
}
