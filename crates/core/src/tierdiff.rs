//! Execution-tier equivalence sweep over the soundness matrix.
//!
//! `reproduce --check --tier both` runs every functional soundness
//! cell twice — once under the tree-walking interpreter and once under
//! the bytecode VM ([`paccport_devsim::bytecode`]) — and requires the
//! complete observable run state to agree **bitwise**: every host
//! buffer (f64 bit patterns), the deduplicated race set and shadow-log
//! access count, the transfer ledger, while-loop iteration counts,
//! per-kernel launch statistics and every modeled timing. The
//! tree-walker is the semantic reference; any difference here is a
//! bytecode-tier bug, never a tolerance question.

use crate::experiments::soundness_cells;
use crate::study::Scale;
use paccport_compilers::ArtifactCache;
use paccport_devsim::{run, ExecTier, RunResult};

/// One cell's tier comparison.
#[derive(Debug, Clone)]
pub struct TierCell {
    pub label: String,
    /// `None` when the tiers agree bitwise; otherwise the first
    /// difference found.
    pub mismatch: Option<String>,
}

/// Aggregated result of a tier-equivalence sweep.
#[derive(Debug, Clone, Default)]
pub struct TierReport {
    pub cells: Vec<TierCell>,
}

impl TierReport {
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.mismatch.is_none())
    }

    pub fn mismatches(&self) -> usize {
        self.cells.iter().filter(|c| c.mismatch.is_some()).count()
    }

    /// Deterministic rendering — the CI gate greps this for
    /// `tier mismatches: 0`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "tier equivalence (tree vs bytecode): {} cells, tier mismatches: {}\n",
            self.cells.len(),
            self.mismatches()
        );
        for c in &self.cells {
            if let Some(d) = &c.mismatch {
                s.push_str(&format!("  MISMATCH {}: {}\n", c.label, d));
            }
        }
        s
    }
}

/// Run every soundness cell under both tiers and compare bitwise.
pub fn tier_equivalence(scale: &Scale) -> TierReport {
    tier_equivalence_on(&ArtifactCache::new(), scale)
}

/// [`tier_equivalence`] compiling through a shared artifact cache.
pub fn tier_equivalence_on(cache: &ArtifactCache, scale: &Scale) -> TierReport {
    tier_equivalence_with(cache, scale, true)
}

/// Tier sweep with an explicit race-check setting. Shadow-logging
/// forces the bytecode VM onto its per-thread scalar path; running
/// with `race_check = false` additionally covers the tracker-less
/// batched dispatch, so the suite runs both configurations.
pub fn tier_equivalence_with(cache: &ArtifactCache, scale: &Scale, race_check: bool) -> TierReport {
    let _g = paccport_trace::span("tierdiff.matrix");
    let mut report = TierReport::default();
    for cell in soundness_cells(scale) {
        let label = cell.label();
        let mismatch = match cache.compile(cell.compiler, &cell.program, &cell.options) {
            Err(e) => Some(format!("compile failed: {e}")),
            Ok(cp) => {
                let run_tier = |tier: ExecTier| {
                    run(
                        &cp,
                        &cell.cfg.clone().with_race_check(race_check).with_tier(tier),
                    )
                };
                match (run_tier(ExecTier::Tree), run_tier(ExecTier::Bytecode)) {
                    (Err(et), Err(eb)) if et == eb => None,
                    (Err(et), Err(eb)) => {
                        Some(format!("tiers erred differently: `{et}` vs `{eb}`"))
                    }
                    (Err(e), Ok(_)) => Some(format!("tree erred (`{e}`), bytecode succeeded")),
                    (Ok(_), Err(e)) => Some(format!("bytecode erred (`{e}`), tree succeeded")),
                    (Ok(rt), Ok(rb)) => diff_results(&rt, &rb),
                }
            }
        };
        report.cells.push(TierCell { label, mismatch });
    }
    report
}

/// First bit-level difference between two tier runs, if any.
pub fn diff_results(a: &RunResult, b: &RunResult) -> Option<String> {
    if a.host.len() != b.host.len() {
        return Some(format!("buffer count {} vs {}", a.host.len(), b.host.len()));
    }
    for (i, (ba, bb)) in a.host.iter().zip(&b.host).enumerate() {
        let (wa, wb) = (ba.bits(), bb.bits());
        if wa.len() != wb.len() {
            return Some(format!("buffer {i} length {} vs {}", wa.len(), wb.len()));
        }
        if let Some(j) = (0..wa.len()).find(|&j| wa[j] != wb[j]) {
            return Some(format!(
                "buffer {i}[{j}]: bits {:#018x} vs {:#018x}",
                wa[j], wb[j]
            ));
        }
    }
    if a.races != b.races {
        return Some(format!(
            "race sets differ ({} vs {} races)",
            a.races.len(),
            b.races.len()
        ));
    }
    if a.race_accesses != b.race_accesses {
        return Some(format!(
            "shadow-logged access counts differ: {} vs {}",
            a.race_accesses, b.race_accesses
        ));
    }
    if a.while_iterations != b.while_iterations {
        return Some(format!(
            "while iterations {} vs {}",
            a.while_iterations, b.while_iterations
        ));
    }
    if a.transfers != b.transfers {
        return Some("transfer ledgers differ".into());
    }
    if a.transfers_outside_while != b.transfers_outside_while {
        return Some("transfers outside while differ".into());
    }
    if a.any_known_wrong != b.any_known_wrong {
        return Some("known-wrong flags differ".into());
    }
    if a.kernel_stats.len() != b.kernel_stats.len() {
        return Some("kernel stat counts differ".into());
    }
    for (sa, sb) in a.kernel_stats.iter().zip(&b.kernel_stats) {
        if sa.name != sb.name
            || sa.launches != sb.launches
            || sa.ran_on_device != sb.ran_on_device
            || sa.config_label != sb.config_label
            || sa.device_time.to_bits() != sb.device_time.to_bits()
        {
            return Some(format!("kernel stats differ: {sa:?} vs {sb:?}"));
        }
    }
    for (label, fa, fb) in [
        ("elapsed", a.elapsed, b.elapsed),
        ("kernel_time", a.kernel_time, b.kernel_time),
        ("transfer_time_s", a.transfer_time_s, b.transfer_time_s),
        ("host_time", a.host_time, b.host_time),
        (
            "transfers_per_while_iter",
            a.transfers_per_while_iter,
            b.transfers_per_while_iter,
        ),
    ] {
        if fa.to_bits() != fb.to_bits() {
            return Some(format!("{label}: {fa} vs {fb} (bit-level)"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every smoke-scale soundness cell must agree bitwise across
    /// tiers — this is the same sweep `--check --tier both` runs.
    #[test]
    fn smoke_matrix_is_tier_equivalent() {
        let r = tier_equivalence(&Scale::smoke());
        assert!(!r.cells.is_empty());
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn render_is_deterministic() {
        let a = tier_equivalence(&Scale::smoke()).render();
        let b = tier_equivalence(&Scale::smoke()).render();
        assert_eq!(a, b);
    }
}
