//! The experiment-server request model: naming, expansion and
//! execution of matrix cells on behalf of `reproduce serve`.
//!
//! An experiment request is the tuple
//! `(benchmark × variant × target × scale × seed)`. The first three
//! coordinates name cells of the same functional benchmark matrix the
//! soundness check sweeps ([`crate::experiments::soundness_cells`]),
//! so the server's surface is exactly the study's surface — every
//! cell the paper measures is addressable over HTTP, and nothing
//! else. `benchmark`, `variant` and `target` each accept `*` as a
//! wildcard, expanding to every matching cell in matrix submission
//! order (which is what keeps multi-cell responses byte-identical at
//! any engine `--jobs` level).
//!
//! Execution is deterministic per `(request, seed)`: the seed is
//! folded into the cell's fault-injection scope, so under `--inject`
//! the same request with the same seed makes exactly the same fault
//! decisions every time — and without injection the modeled results
//! are pure functions of the cell to begin with.

use paccport_compilers::ArtifactCache;
use paccport_devsim::{run, Buffer};

use crate::soundness::CheckCell;
use crate::study::Scale;

/// Parse a scale name the way the `reproduce` CLI does.
pub fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "smoke" => Some(Scale::smoke()),
        "quick" => Some(Scale::quick()),
        "paper" => Some(Scale::paper()),
        _ => None,
    }
}

/// Every cell of the functional matrix at `scale`, in submission
/// order. This is the server's entire address space.
pub fn matrix(scale: &Scale) -> Vec<CheckCell> {
    crate::experiments::soundness_cells(scale)
}

/// Case-insensitive coordinate match, with `*` (or empty) as a
/// wildcard.
fn coord_matches(pattern: &str, value: &str) -> bool {
    pattern.is_empty() || pattern == "*" || pattern.eq_ignore_ascii_case(value)
}

/// Expand `(benchmark, variant, target)` against the matrix at
/// `scale`. Returns matching cells in matrix submission order; an
/// empty result means at least one coordinate named nothing.
pub fn expand(scale: &Scale, benchmark: &str, variant: &str, target: &str) -> Vec<CheckCell> {
    matrix(scale)
        .into_iter()
        .filter(|c| {
            coord_matches(benchmark, &c.benchmark)
                && coord_matches(variant, &c.variant)
                && coord_matches(target, &c.series)
        })
        .collect()
}

/// Sorted, deduplicated values of one matrix coordinate — the
/// vocabulary quoted back in "unknown benchmark/variant/target" error
/// messages so they are actionable.
pub fn coordinate_values(scale: &Scale, pick: impl Fn(&CheckCell) -> &String) -> Vec<String> {
    let mut vals: Vec<String> = matrix(scale).iter().map(|c| pick(c).clone()).collect();
    vals.sort();
    vals.dedup();
    vals
}

/// The deterministic result of running one cell for a request.
///
/// Everything here is a pure function of `(cell, seed)`: modeled
/// timings come from the analytic device model, counts from the
/// simulator's ledgers, and `checksum` fingerprints the final host
/// buffers bit-for-bit — the field loadgen uses to prove responses
/// byte-identical across runs and job counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    pub benchmark: String,
    pub variant: String,
    pub target: String,
    /// Total modeled wall time (seconds).
    pub seconds: f64,
    pub kernel_seconds: f64,
    pub transfer_seconds: f64,
    pub launches: u64,
    pub h2d: u64,
    pub d2h: u64,
    pub on_device: bool,
    pub while_iterations: u64,
    /// FNV-1a over the bit patterns of every final host buffer.
    pub checksum: u64,
}

/// FNV-1a-64 over the exact bit patterns of the final host buffers —
/// element type, length and every element's bits all contribute, so
/// two runs collide only if they produced identical memory.
pub fn buffers_checksum(buffers: &[Buffer]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for buf in buffers {
        match buf {
            Buffer::F32(v) => {
                eat(0x1000_0000 | v.len() as u64);
                v.iter().for_each(|x| eat(x.to_bits() as u64));
            }
            Buffer::F64(v) => {
                eat(0x2000_0000 | v.len() as u64);
                v.iter().for_each(|x| eat(x.to_bits()));
            }
            Buffer::I32(v) => {
                eat(0x3000_0000 | v.len() as u64);
                v.iter().for_each(|x| eat(*x as u32 as u64));
            }
            Buffer::U32(v) => {
                eat(0x4000_0000 | v.len() as u64);
                v.iter().for_each(|x| eat(*x as u64));
            }
            Buffer::Bool(v) => {
                eat(0x5000_0000 | v.len() as u64);
                v.iter().for_each(|x| eat(*x as u64));
            }
        }
    }
    h
}

/// The fault-injection scope for one `(cell, seed)` execution: folds
/// the request seed in so chaos decisions are per-seed deterministic
/// and distinct seeds explore distinct fault schedules.
pub fn cell_fault_scope(cell: &CheckCell, seed: u64) -> String {
    format!(
        "serve/{}/{}/{}/s{seed}",
        cell.benchmark, cell.variant, cell.series
    )
}

/// Compile (through the shared cache) and functionally run one cell,
/// producing its deterministic [`CellOutcome`].
pub fn run_cell(cache: &ArtifactCache, cell: &CheckCell, seed: u64) -> Result<CellOutcome, String> {
    let _g = paccport_trace::span("serve.run_cell");
    let c = cache
        .compile(cell.compiler, &cell.program, &cell.options)
        .map_err(|e| e.to_string())?;
    let mut cfg = cell.cfg.clone();
    cfg.fault_scope = Some(cell_fault_scope(cell, seed));
    let r = run(&c, &cfg)?;
    Ok(CellOutcome {
        benchmark: cell.benchmark.clone(),
        variant: cell.variant.clone(),
        target: cell.series.clone(),
        seconds: r.elapsed,
        kernel_seconds: r.kernel_time,
        transfer_seconds: r.transfer_time_s,
        launches: r.kernel_stats.iter().map(|s| s.launches).sum(),
        h2d: r.transfers.h2d_count,
        d2h: r.transfers.d2h_count,
        on_device: r.kernel_stats.iter().all(|s| s.ran_on_device),
        while_iterations: r.while_iterations,
        checksum: buffers_checksum(&r.host),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_coordinates_select_one_cell() {
        let scale = Scale::smoke();
        let cells = expand(&scale, "LUD", "Base", "CAPS-CUDA-K40");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].benchmark, "LUD");
        // Case-insensitive.
        let cells = expand(&scale, "lud", "base", "caps-cuda-k40");
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn wildcards_expand_in_matrix_order() {
        let scale = Scale::smoke();
        let all = expand(&scale, "*", "*", "*");
        let full = matrix(&scale);
        assert_eq!(all.len(), full.len());
        assert!(all.len() > 40, "the full matrix is addressable");
        let labels: Vec<String> = all.iter().map(|c| c.label()).collect();
        let want: Vec<String> = full.iter().map(|c| c.label()).collect();
        assert_eq!(labels, want, "expansion preserves submission order");
        let luds = expand(&scale, "LUD", "*", "*");
        assert!(luds.iter().all(|c| c.benchmark == "LUD"));
        assert!(luds.len() >= 12, "4 variants x 3 targets");
    }

    #[test]
    fn unknown_coordinates_expand_to_nothing() {
        let scale = Scale::smoke();
        assert!(expand(&scale, "NOPE", "*", "*").is_empty());
        assert!(expand(&scale, "LUD", "NOPE", "*").is_empty());
        assert!(expand(&scale, "LUD", "Base", "NOPE").is_empty());
        let benches = coordinate_values(&scale, |c| &c.benchmark);
        assert!(benches.contains(&"LUD".to_string()));
        assert!(benches.contains(&"Hydro".to_string()));
    }

    #[test]
    fn run_cell_is_deterministic_and_checksummed() {
        let scale = Scale::smoke();
        let cell = &expand(&scale, "GE", "Indep", "CAPS-CUDA-K40")[0];
        let cache = ArtifactCache::new();
        let a = run_cell(&cache, cell, 7).unwrap();
        let b = run_cell(&cache, cell, 7).unwrap();
        assert_eq!(a, b, "same (cell, seed) => identical outcome");
        assert!(a.seconds > 0.0);
        assert!(a.launches > 0);
        assert_ne!(a.checksum, 0);
        // A different cell produces different memory.
        let other = &expand(&scale, "GE", "Base", "CAPS-CUDA-K40")[0];
        let c = run_cell(&cache, other, 7).unwrap();
        assert_eq!(
            a.checksum, c.checksum,
            "GE Base and Indep compute the same answer (variants are semantics-preserving)"
        );
    }

    #[test]
    fn buffer_checksums_see_every_bit() {
        let a = buffers_checksum(&[Buffer::F32(vec![1.0, 2.0])]);
        let b = buffers_checksum(&[Buffer::F32(vec![1.0, 2.0000002])]);
        let c = buffers_checksum(&[Buffer::F64(vec![1.0, 2.0])]);
        let d = buffers_checksum(&[Buffer::F32(vec![2.0, 1.0])]);
        assert_ne!(a, b);
        assert_ne!(a, c, "element type is part of the fingerprint");
        assert_ne!(a, d, "order is part of the fingerprint");
        assert_eq!(a, buffers_checksum(&[Buffer::F32(vec![1.0, 2.0])]));
    }
}
