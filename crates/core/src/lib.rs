//! # paccport-core — the paper's contribution, reproduced
//!
//! This crate ties the reproduction together:
//!
//! * [`method`] — the four-step systematic hand-written optimization
//!   method (add `independent`, tune thread distribution, unroll,
//!   tile), with the dependence-analysis refusals the paper leans on;
//! * [`ppr`] — the Performance Portability Ratio (Eq. 1);
//! * [`study`] — scales, measurement plumbing, figure containers;
//! * [`ptxcmp`] — the static PTX-comparison analysis that exposed the
//!   fake unroll success and the silent tiling no-op;
//! * [`experiments`] — one generator per table and figure of the
//!   evaluation section;
//! * [`report`] — ASCII renderers used by the `reproduce` binary;
//! * [`step5`] and [`autotune`] — the paper's two stated future-work
//!   directions, implemented: automatic data-region insertion and
//!   OpenARC-style distribution auto-tuning.
//!
//! ```
//! use paccport_core::{apply_method, MethodOptions};
//! use paccport_kernels::{lud, VariantCfg};
//!
//! // Step 1 refuses LUD (the paper's Section V-A1 finding)…
//! let baseline = lud::program(&VariantCfg::baseline());
//! let out = apply_method(&baseline, &MethodOptions::default());
//! assert!(!out.any_independent_added());
//! // …so step 2 carries the optimization through explicit clauses.
//! let opts = MethodOptions { distribution: Some((256, 16)), ..Default::default() };
//! let out = apply_method(&baseline, &opts);
//! let k = out.program.kernel("lud_row").unwrap();
//! assert_eq!(k.loops[0].clauses.gang, Some(256));
//! ```

pub mod autotune;
pub mod coalesce;
pub mod durable;
pub mod engine;
pub mod experiments;
pub mod method;
pub mod ppr;
pub mod profile;
pub mod ptxcmp;
pub mod report;
pub mod serve;
pub mod soundness;
pub mod step5;
pub mod study;
pub mod tierdiff;

pub use autotune::{autotune_distribution, default_candidates, Candidate, TuneOutcome};
pub use coalesce::{Gate, Singleflight};
pub use durable::{CellJournal, DiskArtifactStore, DurableResult};
pub use engine::Engine;
pub use method::{
    apply_method, dep_reason, select_portable_distribution, MethodOptions, OptimizationOutcome,
    StepAction,
};
pub use ppr::{PprComparison, PprEntry};
pub use profile::{profile_matrix_on, CellProfile, ProfileReport};
pub use ptxcmp::{compare_steps, PtxBar, PtxFigure, StepVerdict};
pub use soundness::{check_cell, CellCheck, CheckCell, SoundnessReport, SoundnessRow};
pub use step5::{insert_data_regions, strip_data_regions};
pub use study::{measure, measure_cached, CellSpec, ElapsedFigure, Measured, Scale};
