//! Resumable runs: the cell journal and the disk-backed artifact
//! store.
//!
//! A `--state-dir` run keeps two durable structures (both from
//! `paccport-persist`):
//!
//! * **The run journal** — one record per *completed* experiment cell
//!   (success or quarantine), plus one record per injected fault
//!   event. A resumed run replays journaled cells instead of
//!   recomputing them and restores the fault ledger, so its output is
//!   byte-identical to an uninterrupted run no matter where the
//!   previous life died.
//! * **The artifact store** — compiled artifacts in
//!   [`paccport_compilers::diskfmt`] records, so even *unjournaled*
//!   work (figure generators outside the cell matrices) skips its
//!   compiles after a restart.
//!
//! ## Journal record grammar
//!
//! Each journal payload is one `wire` token record:
//!
//! ```text
//! meta <version>
//! cell <key> <fingerprint:032x> ok <result tokens…>
//! cell <key> <fingerprint:032x> err <reason> <attempts> <injected>
//! event <fault-kind-tag> <site-key> <attempt>
//! ```
//!
//! Cell keys are positional (`m<matrix>/c<index>`, `check/c<index>`)
//! and the fingerprint is a content hash of the full cell spec, so a
//! journal from a *different* configuration (changed scale, changed
//! variant set) never replays into the wrong cell — the fingerprint
//! mismatch falls back to recomputation.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use paccport_compilers::ArtifactStore;
use paccport_persist::wire::{Reader, Writer};
use paccport_persist::{BlobStore, Journal, CACHE_DIR, JOURNAL_FILE};
use paccport_ptx::{CategoryCounts, CATEGORIES};

use crate::soundness::{CellCheck, SoundnessRow};
use crate::study::Measured;

/// Journal payload-format version; bump on any grammar change. A
/// version mismatch on resume is an error (the state dir belongs to a
/// different build), not silent recomputation.
pub const JOURNAL_VERSION: u64 = 1;

/// A value that can be journaled as a cell result.
pub trait DurableResult: Sized {
    fn encode(&self, w: &mut Writer);
    fn decode(r: &mut Reader) -> Result<Self, String>;
}

fn enc_counts(w: &mut Writer, c: &CategoryCounts) {
    for (_, v) in c.iter() {
        w.u64(v);
    }
}

fn dec_counts(r: &mut Reader) -> Result<CategoryCounts, String> {
    let mut c = CategoryCounts::default();
    for cat in CATEGORIES {
        c.set(cat, r.u64()?);
    }
    Ok(c)
}

impl DurableResult for Measured {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.series);
        w.str(&self.variant);
        w.f64(self.seconds);
        w.f64(self.kernel_seconds);
        w.f64(self.transfer_seconds);
        w.str(&self.config);
        enc_counts(w, &self.counts);
        w.u64(self.h2d);
        w.u64(self.d2h);
        w.u64(self.launches);
        w.bool(self.on_device);
        w.u64(self.while_iterations);
        w.f64(self.transfers_per_while_iter);
        w.u64(self.transfers_outside_while);
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        Ok(Measured {
            series: r.str()?,
            variant: r.str()?,
            seconds: r.f64()?,
            kernel_seconds: r.f64()?,
            transfer_seconds: r.f64()?,
            config: r.str()?,
            counts: dec_counts(r)?,
            h2d: r.u64()?,
            d2h: r.u64()?,
            launches: r.u64()?,
            on_device: r.bool()?,
            while_iterations: r.u64()?,
            transfers_per_while_iter: r.f64()?,
            transfers_outside_while: r.u64()?,
        })
    }
}

impl DurableResult for CellCheck {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.rows.len() as u64);
        for row in &self.rows {
            w.str(&row.benchmark);
            w.str(&row.series);
            w.str(&row.variant);
            w.str(&row.kernel);
            w.u64(row.level as u64);
            w.bool(row.proven_independent);
            w.str(&row.verdict);
            w.u64(row.races as u64);
            w.str(&row.race_note);
            w.bool(row.miscompiled);
            w.bool(row.lost_update_demo);
            w.bool(row.consistent);
        }
        w.u64(self.accesses);
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        let n = r.usize()?;
        if n > 100_000 {
            return Err(format!("implausible row count {n}"));
        }
        let mut rows = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            rows.push(SoundnessRow {
                benchmark: r.str()?,
                series: r.str()?,
                variant: r.str()?,
                kernel: r.str()?,
                level: r.usize()?,
                proven_independent: r.bool()?,
                verdict: r.str()?,
                races: r.usize()?,
                race_note: r.str()?,
                miscompiled: r.bool()?,
                lost_update_demo: r.bool()?,
                consistent: r.bool()?,
            });
        }
        Ok(CellCheck {
            rows,
            accesses: r.u64()?,
        })
    }
}

/// A journaled failure, replayed into the engine's quarantine on
/// resume so the resumed run reports the identical failure set.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledFailure {
    pub reason: String,
    pub attempts: u32,
    pub injected: bool,
}

/// One replayed cell outcome: the encoded success tokens, or the
/// failure that quarantined it.
pub type ReplayedOutcome = Result<String, JournaledFailure>;

/// The run journal plus the replay index built from a resumed file.
/// Shared across engine workers behind an `Arc`.
pub struct CellJournal {
    journal: Journal,
    /// Completed cells from the previous life: key → (fingerprint,
    /// outcome). Consulted (not mutated) during replay.
    completed: HashMap<String, (u128, ReplayedOutcome)>,
    /// Fault events from the previous life, in append order.
    events: Vec<(String, String, u32)>,
    /// Serializes append ordering decisions (key uniqueness is by
    /// construction; this only guards double-journaling in tests).
    recorded: Mutex<std::collections::HashSet<String>>,
}

impl CellJournal {
    /// Open the journal inside `state_dir`. `resume = false` starts a
    /// fresh journal (truncating any previous one); `resume = true`
    /// verifies + indexes the existing records (repairing a torn tail
    /// in place) so completed cells replay.
    pub fn open(state_dir: &Path, resume: bool) -> io::Result<CellJournal> {
        std::fs::create_dir_all(state_dir)?;
        let path = state_dir.join(JOURNAL_FILE);
        if !resume {
            let journal = Journal::create(&path)?;
            journal.append_unrolled(&{
                let mut w = Writer::new();
                w.word("meta").u64(JOURNAL_VERSION);
                w.finish()
            })?;
            return Ok(CellJournal {
                journal,
                completed: HashMap::new(),
                events: Vec::new(),
                recorded: Mutex::new(std::collections::HashSet::new()),
            });
        }

        let open = Journal::open(&path)?;
        let mut completed = HashMap::new();
        let mut events = Vec::new();
        for payload in &open.records {
            let mut r = Reader::new(payload);
            match r.word().map_err(io_err)? {
                "meta" => {
                    let v = r.u64().map_err(io_err)?;
                    if v != JOURNAL_VERSION {
                        return Err(io_err(format!(
                            "journal version {v}, this build writes {JOURNAL_VERSION} — \
                             start a fresh --state-dir"
                        )));
                    }
                }
                "cell" => {
                    let key = r.str().map_err(io_err)?;
                    let fp = r.u128_hex().map_err(io_err)?;
                    let outcome = match r.word().map_err(io_err)? {
                        "ok" => Ok(r.rest()),
                        "err" => Err(JournaledFailure {
                            reason: r.str().map_err(io_err)?,
                            attempts: r.u32().map_err(io_err)?,
                            injected: r.bool().map_err(io_err)?,
                        }),
                        other => return Err(io_err(format!("bad cell outcome tag `{other}`"))),
                    };
                    completed.insert(key, (fp, outcome));
                }
                "event" => {
                    let tag = r.str().map_err(io_err)?;
                    let key = r.str().map_err(io_err)?;
                    let attempt = r.u32().map_err(io_err)?;
                    events.push((tag, key, attempt));
                }
                other => return Err(io_err(format!("bad journal record tag `{other}`"))),
            }
        }
        Ok(CellJournal {
            journal: open.journal,
            completed,
            events,
            recorded: Mutex::new(std::collections::HashSet::new()),
        })
    }

    /// Number of completed cells available for replay.
    pub fn replayable(&self) -> usize {
        self.completed.len()
    }

    /// The journaled outcome for `key`, if the fingerprint matches the
    /// cell the caller is about to run. A mismatch (same position,
    /// different content — the configuration changed between lives)
    /// reads as absent and the cell recomputes.
    pub fn replay(&self, key: &str, fp: u128) -> Option<&ReplayedOutcome> {
        match self.completed.get(key) {
            Some((stored_fp, outcome)) if *stored_fp == fp => Some(outcome),
            _ => None,
        }
    }

    /// Journal a successful cell. `ok_tokens` is the result's
    /// [`DurableResult::encode`] token string.
    pub fn record_ok(&self, key: &str, fp: u128, ok_tokens: &str) {
        if !self.recorded.lock().unwrap().insert(key.to_string()) {
            return;
        }
        let mut w = Writer::new();
        w.word("cell").str(key).u128_hex(fp).word("ok");
        let payload = if ok_tokens.is_empty() {
            w.finish()
        } else {
            format!("{} {ok_tokens}", w.finish())
        };
        let _ = self.journal.append(&payload);
    }

    /// Journal a quarantined cell.
    pub fn record_err(&self, key: &str, fp: u128, reason: &str, attempts: u32, injected: bool) {
        if !self.recorded.lock().unwrap().insert(key.to_string()) {
            return;
        }
        let mut w = Writer::new();
        w.word("cell").str(key).u128_hex(fp).word("err");
        w.str(reason).u64(attempts as u64).bool(injected);
        let _ = self.journal.append(&w.finish());
    }

    /// Journal an injected fault event (called from the faults event
    /// sink). Uses the unrolled append: an event record must never
    /// host the fault it is recording.
    pub fn record_event(&self, tag: &str, site: &str, attempt: u32) {
        let mut w = Writer::new();
        w.word("event").str(tag).str(site).u64(attempt as u64);
        let _ = self.journal.append_unrolled(&w.finish());
    }

    /// Re-inject the previous life's fault events into the current
    /// ledger, *filtered to fault kinds active in the current config*:
    /// a resume without `--inject` reports no faults (parity with a
    /// clean run), a resume with the same spec reports the union of
    /// restored and new events (parity with an uninterrupted chaos
    /// run). Call after `paccport_faults::configure`.
    pub fn restore_fault_events(&self) -> usize {
        let mut restored = 0;
        for (tag, site, attempt) in &self.events {
            let Some(kind) = paccport_faults::FaultKind::from_tag(tag) else {
                continue;
            };
            if paccport_faults::kind_active(kind) {
                paccport_faults::restore_event(kind, site, *attempt);
                restored += 1;
            }
        }
        restored
    }
}

fn io_err(msg: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// The durable artifact tier: `paccport-persist`'s checksummed file
/// store speaking the compilers crate's [`ArtifactStore`] contract.
/// Hit/miss/evict accounting lives in the cache (`disk_cache_*_total`
/// metrics); this adapter only moves verified bytes.
pub struct DiskArtifactStore {
    store: BlobStore,
}

impl DiskArtifactStore {
    /// Open (creating if needed) the store under `state_dir`.
    pub fn open(state_dir: &Path) -> io::Result<DiskArtifactStore> {
        Ok(DiskArtifactStore {
            store: BlobStore::open(&state_dir.join(CACHE_DIR))?,
        })
    }
}

impl ArtifactStore for DiskArtifactStore {
    fn load(&self, name: &str) -> Option<String> {
        self.store.get(name)
    }

    fn store(&self, name: &str, payload: &str) {
        // Best-effort: a full disk must not kill the run — the next
        // life recompiles instead of resuming warm.
        let _ = self.store.put(name, payload);
    }

    fn evict(&self, name: &str) {
        self.store.evict(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("paccport-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_measured() -> Measured {
        let mut counts = CategoryCounts::default();
        counts.set(paccport_ptx::Category::Arithmetic, 12);
        counts.set(paccport_ptx::Category::GlobalMemory, 7);
        Measured {
            series: "CAPS-CUDA-K40 / Base".into(),
            variant: "Dist(256,16)".into(),
            seconds: 1.25,
            kernel_seconds: 0.75,
            transfer_seconds: 0.5,
            config: "256x16".into(),
            counts,
            h2d: 3,
            d2h: 2,
            launches: 9,
            on_device: true,
            while_iterations: 4,
            transfers_per_while_iter: 2.5,
            transfers_outside_while: 1,
        }
    }

    fn round_trip<T: DurableResult + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let rec = w.finish();
        let mut r = Reader::new(&rec);
        let back = T::decode(&mut r).unwrap();
        r.end().unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn measured_round_trips_bit_exactly() {
        round_trip(&sample_measured());
        // NaN-free but denormal/exotic values still bit-exact.
        let mut m = sample_measured();
        m.seconds = f64::from_bits(0x0000_0000_0000_0001);
        m.transfers_per_while_iter = f64::INFINITY;
        round_trip(&m);
    }

    #[test]
    fn cell_check_round_trips() {
        let check = CellCheck {
            rows: vec![SoundnessRow {
                benchmark: "lud".into(),
                series: "CAPS-CUDA-K40".into(),
                variant: "Base".into(),
                kernel: "fan1".into(),
                level: 1,
                proven_independent: true,
                verdict: "independent".into(),
                races: 0,
                race_note: String::new(),
                miscompiled: false,
                lost_update_demo: false,
                consistent: true,
            }],
            accesses: 12345,
        };
        round_trip(&check);
    }

    #[test]
    fn cells_replay_across_lives_and_fingerprints_gate_replay() {
        let d = tmp("replay");
        let j = CellJournal::open(&d, false).unwrap();
        let m = sample_measured();
        let mut w = Writer::new();
        m.encode(&mut w);
        j.record_ok("m0/c0", 0xabc, &w.finish());
        j.record_err("m0/c1", 0xdef, "[injected] device fault", 3, true);
        drop(j);

        let j2 = CellJournal::open(&d, true).unwrap();
        assert_eq!(j2.replayable(), 2);
        // Success replays and decodes to the original value.
        let ok = j2
            .replay("m0/c0", 0xabc)
            .expect("hit")
            .as_ref()
            .unwrap()
            .clone();
        let mut r = Reader::new(&ok);
        assert_eq!(Measured::decode(&mut r).unwrap(), m);
        // Failure replays with its metadata.
        let err = j2
            .replay("m0/c1", 0xdef)
            .expect("hit")
            .as_ref()
            .unwrap_err()
            .clone();
        assert_eq!(err.attempts, 3);
        assert!(err.injected);
        // Fingerprint mismatch and unknown keys read as absent.
        assert!(j2.replay("m0/c0", 0xabd).is_none());
        assert!(j2.replay("m9/c9", 0xabc).is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fresh_open_discards_previous_records() {
        let d = tmp("fresh");
        let j = CellJournal::open(&d, false).unwrap();
        j.record_ok("m0/c0", 1, "");
        drop(j);
        let j2 = CellJournal::open(&d, false).unwrap();
        assert_eq!(j2.replayable(), 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn duplicate_cell_keys_journal_once() {
        let d = tmp("dupe");
        let j = CellJournal::open(&d, false).unwrap();
        j.record_ok("m0/c0", 1, "");
        j.record_ok("m0/c0", 1, "");
        drop(j);
        assert_eq!(CellJournal::open(&d, true).unwrap().replayable(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn version_skew_is_an_error_on_resume() {
        let d = tmp("skew");
        std::fs::create_dir_all(&d).unwrap();
        let jr = Journal::create(&d.join(JOURNAL_FILE)).unwrap();
        jr.append_unrolled("meta 999").unwrap();
        drop(jr);
        assert!(CellJournal::open(&d, true).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fault_events_restore_filtered_to_active_kinds() {
        let d = tmp("events");
        let j = CellJournal::open(&d, false).unwrap();
        j.record_event("crash", "journal:step-000004", 0);
        j.record_event("compile-fail", "CAPS 3.4.1:lud", 1);
        drop(j);

        let j2 = CellJournal::open(&d, true).unwrap();
        // No fault config: nothing is active, nothing restores.
        paccport_faults::deconfigure();
        assert_eq!(j2.restore_fault_events(), 0);
        assert!(paccport_faults::ledger().is_empty());
        // Crash active: only the crash event restores.
        let spec = paccport_faults::FaultSpec::parse("crash:step").unwrap();
        paccport_faults::configure(spec, 7);
        assert_eq!(j2.restore_fault_events(), 1);
        let ledger = paccport_faults::ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].key, "journal:step-000004");
        paccport_faults::deconfigure();
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn disk_store_round_trips_through_the_blob_tier() {
        let d = tmp("store");
        std::fs::create_dir_all(&d).unwrap();
        let s = DiskArtifactStore::open(&d).unwrap();
        assert_eq!(s.load("k"), None);
        s.store("k", "payload tokens");
        assert_eq!(s.load("k").as_deref(), Some("payload tokens"));
        s.evict("k");
        assert_eq!(s.load("k"), None);
        let _ = std::fs::remove_dir_all(&d);
    }
}
