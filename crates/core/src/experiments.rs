//! Generators for every table and figure of the paper's evaluation.
//!
//! Each `figN_*` / `tabN_*` function reruns the corresponding
//! experiment on the simulated test bed and returns structured data;
//! `crate::report` renders them, the `reproduce` binary prints them,
//! and the integration tests assert their shapes against the paper's
//! findings.
//!
//! Every matrix-shaped generator comes in two forms: `figN_on(&Engine,
//! scale)` fans the cells out through the engine's worker pool and
//! shared compile cache, and the original `figN(scale)` delegates to a
//! fresh serial engine. Cell order (and therefore report output) is
//! identical in both.

use crate::engine::Engine;
use crate::ppr::{PprComparison, PprEntry};
use crate::ptxcmp::{PtxBar, PtxFigure};
use crate::soundness::{check_cell, CheckCell, SoundnessReport};
use crate::study::{CellSpec, ElapsedFigure, Measured, Scale};
use paccport_compilers::{CompileOptions, CompilerId, Flag, HostCompiler};
use paccport_devsim::{sweep, CostHints, HeatMap, RunConfig};
use paccport_hydro as hydro;
use paccport_kernels::{backprop, bfs, gaussian, lud, VariantCfg};

fn gpu() -> CompileOptions {
    CompileOptions::gpu()
}

fn mic() -> CompileOptions {
    CompileOptions::mic()
}

fn bar_from(m: &Measured) -> PtxBar {
    PtxBar {
        label: format!("{} / {}", m.series, m.variant),
        config: m.config.clone(),
        counts: m.counts,
        memcpy_h2d: m.h2d,
        memcpy_d2h: m.d2h,
        launches: m.launches,
    }
}

/// Run an experiment matrix and build an [`ElapsedFigure`] that
/// completes with partial results: quarantined cells land in
/// `failures` (rendered as explicit `FAILED(reason, attempts)`
/// entries) instead of aborting the figure.
fn elapsed_figure(eng: &Engine, id: &str, title: &str, cells: Vec<CellSpec>) -> ElapsedFigure {
    let order: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.series.clone(), c.variant.clone()))
        .collect();
    let mut points = Vec::new();
    let mut failures = Vec::new();
    for r in eng.measure_matrix_detailed(cells) {
        match r {
            Ok(m) => points.push(m),
            Err(f) => failures.push(f),
        }
    }
    ElapsedFigure {
        id: id.into(),
        title: title.into(),
        points,
        failures,
        order,
    }
}

// ===================================================================
// LUD (Figures 3, 4, 6)
// ===================================================================

/// The Fig.-3 variant ladder for LUD.
pub fn lud_variants() -> Vec<(String, VariantCfg)> {
    let dist = VariantCfg::thread_dist(256, 16);
    let mut unroll = dist;
    unroll.unroll = Some(8);
    let mut tile = dist;
    tile.tile = Some(32);
    vec![
        ("Base".into(), VariantCfg::baseline()),
        ("ThreadDist".into(), dist),
        ("Unroll".into(), unroll),
        ("Tile".into(), tile),
    ]
}

/// Figure 3: elapsed time of LUD on GPU and MIC per optimization step.
pub fn fig3_lud(scale: &Scale) -> ElapsedFigure {
    fig3_lud_on(&Engine::serial(), scale)
}

/// [`fig3_lud`] through a shared engine.
pub fn fig3_lud_on(eng: &Engine, scale: &Scale) -> ElapsedFigure {
    let cfg = RunConfig::timing(vec![("n".into(), scale.lud_n as f64)], 1);
    let mut cells = Vec::new();
    for (variant, vc) in lud_variants() {
        let p = lud::program(&vc);
        for (series, compiler, opts) in [
            ("CAPS-CUDA-K40", CompilerId::Caps, gpu()),
            ("CAPS-OCL-5110P", CompilerId::Caps, mic()),
            ("PGI-K40", CompilerId::Pgi, gpu()),
        ] {
            cells.push(CellSpec::new(
                series,
                &variant,
                compiler,
                opts,
                p.clone(),
                cfg.clone(),
            ));
        }
    }
    elapsed_figure(
        eng,
        "fig3",
        "Elapsed time of LUD OpenACC on GPU and MIC",
        cells,
    )
}

/// Figure 4: the three thread-distribution heat maps for LUD.
pub fn fig4_heatmaps(scale: &Scale) -> Vec<HeatMap> {
    fig4_heatmaps_on(&Engine::serial(), scale)
}

/// [`fig4_heatmaps`] with the three sweeps batched on the engine (each
/// sweep additionally parallelizes its own rows internally).
pub fn fig4_heatmaps_on(eng: &Engine, scale: &Scale) -> Vec<HeatMap> {
    let gangs: Vec<u32> = vec![1, 32, 64, 128, 240, 256, 512, 1024];
    let workers: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64];
    let p = lud::program(&VariantCfg::baseline());
    let cfg = RunConfig::timing(vec![("n".into(), scale.lud_n as f64)], 1);
    let configure = |p: &mut paccport_ir::Program, g: u32, w: u32| {
        p.map_kernels(|k| {
            for lp in &mut k.loops {
                lp.clauses.gang = Some(g);
                lp.clauses.worker = Some(w);
            }
        });
    };
    let sweeps = [
        ("CAPS-K40", CompilerId::Caps, gpu()),
        ("PGI-K40", CompilerId::Pgi, gpu()),
        ("CAPS-MIC (5110P)", CompilerId::Caps, mic()),
    ];
    let tasks: Vec<_> = sweeps
        .iter()
        .map(|(title, compiler, opts)| {
            let (p, cfg, gangs, workers) = (&p, &cfg, &gangs, &workers);
            move || sweep(title, p, *compiler, opts, cfg, gangs, workers, configure)
        })
        .collect();
    eng.run_batch(tasks).into_iter().flatten().collect()
}

/// Figure 6: PTX instruction composition of LUD per step, CAPS vs PGI.
pub fn fig6_lud_ptx(scale: &Scale) -> PtxFigure {
    fig6_lud_ptx_on(&Engine::serial(), scale)
}

/// [`fig6_lud_ptx`] through a shared engine. The CAPS GPU cells reuse
/// the artifacts fig. 3 compiled when both run on one engine.
pub fn fig6_lud_ptx_on(eng: &Engine, scale: &Scale) -> PtxFigure {
    let cfg = RunConfig::timing(vec![("n".into(), scale.lud_n.min(512) as f64)], 1);
    let mut cells = Vec::new();
    for (series, compiler, opts) in [
        ("CAPS-CUDA-K40", CompilerId::Caps, gpu()),
        ("PGI-K40", CompilerId::Pgi, gpu()),
    ] {
        for (variant, vc) in lud_variants() {
            // PGI's unroll knob is the -Munroll flag, not a directive.
            let (p, opts) = if compiler == CompilerId::Pgi && variant == "Unroll" {
                let mut base = lud_variants()[1].1;
                base.unroll = None;
                (lud::program(&base), opts.clone().with_flag(Flag::Munroll))
            } else if compiler == CompilerId::Pgi && variant == "Tile" {
                // PGI does not support tiling (Section V-A1) — skip.
                continue;
            } else {
                (lud::program(&vc), opts.clone())
            };
            cells.push(CellSpec::new(
                series,
                &variant,
                compiler,
                opts,
                p,
                cfg.clone(),
            ));
        }
    }
    PtxFigure {
        id: "fig6".into(),
        title: "PTX instructions of LUD for CAPS and PGI".into(),
        bars: eng
            .measure_matrix(cells)
            .into_iter()
            .flatten()
            .map(|m| bar_from(&m))
            .collect(),
    }
}

// ===================================================================
// Gaussian Elimination (Figures 7, 8, 9)
// ===================================================================

/// The Fig.-7 variant ladder for GE.
pub fn ge_variants() -> Vec<(String, VariantCfg)> {
    let indep = VariantCfg::independent();
    let mut reorg = indep;
    reorg.reorganized = true;
    let mut unroll = reorg;
    unroll.unroll = Some(8);
    let mut tile = reorg;
    tile.tile = Some(32);
    vec![
        ("Base".into(), VariantCfg::baseline()),
        ("Indep".into(), indep),
        ("Reorg".into(), reorg),
        ("Unroll".into(), unroll),
        ("Tile".into(), tile),
    ]
}

/// Figure 7: elapsed time of GE, including the OpenCL versions.
pub fn fig7_ge(scale: &Scale) -> ElapsedFigure {
    fig7_ge_on(&Engine::serial(), scale)
}

/// [`fig7_ge`] through a shared engine.
pub fn fig7_ge_on(eng: &Engine, scale: &Scale) -> ElapsedFigure {
    let cfg = RunConfig::timing(vec![("n".into(), scale.ge_n as f64)], 1);
    let mut cells = Vec::new();
    for (variant, vc) in ge_variants() {
        let p = gaussian::program(&vc);
        for (series, compiler, opts) in [
            ("CAPS-CUDA-K40", CompilerId::Caps, gpu()),
            ("CAPS-OCL-5110P", CompilerId::Caps, mic()),
            ("PGI-K40", CompilerId::Pgi, gpu()),
        ] {
            // PGI unroll = -Munroll on the reorganized version.
            let (p2, opts) = if compiler == CompilerId::Pgi && variant == "Unroll" {
                let mut reorg = VariantCfg::independent();
                reorg.reorganized = true;
                (
                    gaussian::program(&reorg),
                    opts.clone().with_flag(Flag::Munroll),
                )
            } else {
                (p.clone(), opts.clone())
            };
            cells.push(CellSpec::new(
                series,
                &variant,
                compiler,
                opts,
                p2,
                cfg.clone(),
            ));
        }
    }
    // The hand-written OpenCL versions (baseline + Fig. 8 advanced).
    for (variant, adv) in [("OCL-Base", false), ("OCL-Advanced", true)] {
        let p = gaussian::opencl_program(adv);
        for (series, opts) in [("OCL-K40", gpu()), ("OCL-5110P", mic())] {
            cells.push(CellSpec::new(
                series,
                variant,
                CompilerId::OpenClHand,
                opts,
                p.clone(),
                cfg.clone(),
            ));
        }
    }
    elapsed_figure(
        eng,
        "fig7",
        "Elapsed time of GE OpenACC on GPU and MIC",
        cells,
    )
}

/// Figure 8: the advanced thread-distribution configuration lifted
/// from CAPS's generated HMPP codelets, rendered as the paper shows.
pub fn fig8_advanced_config() -> String {
    [
        "// i is the loop iteration of outer loop.",
        "hmppcg_call.setSizeX((Size - i - 1) / 32 + 1);  // global work group size, X",
        "hmppcg_call.setSizeY((Size - 1 - i - 1) / 4 + 1); // global work group size, Y",
        "hmppcg_call.setBlockSizeX(32);                  // local work group size",
        "hmppcg_call.setBlockSizeY(4);                   // local work group size",
        "hmppcg_call.setWorkDim(2);",
    ]
    .join("\n")
}

/// Figure 9: GE PTX composition with memcpy and kernel-launch rows.
pub fn fig9_ge_ptx(scale: &Scale) -> PtxFigure {
    fig9_ge_ptx_on(&Engine::serial(), scale)
}

/// [`fig9_ge_ptx`] through a shared engine.
pub fn fig9_ge_ptx_on(eng: &Engine, scale: &Scale) -> PtxFigure {
    let n = scale.ge_n.min(512) as f64;
    let cfg = RunConfig::timing(vec![("n".into(), n)], 1);
    let mut cells = Vec::new();
    // OpenCL first (the paper's left bars).
    cells.push(CellSpec::new(
        "OCL-K40",
        "Base",
        CompilerId::OpenClHand,
        gpu(),
        gaussian::opencl_program(false),
        cfg.clone(),
    ));
    for (series, compiler) in [
        ("CAPS-CUDA-K40", CompilerId::Caps),
        ("PGI-K40", CompilerId::Pgi),
    ] {
        for (variant, vc) in ge_variants() {
            let (p, opts) = if compiler == CompilerId::Pgi && variant == "Unroll" {
                let mut reorg = VariantCfg::independent();
                reorg.reorganized = true;
                (gaussian::program(&reorg), gpu().with_flag(Flag::Munroll))
            } else if compiler == CompilerId::Pgi && variant == "Tile" {
                continue;
            } else {
                (gaussian::program(&vc), gpu())
            };
            cells.push(CellSpec::new(
                series,
                &variant,
                compiler,
                opts,
                p,
                cfg.clone(),
            ));
        }
    }
    PtxFigure {
        id: "fig9".into(),
        title: "PTX instructions of GE for CAPS and PGI".into(),
        bars: eng
            .measure_matrix(cells)
            .into_iter()
            .flatten()
            .map(|m| bar_from(&m))
            .collect(),
    }
}

// ===================================================================
// BFS (Figures 10, 11; Table VII)
// ===================================================================

fn bfs_cfg(scale: &Scale) -> RunConfig {
    RunConfig::timing(
        vec![
            ("n".into(), scale.bfs_n as f64),
            (
                "nedges".into(),
                (scale.bfs_n * (scale.bfs_avg_degree + 1)) as f64,
            ),
            ("source".into(), 0.0),
        ],
        scale.bfs_levels,
    )
    .with_hints(bfs_hints(scale))
}

fn bfs_hints(scale: &Scale) -> CostHints {
    bfs::hints(
        scale.bfs_avg_degree as f64 + 1.0,
        1.0 / scale.bfs_levels as f64,
    )
}

/// Figure 10: elapsed time of BFS.
pub fn fig10_bfs(scale: &Scale) -> ElapsedFigure {
    fig10_bfs_on(&Engine::serial(), scale)
}

/// [`fig10_bfs`] through a shared engine.
pub fn fig10_bfs_on(eng: &Engine, scale: &Scale) -> ElapsedFigure {
    let cfg = bfs_cfg(scale);
    let mut cells = Vec::new();
    for (variant, vc) in [
        ("Base", VariantCfg::baseline()),
        ("Indep", VariantCfg::independent()),
    ] {
        let p = bfs::program(&vc);
        for (series, compiler, opts) in [
            ("CAPS-CUDA-K40", CompilerId::Caps, gpu()),
            ("CAPS-OCL-5110P", CompilerId::Caps, mic()),
            ("PGI-K40", CompilerId::Pgi, gpu()),
        ] {
            cells.push(CellSpec::new(
                series,
                variant,
                compiler,
                opts,
                p.clone(),
                cfg.clone(),
            ));
        }
    }
    let p = bfs::opencl_program();
    for (series, opts) in [("OCL-K40", gpu()), ("OCL-5110P", mic())] {
        cells.push(CellSpec::new(
            series,
            "OCL",
            CompilerId::OpenClHand,
            opts,
            p.clone(),
            cfg.clone(),
        ));
    }
    elapsed_figure(eng, "fig10", "Elapsed time of BFS on GPU and MIC", cells)
}

/// Figure 11: BFS PTX composition (incl. the PGI stub discovery).
pub fn fig11_bfs_ptx(scale: &Scale) -> PtxFigure {
    fig11_bfs_ptx_on(&Engine::serial(), scale)
}

/// [`fig11_bfs_ptx`] through a shared engine.
pub fn fig11_bfs_ptx_on(eng: &Engine, scale: &Scale) -> PtxFigure {
    let cfg = bfs_cfg(scale);
    let mut cells = vec![CellSpec::new(
        "OCL-K40",
        "OCL",
        CompilerId::OpenClHand,
        gpu(),
        bfs::opencl_program(),
        cfg.clone(),
    )];
    for (series, compiler) in [
        ("CAPS-CUDA-K40", CompilerId::Caps),
        ("PGI-K40", CompilerId::Pgi),
    ] {
        for (variant, vc) in [
            ("Base", VariantCfg::baseline()),
            ("Indep", VariantCfg::independent()),
        ] {
            cells.push(CellSpec::new(
                series,
                variant,
                compiler,
                gpu(),
                bfs::program(&vc),
                cfg.clone(),
            ));
        }
    }
    PtxFigure {
        id: "fig11".into(),
        title: "PTX instructions of BFS for CAPS and PGI".into(),
        bars: eng
            .measure_matrix(cells)
            .into_iter()
            .flatten()
            .map(|m| bar_from(&m))
            .collect(),
    }
}

/// One row of Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    pub compiler: String,
    pub default_mode: String,
    pub with_independent_mode: String,
    pub data_transfers: String,
}

/// Table VII: BFS execution modes and data transfers.
pub fn tab7_bfs(scale: &Scale) -> Vec<Table7Row> {
    tab7_bfs_on(&Engine::serial(), scale)
}

/// [`tab7_bfs`] through a shared engine. Its four cells are the same
/// BFS GPU artifacts as fig. 10/11, so on a shared engine they are
/// pure cache hits.
pub fn tab7_bfs_on(eng: &Engine, scale: &Scale) -> Vec<Table7Row> {
    let cfg = bfs_cfg(scale);
    let mut cells = Vec::new();
    for (name, compiler) in [("CAPS", CompilerId::Caps), ("PGI", CompilerId::Pgi)] {
        cells.push(CellSpec::new(
            name,
            "Base",
            compiler,
            gpu(),
            bfs::program(&VariantCfg::baseline()),
            cfg.clone(),
        ));
        cells.push(CellSpec::new(
            name,
            "Indep",
            compiler,
            gpu(),
            bfs::program(&VariantCfg::independent()),
            cfg.clone(),
        ));
    }
    let mut measured = eng.measure_matrix(cells).into_iter();
    let mut rows = Vec::new();
    for (name, _) in [("CAPS", CompilerId::Caps), ("PGI", CompilerId::Pgi)] {
        // A quarantined cell drops its row (it is already in the
        // engine's quarantine ledger) instead of aborting the table.
        let (Ok(base), Ok(indep)) = (
            measured.next().expect("matrix preserves arity"),
            measured.next().expect("matrix preserves arity"),
        ) else {
            continue;
        };
        let transfers = if indep.transfers_per_while_iter >= 1.0 {
            format!(
                "{:.0} times in each iteration",
                indep.transfers_per_while_iter
            )
        } else {
            format!("{} times in total", indep.h2d + indep.d2h)
        };
        rows.push(Table7Row {
            compiler: name.into(),
            default_mode: base.exec_mode().into(),
            with_independent_mode: indep.exec_mode().into(),
            data_transfers: transfers,
        });
    }
    rows
}

// ===================================================================
// Back Propagation (Figures 12, 13, 14)
// ===================================================================

fn bp_cfg(scale: &Scale) -> RunConfig {
    RunConfig::timing(
        vec![
            ("n_in".into(), scale.bp_in as f64),
            ("n_hid".into(), scale.bp_hid as f64),
        ],
        1,
    )
}

/// The Fig.-12/14 variant ladder for BP.
pub fn bp_variants() -> Vec<(String, VariantCfg)> {
    let indep = VariantCfg::independent();
    let mut red = indep;
    red.reduction = true;
    let mut unroll = red;
    unroll.unroll = Some(8);
    vec![
        ("Base".into(), VariantCfg::baseline()),
        ("Indep".into(), indep),
        ("Reduction".into(), red),
        ("Unroll".into(), unroll),
    ]
}

/// Figure 12: elapsed time of BP.
pub fn fig12_bp(scale: &Scale) -> ElapsedFigure {
    fig12_bp_on(&Engine::serial(), scale)
}

/// [`fig12_bp`] through a shared engine.
pub fn fig12_bp_on(eng: &Engine, scale: &Scale) -> ElapsedFigure {
    let cfg = bp_cfg(scale);
    let mut cells = Vec::new();
    for (variant, vc) in bp_variants() {
        let p = backprop::program(&vc);
        for (series, compiler, opts) in [
            ("CAPS-CUDA-K40", CompilerId::Caps, gpu()),
            ("CAPS-OCL-5110P", CompilerId::Caps, mic()),
            ("PGI-K40", CompilerId::Pgi, gpu()),
        ] {
            cells.push(CellSpec::new(
                series,
                &variant,
                compiler,
                opts,
                p.clone(),
                cfg.clone(),
            ));
        }
    }
    let p = backprop::opencl_program(128);
    for (series, opts) in [("OCL-K40", gpu()), ("OCL-5110P", mic())] {
        cells.push(CellSpec::new(
            series,
            "OCL",
            CompilerId::OpenClHand,
            opts,
            p.clone(),
            cfg.clone(),
        ));
    }
    elapsed_figure(eng, "fig12", "Elapsed time of BP on GPU and MIC", cells)
}

/// Figure 13: the shared-memory tree reduction, as lowered by the
/// compilers for the `reduction` directive (rendered IR).
pub fn fig13_reduction_listing() -> String {
    fig13_reduction_listing_on(&Engine::serial())
}

/// [`fig13_reduction_listing`] compiling through the engine's cache —
/// the same artifact fig. 12's Reduction cell uses.
pub fn fig13_reduction_listing_on(eng: &Engine) -> String {
    let mut vc = VariantCfg::independent();
    vc.reduction = true;
    let p = backprop::program(&vc);
    let c = eng
        .compile_resilient(CompilerId::Caps, &p, &gpu())
        .expect("compile");
    let k = c.program.kernel("layer_forward").expect("forward kernel");
    paccport_ir::kernel_to_string(&c.program, k)
}

/// Figure 14: BP PTX composition.
pub fn fig14_bp_ptx(scale: &Scale) -> PtxFigure {
    fig14_bp_ptx_on(&Engine::serial(), scale)
}

/// [`fig14_bp_ptx`] through a shared engine.
pub fn fig14_bp_ptx_on(eng: &Engine, scale: &Scale) -> PtxFigure {
    let cfg = bp_cfg(scale);
    let mut cells = vec![CellSpec::new(
        "OCL-K40",
        "OCL",
        CompilerId::OpenClHand,
        gpu(),
        backprop::opencl_program(128),
        cfg.clone(),
    )];
    for (series, compiler) in [
        ("CAPS-CUDA-K40", CompilerId::Caps),
        ("PGI-K40", CompilerId::Pgi),
    ] {
        for (variant, vc) in bp_variants() {
            cells.push(CellSpec::new(
                series,
                &variant,
                compiler,
                gpu(),
                backprop::program(&vc),
                cfg.clone(),
            ));
        }
    }
    PtxFigure {
        id: "fig14".into(),
        title: "PTX instructions of BP for CAPS and PGI".into(),
        bars: eng
            .measure_matrix(cells)
            .into_iter()
            .flatten()
            .map(|m| bar_from(&m))
            .collect(),
    }
}

// ===================================================================
// Hydro (Figure 15)
// ===================================================================

/// Figure 15: Hydro elapsed times — OpenCL vs CAPS OpenACC, GPU vs
/// MIC, GCC vs Intel host compiler.
pub fn fig15_hydro(scale: &Scale) -> ElapsedFigure {
    fig15_hydro_on(&Engine::serial(), scale)
}

/// [`fig15_hydro`] through a shared engine.
pub fn fig15_hydro_on(eng: &Engine, scale: &Scale) -> ElapsedFigure {
    let cfg = hydro::timing_run_config(scale.hydro_n, scale.hydro_n, scale.hydro_steps);
    let mut cells = Vec::new();
    let variants = [
        ("Base", hydro::HydroVariant::Baseline),
        ("Indep+Dist", hydro::HydroVariant::Optimized),
    ];
    for (variant, hv) in variants {
        let p = hydro::program(hv);
        for (series, opts) in [
            ("ACC-K40 (GCC)", gpu()),
            (
                "ACC-K40 (ICC)",
                gpu().with_host_compiler(HostCompiler::Intel),
            ),
            ("ACC-5110P (GCC)", mic()),
            (
                "ACC-5110P (ICC)",
                mic().with_host_compiler(HostCompiler::Intel),
            ),
        ] {
            cells.push(CellSpec::new(
                series,
                variant,
                CompilerId::Caps,
                opts,
                p.clone(),
                cfg.clone(),
            ));
        }
    }
    let p = hydro::program(hydro::HydroVariant::OpenCl);
    for (series, opts) in [("OCL-K40", gpu()), ("OCL-5110P", mic())] {
        cells.push(CellSpec::new(
            series,
            "OCL",
            CompilerId::OpenClHand,
            opts,
            p.clone(),
            cfg.clone(),
        ));
    }
    elapsed_figure(
        eng,
        "fig15",
        "Elapsed time of Hydro: OpenCL vs CAPS OpenACC",
        cells,
    )
}

// ===================================================================
// PPR (Figure 16)
// ===================================================================

/// Figure 16: PPR of the optimized CAPS OpenACC versions vs the
/// OpenCL versions across GPU and MIC, for GE, BFS, BP and Hydro
/// (LUD is excluded, as in the paper: its OpenCL version uses a
/// different algorithm).
pub fn fig16_ppr(scale: &Scale) -> Vec<PprComparison> {
    fig16_ppr_on(&Engine::serial(), scale)
}

/// [`fig16_ppr`] through a shared engine: 4 benchmarks × 4 timings
/// (OpenACC/OpenCL × GPU/MIC) as one 16-cell batch.
pub fn fig16_ppr_on(eng: &Engine, scale: &Scale) -> Vec<PprComparison> {
    // GE: optimized (reorganized + independent) vs OpenCL baseline.
    // BP: optimized = independent (the reduction is wrong on MIC, so
    // the paper's portable version stops at independent).
    let mut ge_vc = VariantCfg::independent();
    ge_vc.reorganized = true;
    let benches: Vec<(&str, paccport_ir::Program, paccport_ir::Program, RunConfig)> = vec![
        (
            "GE",
            gaussian::program(&ge_vc),
            gaussian::opencl_program(false),
            RunConfig::timing(vec![("n".into(), scale.ge_n as f64)], 1),
        ),
        (
            "BFS",
            bfs::program(&VariantCfg::independent()),
            bfs::opencl_program(),
            bfs_cfg(scale),
        ),
        (
            "BP",
            backprop::program(&VariantCfg::independent()),
            backprop::opencl_program(128),
            bp_cfg(scale),
        ),
        (
            "Hydro",
            hydro::program(hydro::HydroVariant::Optimized),
            hydro::program(hydro::HydroVariant::OpenCl),
            hydro::timing_run_config(scale.hydro_n, scale.hydro_n, scale.hydro_steps),
        ),
    ];

    let mut cells = Vec::new();
    for (bench, acc_prog, ocl_prog, cfg) in &benches {
        for (prog, id, model) in [
            (acc_prog, CompilerId::Caps, "ACC"),
            (ocl_prog, CompilerId::OpenClHand, "OCL"),
        ] {
            for (opts, dev) in [(gpu(), "GPU"), (mic(), "MIC")] {
                cells.push(CellSpec::new(
                    *bench,
                    format!("{model}-{dev}"),
                    id,
                    opts,
                    prog.clone(),
                    cfg.clone(),
                ));
            }
        }
    }
    let times: Vec<Option<f64>> = eng
        .measure_matrix(cells)
        .into_iter()
        .map(|r| r.ok().map(|m| m.seconds))
        .collect();

    let mut out = Vec::new();
    for (b, (bench, ..)) in benches.iter().enumerate() {
        // Cell layout per bench: [acc-gpu, acc-mic, ocl-gpu, ocl-mic].
        let t = |i: usize| times[b * 4 + i];
        let comparison = (|| {
            Some(PprComparison {
                openacc: PprEntry {
                    benchmark: (*bench).into(),
                    version: "OpenACC (CAPS)".into(),
                    gpu_seconds: t(0)?,
                    mic_seconds: t(1)?,
                },
                opencl: PprEntry {
                    benchmark: (*bench).into(),
                    version: "OpenCL".into(),
                    gpu_seconds: t(2)?,
                    mic_seconds: t(3)?,
                },
            })
        })();
        if let Some(c) = comparison {
            out.push(c);
        }
    }
    out
}

// ===================================================================
// Extensions: the paper's future work, implemented
// ===================================================================

/// Extension 1 (Section VII: adopting OpenARC + auto-tuning): compare
/// the hand-written method's LUD distribution against an
/// OpenARC-style per-kernel auto-tune, on both devices.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtAutotuneRow {
    pub device: String,
    pub hand_seconds: f64,
    pub tuned_seconds: f64,
    pub tuned_configs: Vec<(String, u32, u32)>,
    pub tuning_runs: usize,
}

/// Run extension 1 on LUD.
pub fn ext1_autotune_vs_hand(scale: &Scale) -> Vec<ExtAutotuneRow> {
    ext1_autotune_vs_hand_on(&Engine::serial(), scale)
}

/// [`ext1_autotune_vs_hand`] with the two device rows batched on the
/// engine (each row's auto-tune search stays internal to its task).
pub fn ext1_autotune_vs_hand_on(eng: &Engine, scale: &Scale) -> Vec<ExtAutotuneRow> {
    use crate::autotune::{autotune_distribution, default_candidates};
    use crate::study::measure_cached;
    let cfg = RunConfig::timing(vec![("n".into(), scale.lud_n as f64)], 1);
    let hand = lud::program(&VariantCfg::thread_dist(256, 16));
    let base = lud::program(&VariantCfg::baseline());
    let (cfg, hand, base) = (&cfg, &hand, &base);
    let jobs: Vec<_> = [("K40", gpu()), ("5110P", mic())]
        .into_iter()
        .map(|(device, opts)| {
            let cache = eng.cache();
            let task = move || -> Result<ExtAutotuneRow, String> {
                let t_hand =
                    measure_cached(cache, "x", "hand", CompilerId::OpenArc, &opts, hand, cfg)
                        .map(|m| m.seconds)?;
                let tuned = autotune_distribution(
                    base,
                    CompilerId::OpenArc,
                    &opts,
                    cfg,
                    &default_candidates(),
                )
                .map_err(|e| e.to_string())?;
                let t_tuned = measure_cached(
                    cache,
                    "x",
                    "tuned",
                    CompilerId::OpenArc,
                    &opts,
                    &tuned.program,
                    cfg,
                )
                .map(|m| m.seconds)?;
                Ok(ExtAutotuneRow {
                    device: device.into(),
                    hand_seconds: t_hand,
                    tuned_seconds: t_tuned,
                    tuned_configs: tuned
                        .per_kernel
                        .iter()
                        .map(|t| (t.kernel.clone(), t.chosen.gang, t.chosen.worker))
                        .collect(),
                    tuning_runs: tuned.total_runs,
                })
            };
            (format!("ext1/{device}"), task)
        })
        .collect();
    eng.run_resilient(jobs).into_iter().flatten().collect()
}

/// Extension 2 (Section VII: "inserting the data region directives"):
/// transfers and elapsed time for LUD without any data region, and
/// after Step 5 inserts one.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtDataRegionRow {
    pub label: String,
    pub transfers: u64,
    pub seconds: f64,
}

/// Run extension 2 on LUD.
pub fn ext2_data_regions(scale: &Scale) -> Vec<ExtDataRegionRow> {
    ext2_data_regions_on(&Engine::serial(), scale)
}

/// [`ext2_data_regions`] through a shared engine.
pub fn ext2_data_regions_on(eng: &Engine, scale: &Scale) -> Vec<ExtDataRegionRow> {
    let n = scale.lud_n.min(1024);
    let cfg = RunConfig::timing(vec![("n".into(), n as f64)], 1);
    let optimized = lud::program(&VariantCfg::thread_dist(256, 16));
    let stripped = crate::step5::strip_data_regions(&optimized);
    let mut restored = stripped.clone();
    crate::step5::insert_data_regions(&mut restored);
    let labels = [
        "no data region (naive port)",
        "after Step 5 (region inserted)",
    ];
    let cells = vec![
        CellSpec::new(
            "x",
            labels[0],
            CompilerId::Caps,
            gpu(),
            stripped,
            cfg.clone(),
        ),
        CellSpec::new("x", labels[1], CompilerId::Caps, gpu(), restored, cfg),
    ];
    eng.measure_matrix(cells)
        .into_iter()
        .zip(labels)
        .filter_map(|(r, label)| {
            r.ok().map(|m| ExtDataRegionRow {
                label: label.into(),
                transfers: m.h2d + m.d2h,
                seconds: m.seconds,
            })
        })
        .collect()
}

// ===================================================================
// Soundness check: static dependence analysis vs dynamic races
// ===================================================================

/// The full benchmark matrix as functional soundness cells: every
/// variant × target of the evaluation, at sizes small enough to
/// interpret instruction-by-instruction under the race detector but
/// large enough to execute every kernel. See [`crate::soundness`].
pub fn soundness_cells(scale: &Scale) -> Vec<CheckCell> {
    use paccport_devsim::Buffer;
    use paccport_kernels::{diag_dominant_matrix, random_vec};

    let mut cells = Vec::new();
    let acc_targets = [
        ("CAPS-CUDA-K40", CompilerId::Caps, gpu()),
        ("CAPS-OCL-5110P", CompilerId::Caps, mic()),
        ("PGI-K40", CompilerId::Pgi, gpu()),
    ];
    let ocl_targets = [("OCL-K40", gpu()), ("OCL-5110P", mic())];
    let mut push = |benchmark: &str,
                    series: &str,
                    variant: &str,
                    compiler: CompilerId,
                    options: CompileOptions,
                    program: paccport_ir::Program,
                    cfg: RunConfig| {
        cells.push(CheckCell {
            benchmark: benchmark.into(),
            series: series.into(),
            variant: variant.into(),
            compiler,
            options,
            program,
            cfg,
        });
    };

    // LUD: all four optimization steps.
    {
        let n = scale.lud_n.min(48);
        let cfg = RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(diag_dominant_matrix(n, 21)));
        for (variant, vc) in lud_variants() {
            let p = lud::program(&vc);
            for (series, compiler, opts) in &acc_targets {
                push(
                    "LUD",
                    series,
                    &variant,
                    *compiler,
                    opts.clone(),
                    p.clone(),
                    cfg.clone(),
                );
            }
        }
    }

    // GE: the OpenACC ladder plus both hand-written OpenCL versions.
    {
        let n = scale.ge_n.min(48);
        let cfg = RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(diag_dominant_matrix(n, 5)))
            .with_input("b", Buffer::F32(random_vec(n, 6)));
        for (variant, vc) in ge_variants() {
            let p = gaussian::program(&vc);
            for (series, compiler, opts) in &acc_targets {
                push(
                    "GE",
                    series,
                    &variant,
                    *compiler,
                    opts.clone(),
                    p.clone(),
                    cfg.clone(),
                );
            }
        }
        for (variant, adv) in [("OCL-Base", false), ("OCL-Advanced", true)] {
            let p = gaussian::opencl_program(adv);
            for (series, opts) in &ocl_targets {
                push(
                    "GE",
                    series,
                    variant,
                    CompilerId::OpenClHand,
                    opts.clone(),
                    p.clone(),
                    cfg.clone(),
                );
            }
        }
    }

    // BFS: indirect addressing — the analysis refuses, the detector
    // confirms the refusal was conservative but not wrong.
    {
        let n = scale.bfs_n.min(512);
        let g = bfs::Graph::random(n, scale.bfs_avg_degree.max(1), 17);
        let mut mask = vec![0i32; g.n];
        mask[0] = 1;
        let cfg = RunConfig::functional(vec![
            ("n".into(), g.n as f64),
            ("nedges".into(), g.edges.len() as f64),
            ("source".into(), 0.0),
        ])
        .with_input("nodes", Buffer::I32(g.nodes.clone()))
        .with_input("edges", Buffer::I32(g.edges.clone()))
        .with_input("mask", Buffer::I32(mask));
        for (variant, vc) in [
            ("Base", VariantCfg::baseline()),
            ("Indep", VariantCfg::independent()),
        ] {
            let p = bfs::program(&vc);
            for (series, compiler, opts) in &acc_targets {
                push(
                    "BFS",
                    series,
                    variant,
                    *compiler,
                    opts.clone(),
                    p.clone(),
                    cfg.clone(),
                );
            }
        }
        let p = bfs::opencl_program();
        for (series, opts) in &ocl_targets {
            push(
                "BFS",
                series,
                "OCL",
                CompilerId::OpenClHand,
                opts.clone(),
                p.clone(),
                cfg.clone(),
            );
        }
    }

    // BP: includes the Reduction (and Unroll-on-top-of-Reduction)
    // variants whose CAPS-on-MIC plans are known-wrong — the cells the
    // lost-update demonstration must catch.
    {
        let n_in = scale.bp_in.min(256);
        let n_hid = scale.bp_hid.min(16);
        let w_len = (n_in + 1) * (n_hid + 1);
        let cfg = RunConfig::functional(vec![
            ("n_in".into(), n_in as f64),
            ("n_hid".into(), n_hid as f64),
        ])
        .with_input("input", Buffer::F32(random_vec(n_in + 1, 1)))
        .with_input("w", Buffer::F32(random_vec(w_len, 2)))
        .with_input("delta", Buffer::F32(random_vec(n_hid + 1, 3)))
        .with_input("oldw", Buffer::F32(random_vec(w_len, 4)));
        for (variant, vc) in bp_variants() {
            let p = backprop::program(&vc);
            for (series, compiler, opts) in &acc_targets {
                push(
                    "BP",
                    series,
                    &variant,
                    *compiler,
                    opts.clone(),
                    p.clone(),
                    cfg.clone(),
                );
            }
        }
        let p = backprop::opencl_program(128);
        for (series, opts) in &ocl_targets {
            push(
                "BP",
                series,
                "OCL",
                CompilerId::OpenClHand,
                opts.clone(),
                p.clone(),
                cfg.clone(),
            );
        }
    }

    // Hydro: the full real application (PGI cannot compile it, as in
    // the paper, so only CAPS and the hand-written OpenCL run).
    {
        let n = scale.hydro_n.min(24);
        let steps = scale.hydro_steps.clamp(1, 2);
        let cfg = hydro::sod_run_config(n, n, steps);
        for (variant, hv) in [
            ("Base", hydro::HydroVariant::Baseline),
            ("Indep+Dist", hydro::HydroVariant::Optimized),
        ] {
            let p = hydro::program(hv);
            for (series, opts) in [("ACC-K40", gpu()), ("ACC-5110P", mic())] {
                push(
                    "Hydro",
                    series,
                    variant,
                    CompilerId::Caps,
                    opts,
                    p.clone(),
                    cfg.clone(),
                );
            }
        }
        let p = hydro::program(hydro::HydroVariant::OpenCl);
        for (series, opts) in &ocl_targets {
            push(
                "Hydro",
                series,
                "OCL",
                CompilerId::OpenClHand,
                opts.clone(),
                p.clone(),
                cfg.clone(),
            );
        }
    }

    cells
}

/// Run the soundness check over the whole benchmark matrix.
pub fn check_soundness(scale: &Scale) -> SoundnessReport {
    check_soundness_on(&Engine::serial(), scale)
}

/// [`check_soundness`] with the cells fanned out through a shared
/// engine. Row order is identical to the serial path (submission
/// order is preserved by the engine).
pub fn check_soundness_on(eng: &Engine, scale: &Scale) -> SoundnessReport {
    let _g = paccport_trace::span("soundness.matrix");
    let cells = soundness_cells(scale);
    let mut report = SoundnessReport {
        cells: cells.len(),
        ..Default::default()
    };
    let jobs: Vec<_> = cells
        .into_iter()
        .map(|mut cell| {
            let cache = eng.cache();
            let label = cell.label();
            if cell.cfg.fault_scope.is_none() {
                cell.cfg.fault_scope = Some(label.clone());
            }
            let fp = crate::engine::cell_fingerprint(&format!(
                "{:?} {:?} {:?} {:?} {:?} {:032x} {:?}",
                cell.benchmark,
                cell.series,
                cell.variant,
                cell.compiler,
                cell.options,
                paccport_compilers::fingerprint(&cell.program),
                cell.cfg
            ));
            (label, fp, move || check_cell(cache, &cell))
        })
        .collect();
    for res in eng.run_resilient_journaled("check", jobs) {
        match res {
            Ok(cc) => {
                report.rows.extend(cc.rows);
                report.accesses += cc.accesses;
            }
            Err(f) => report.failures.push(format!(
                "{}: {} [{} attempts]",
                f.label, f.reason, f.attempts
            )),
        }
    }
    report
}

// ===================================================================
// Figure 1 & Table II demos
// ===================================================================

/// Figure 1: shared-memory tiling (CUDA/OpenCL style) vs OpenACC
/// tiling — returns `(shared_memory_ops_cuda_style, shared_memory_ops_openacc_tile)`.
/// The paper's point: the OpenACC pair is always 0.
pub fn fig1_tiling_shared_ops() -> (u64, u64) {
    fig1_tiling_shared_ops_on(&Engine::serial())
}

/// [`fig1_tiling_shared_ops`] compiling through the engine's cache.
pub fn fig1_tiling_shared_ops_on(eng: &Engine) -> (u64, u64) {
    // CUDA-style: BP's hand-written OpenCL forward kernel stages
    // through __local memory.
    let ocl = backprop::opencl_program(128);
    let c_ocl = eng
        .compile_resilient(CompilerId::OpenClHand, &ocl, &gpu())
        .expect("ocl compile");
    let cuda_style = c_ocl
        .module
        .counts()
        .get(paccport_ptx::Category::SharedMemory);
    // OpenACC tile: GE's fan1 with tile(32) under CAPS.
    let mut vc = VariantCfg::independent();
    vc.tile = Some(32);
    let acc = gaussian::program(&vc);
    let c_acc = eng
        .compile_resilient(CompilerId::Caps, &acc, &gpu())
        .expect("acc compile");
    let acc_tile = c_acc
        .module
        .counts()
        .get(paccport_ptx::Category::SharedMemory);
    (cuda_style, acc_tile)
}

/// Table II: the dependent/independent loop pair, as judged by the
/// dependence analysis. Returns `(dependent_loop_refused,
/// independent_loop_accepted)`.
pub fn tab2_dependence_demo() -> (bool, bool) {
    use paccport_ir::{analyze_block, Block, Expr, Stmt};
    let a = paccport_ir::ArrayId(0);
    let i = paccport_ir::VarId(0);
    // A[i] = A[i-1] + 1
    let dependent = Block::new(vec![Stmt::Store {
        space: paccport_ir::MemSpace::Global,
        array: a,
        index: Expr::var(i),
        value: Expr::bin(
            paccport_ir::BinOp::Add,
            Expr::load(
                a,
                Expr::bin(paccport_ir::BinOp::Sub, Expr::var(i), Expr::iconst(1)),
            ),
            Expr::fconst(1.0),
        ),
    }]);
    // A[i] = A[i] + 1
    let independent = Block::new(vec![Stmt::Store {
        space: paccport_ir::MemSpace::Global,
        array: a,
        index: Expr::var(i),
        value: Expr::bin(
            paccport_ir::BinOp::Add,
            Expr::load(a, Expr::var(i)),
            Expr::fconst(1.0),
        ),
    }]);
    (
        !analyze_block(i, &dependent).is_independent(),
        analyze_block(i, &independent).is_independent(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scale {
        Scale::quick()
    }

    #[test]
    fn fig3_shape() {
        let f = fig3_lud(&s());
        // 4 variants × 3 series.
        assert_eq!(f.points.len(), 12);
        let base = f.get("CAPS-CUDA-K40", "Base").unwrap();
        let dist = f.get("CAPS-CUDA-K40", "ThreadDist").unwrap();
        let pgi = f.get("PGI-K40", "Base").unwrap();
        assert!(base.seconds / pgi.seconds > 50.0, "the ~1000x gap");
        assert!(dist.seconds < base.seconds / 50.0, "dist closes it");
        // Unroll and tile do not help further (Fig. 3).
        let unroll = f.get("CAPS-CUDA-K40", "Unroll").unwrap();
        assert!(unroll.seconds > dist.seconds * 0.7);
    }

    #[test]
    fn fig6_shape() {
        let f = fig6_lud_ptx(&s());
        // PGI emits more PTX than CAPS for the same source (V-A3).
        let caps = f
            .bars
            .iter()
            .find(|b| b.label == "CAPS-CUDA-K40 / Base")
            .unwrap();
        let pgi = f.bars.iter().find(|b| b.label == "PGI-K40 / Base").unwrap();
        assert!(pgi.counts.total() > caps.counts.total());
        // ThreadDist does not change the PTX; Tile is silent (each
        // step is applied on top of ThreadDist, so Tile is compared
        // against ThreadDist, not against Unroll).
        let v = f.verdicts("CAPS-CUDA-K40");
        use crate::ptxcmp::{compare_steps, StepVerdict};
        assert_eq!(v[0].1, StepVerdict::Unchanged, "Base -> ThreadDist");
        assert!(matches!(v[1].1, StepVerdict::Changed(_)), "unroll grows");
        let dist = f
            .bars
            .iter()
            .find(|b| b.label == "CAPS-CUDA-K40 / ThreadDist")
            .unwrap();
        let tile = f
            .bars
            .iter()
            .find(|b| b.label == "CAPS-CUDA-K40 / Tile")
            .unwrap();
        assert_eq!(
            compare_steps(&dist.counts, &tile.counts),
            StepVerdict::Unchanged,
            "ThreadDist -> Tile silent"
        );
        assert!(!f.any_shared_memory("CAPS"), "no shared memory ever");
    }

    #[test]
    fn tab2_and_fig1() {
        assert_eq!(tab2_dependence_demo(), (true, true));
        let (cuda, acc) = fig1_tiling_shared_ops();
        assert!(cuda > 0);
        assert_eq!(acc, 0);
    }

    #[test]
    fn fig16_shape() {
        let ppr = fig16_ppr(&s());
        assert_eq!(ppr.len(), 4);
        for c in &ppr {
            assert!(
                c.both_favor_gpu(),
                "{}: PPRs {} / {}",
                c.openacc.benchmark,
                c.openacc.ppr(),
                c.opencl.ppr()
            );
        }
        // At least one benchmark where OpenACC is more portable.
        assert!(
            ppr.iter().any(|c| c.openacc_is_more_portable()),
            "paper: better PPR 'in some cases'"
        );
    }
}
