//! Cross-validation of the static dependence analysis against the
//! device simulator's dynamic race detector (`reproduce --check`).
//!
//! The method's step 1 (`crate::method`) only adds `independent` where
//! `paccport_ir::analyze_loop` proves the loop free of carried
//! dependences. The device simulator independently logs every global-
//! and local-memory access per parallel iteration and flags
//! cross-iteration read-write / write-write conflicts
//! (`paccport_devsim::RaceTracker`). Running both over the same
//! benchmark matrix yields a machine-checkable soundness invariant:
//!
//! * **static ⇒ dynamic**: a loop the analysis proved independent must
//!   show *zero* races on every benchmark input;
//! * **dynamic ⇒ static**: a detected race must land on a loop the
//!   analysis did *not* prove independent (Carried or Unknown);
//! * **known miscompilations are caught**: a kernel plan marked
//!   [`Correctness::Wrong`] (the CAPS `reduction` on MIC,
//!   Section V-D2) must be flagged — its effective lowering, the
//!   lost-update rewrite of the reduction, is executed under the
//!   detector and must produce a write-write race naming the
//!   reduction array and the two conflicting iterations.
//!
//! [`check_cell`] verifies one (program, compiler, device, input)
//! cell; `crate::experiments::check_soundness` sweeps the full
//! benchmark matrix and `crate::report::render_soundness` prints the
//! per-kernel table.

use paccport_compilers::{ArtifactCache, CompileOptions, CompilerId, Correctness};
use paccport_devsim::{run, Buffer, RaceKind, RunConfig};
use paccport_ir::{
    analyze_loop, ld, st, ArrayId, Block, Expr, HostStmt, Intent, Kernel, MemSpace, ParallelLoop,
    Program, ProgramBuilder, Scalar, Stmt,
};

use crate::method::dep_reason;

/// One (program, compiler, device, input) configuration to verify.
#[derive(Debug, Clone)]
pub struct CheckCell {
    pub benchmark: String,
    /// Target label, e.g. "CAPS-CUDA-K40".
    pub series: String,
    pub variant: String,
    pub compiler: CompilerId,
    pub options: CompileOptions,
    pub program: Program,
    /// Functional configuration with real inputs; the race check is
    /// forced on by [`check_cell`].
    pub cfg: RunConfig,
}

impl CheckCell {
    pub fn label(&self) -> String {
        format!("{} {} / {}", self.benchmark, self.variant, self.series)
    }
}

/// The soundness verdict for one kernel at one parallel-loop level of
/// one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SoundnessRow {
    pub benchmark: String,
    pub series: String,
    pub variant: String,
    pub kernel: String,
    /// Parallel-loop nest level the verdict talks about.
    pub level: usize,
    /// Did `analyze_loop` prove this level independent?
    pub proven_independent: bool,
    /// "independent", or the same refusal wording step 1 records.
    pub verdict: String,
    /// Dynamic races the detector attributed to this level.
    pub races: usize,
    /// `Race::describe()` of the first race, if any.
    pub race_note: String,
    /// The compiler plan for this kernel is known-wrong on this target.
    pub miscompiled: bool,
    /// This row ran the lost-update effective lowering of a
    /// known-wrong reduction (where a race is *required*).
    pub lost_update_demo: bool,
    /// Does this row satisfy the invariant?
    pub consistent: bool,
}

/// What [`check_cell`] returns for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCheck {
    pub rows: Vec<SoundnessRow>,
    /// Shadow-logged memory accesses during the cell's run.
    pub accesses: u64,
}

/// The aggregated result over a whole benchmark matrix.
#[derive(Debug, Clone, Default)]
pub struct SoundnessReport {
    pub rows: Vec<SoundnessRow>,
    /// Cells attempted (compile + functional run).
    pub cells: usize,
    /// Total shadow-logged accesses across all cells.
    pub accesses: u64,
    /// Cells that failed to compile or run, with the error.
    pub failures: Vec<String>,
}

impl SoundnessReport {
    /// Rows that violate the invariant.
    pub fn violations(&self) -> Vec<&SoundnessRow> {
        self.rows.iter().filter(|r| !r.consistent).collect()
    }

    /// The check passes: every row consistent and every cell ran.
    ///
    /// Cells quarantined by an *injected* fault (chaos testing) do not
    /// fail the check — they are chaos we asked for, reported in the
    /// fault ledger instead. Genuine failures still fail it.
    pub fn all_consistent(&self) -> bool {
        self.uninjected_failures().is_empty()
            && !self.rows.is_empty()
            && self.rows.iter().all(|r| r.consistent)
    }

    /// Failures that were *not* injected faults — genuine breakage.
    pub fn uninjected_failures(&self) -> Vec<&String> {
        self.failures
            .iter()
            .filter(|f| !paccport_faults::is_injected(f))
            .collect()
    }

    /// Races on loops the static analysis proved independent (the
    /// invariant requires this to be zero).
    pub fn races_on_proven_independent(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.proven_independent && !r.lost_update_demo)
            .map(|r| r.races)
            .sum()
    }

    /// Every known-wrong reduction plan was demonstrated as a
    /// write-write race (and at least one such plan was present).
    pub fn lost_update_caught(&self) -> bool {
        let demos: Vec<_> = self.rows.iter().filter(|r| r.lost_update_demo).collect();
        !demos.is_empty()
            && demos
                .iter()
                .all(|r| r.races > 0 && r.race_note.contains("write-write"))
    }
}

/// Compile one cell through the shared cache, run it functionally
/// under the race detector, and compare the detector's findings
/// against `analyze_loop`'s verdict for every kernel and loop level.
pub fn check_cell(cache: &ArtifactCache, cell: &CheckCell) -> Result<CellCheck, String> {
    let _g = paccport_trace::span("soundness.check_cell");
    let c = cache
        .compile(cell.compiler, &cell.program, &cell.options)
        .map_err(|e| e.to_string())?;
    let r = run(&c, &cell.cfg.clone().with_race_check(true))?;

    let mut rows = Vec::new();
    for k in cell.program.kernels() {
        let miscompiled = matches!(
            c.plan(&k.name).map(|p| &p.correctness),
            Some(Correctness::Wrong { .. })
        );
        let nlev = k.loops.len();
        for level in 0..nlev {
            let rep = analyze_loop(k, level);
            let proven = rep.is_independent();
            let verdict = if proven {
                "independent".to_string()
            } else {
                rep.deps
                    .iter()
                    .map(dep_reason)
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            // Races below every parallel level (same-group lanes,
            // `level == None`) and races the transformed program
            // attributes deeper than the source nest both belong to
            // the innermost source level.
            let races: Vec<_> = r
                .races
                .iter()
                .filter(|x| {
                    x.kernel == k.name
                        && match x.level {
                            Some(l) => l == level || (l >= nlev && level == nlev - 1),
                            None => level == nlev - 1,
                        }
                })
                .collect();
            rows.push(SoundnessRow {
                benchmark: cell.benchmark.clone(),
                series: cell.series.clone(),
                variant: cell.variant.clone(),
                kernel: k.name.clone(),
                level,
                proven_independent: proven,
                verdict,
                races: races.len(),
                race_note: races.first().map(|x| x.describe()).unwrap_or_default(),
                miscompiled,
                lost_update_demo: false,
                consistent: !proven || races.is_empty(),
            });
        }
        if miscompiled {
            rows.push(lost_update_row(cache, cell, k)?);
        }
    }
    Ok(CellCheck {
        rows,
        accesses: r.race_accesses,
    })
}

/// The array a known-wrong reduction kernel accumulates into: the
/// first global store (or atomic) target of its source body.
pub fn reduction_array_name(p: &Program, k: &Kernel) -> Option<String> {
    let body = k.simple_body()?;
    let id = first_store_array(body)?;
    p.arrays.get(id.0 as usize).map(|a| a.name.clone())
}

fn first_store_array(b: &Block) -> Option<ArrayId> {
    for s in &b.0 {
        match s {
            Stmt::Store {
                space: MemSpace::Global,
                array,
                ..
            }
            | Stmt::Atomic { array, .. } => return Some(*array),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if let Some(a) = first_store_array(then_blk).or_else(|| first_store_array(else_blk))
                {
                    return Some(a);
                }
            }
            Stmt::For { body, .. } => {
                if let Some(a) = first_store_array(body) {
                    return Some(a);
                }
            }
            _ => {}
        }
    }
    None
}

/// The effective schedule of the CAPS lost-update miscompilation: the
/// reduction collapses to `acc[0] = acc[0] + x[i]` executed by every
/// parallel iteration with no synchronization. Statically this is a
/// textbook carried dependence (distance 0 on the accumulator);
/// dynamically the detector must flag a write-write race between two
/// concrete iterations.
pub fn lost_update_program(kernel: &str, array: &str) -> (Program, RunConfig) {
    let mut b = ProgramBuilder::new("lost_update_demo");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let out = b.array(array, Scalar::F32, 1i64, Intent::InOut);
    let i = b.var("i");
    let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
    // The miscompiled schedule *claims* the iterations are safe.
    lp.clauses.independent = true;
    let k = Kernel::simple(
        kernel,
        vec![lp],
        Block::new(vec![st(out, 0i64, ld(out, 0i64) + ld(x, i))]),
    );
    let p = b.finish(vec![HostStmt::Launch(k)]);
    let cfg =
        RunConfig::functional(vec![("n".into(), 8.0)]).with_input("x", Buffer::F32(vec![1.0; 8]));
    (p, cfg)
}

/// Run the effective lowering of a known-wrong reduction kernel under
/// the detector. The row is only `consistent` if the detector caught
/// the lost update as a write-write race.
fn lost_update_row(
    cache: &ArtifactCache,
    cell: &CheckCell,
    k: &Kernel,
) -> Result<SoundnessRow, String> {
    let array = reduction_array_name(&cell.program, k).unwrap_or_else(|| "acc".into());
    let (p, cfg) = lost_update_program(&k.name, &array);
    let demo_kernel = p.kernels()[0].clone();
    let c = cache
        .compile(cell.compiler, &p, &cell.options)
        .map_err(|e| e.to_string())?;
    let r = run(&c, &cfg.with_race_check(true))?;
    let ww: Vec<_> = r
        .races
        .iter()
        .filter(|x| x.kind == RaceKind::WriteWrite && x.array == array)
        .collect();
    let rep = analyze_loop(&demo_kernel, 0);
    Ok(SoundnessRow {
        benchmark: cell.benchmark.clone(),
        series: cell.series.clone(),
        variant: format!("{} (effective lowering)", cell.variant),
        kernel: k.name.clone(),
        level: 0,
        proven_independent: rep.is_independent(),
        verdict: rep
            .deps
            .iter()
            .map(dep_reason)
            .collect::<Vec<_>>()
            .join("; "),
        races: ww.len(),
        race_note: ww.first().map(|x| x.describe()).unwrap_or_default(),
        miscompiled: true,
        lost_update_demo: true,
        consistent: !ww.is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_kernels::{backprop, diag_dominant_matrix, lud, random_vec, VariantCfg};

    #[test]
    fn lud_base_cell_is_sound() {
        let n = 24usize;
        let cache = ArtifactCache::new();
        let cell = CheckCell {
            benchmark: "LUD".into(),
            series: "CAPS-CUDA-K40".into(),
            variant: "Base".into(),
            compiler: CompilerId::Caps,
            options: CompileOptions::gpu(),
            program: lud::program(&VariantCfg::baseline()),
            cfg: RunConfig::functional(vec![("n".into(), n as f64)])
                .with_input("a", Buffer::F32(diag_dominant_matrix(n, 21))),
        };
        let cc = check_cell(&cache, &cell).unwrap();
        assert!(!cc.rows.is_empty());
        assert!(cc.accesses > 0, "the detector must have observed the run");
        for row in &cc.rows {
            assert!(row.consistent, "{row:?}");
            // LUD is the paper's refused benchmark: nothing proven
            // independent, and nothing racing either (the carried
            // dependence is across *sequential* launches).
            assert!(!row.proven_independent, "{row:?}");
            assert_eq!(row.races, 0, "{row:?}");
        }
    }

    #[test]
    fn wrong_reduction_plan_gets_a_lost_update_demo_row() {
        let mut vc = VariantCfg::independent();
        vc.reduction = true;
        let n_in = 64usize;
        let n_hid = 16usize;
        let w_len = (n_in + 1) * (n_hid + 1);
        let cache = ArtifactCache::new();
        let cell = CheckCell {
            benchmark: "BP".into(),
            series: "CAPS-OCL-5110P".into(),
            variant: "Reduction".into(),
            compiler: CompilerId::Caps,
            options: CompileOptions::mic(),
            program: backprop::program(&vc),
            cfg: RunConfig::functional(vec![
                ("n_in".into(), n_in as f64),
                ("n_hid".into(), n_hid as f64),
            ])
            .with_input("input", Buffer::F32(random_vec(n_in + 1, 1)))
            .with_input("w", Buffer::F32(random_vec(w_len, 2)))
            .with_input("delta", Buffer::F32(random_vec(n_hid + 1, 3)))
            .with_input("oldw", Buffer::F32(random_vec(w_len, 4))),
        };
        let cc = check_cell(&cache, &cell).unwrap();
        let demo = cc
            .rows
            .iter()
            .find(|r| r.lost_update_demo)
            .expect("the wrong plan must be demonstrated");
        assert!(demo.consistent, "{demo:?}");
        assert!(demo.races > 0);
        assert!(demo.miscompiled);
        // The diagnostic names the real reduction array and two
        // distinct iterations of the forward kernel.
        assert!(demo.race_note.contains("write-write"), "{}", demo.race_note);
        assert!(demo.race_note.contains("`hidden`[0]"), "{}", demo.race_note);
        assert!(
            demo.race_note.contains("iteration (0)") && demo.race_note.contains("iteration (1)"),
            "{}",
            demo.race_note
        );
        assert!(
            demo.verdict.contains("carried dependence"),
            "{}",
            demo.verdict
        );
        // All non-demo rows stay consistent: the skipped tree phases
        // never race, so only the effective lowering shows the bug.
        assert!(cc.rows.iter().all(|r| r.consistent));
    }

    #[test]
    fn reduction_array_is_found_from_the_source_body() {
        let mut vc = VariantCfg::independent();
        vc.reduction = true;
        let p = backprop::program(&vc);
        let k = p.kernel("layer_forward").unwrap();
        assert_eq!(reduction_array_name(&p, k).as_deref(), Some("hidden"));
    }
}
