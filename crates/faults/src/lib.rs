//! # paccport-faults — seeded deterministic fault injection
//!
//! The 2015 campaign this repository reproduces was run on compilers
//! that crashed, kernels that hung, and artifacts that went stale (the
//! CAPS toolchain died mid-study, for real). This crate lets the
//! simulated stack rehearse all of that *reproducibly*: every fault
//! decision is a pure function of `(seed, kind, site key, attempt)`,
//! so a given `--fault-seed` produces the same failures in the same
//! cells on every run, on every machine, at any `--jobs` level.
//!
//! Three pieces:
//!
//! * **Injection** — sites in `paccport-compilers` and
//!   `paccport-devsim` ask [`inject`] whether to fail. Faults are
//!   configured from a small spec (`compile:caps:0.1,hang:bfs`) via
//!   [`configure`]; parsed by [`FaultSpec::parse`]. Every fired fault
//!   is recorded in a process-global [`ledger`], deduplicated by
//!   `(kind, key, attempt)` so the set is scheduling-independent.
//!   Injected error strings carry the [`INJECTED`] marker, which is
//!   the protocol separating "chaos we asked for" from genuine bugs.
//! * **Virtual clock + backoff** — retries back off exponentially on
//!   [`vclock`], a process-global virtual clock that only advances
//!   when someone "sleeps" on it. No wall-time sleeps anywhere, so
//!   tests of the retry schedule are instant and deterministic.
//! * **Watchdog** — a thread-local step budget ([`arm_watchdog`] /
//!   [`charge`]). The device interpreter charges one step per
//!   statement; exhausting the budget panics with a typed
//!   [`WatchdogTimeout`] payload that the runner converts into a
//!   `Timeout` error instead of wedging the whole study.
//!
//! With no spec configured every entry point is a no-op costing one
//! relaxed atomic load, mirroring how `paccport-trace` gates its
//! sites.

use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Marker carried by every injected error message. The engine and the
/// report layer treat failures containing it as "chaos we asked for"
/// (quarantine, keep going, exit zero) and everything else as a
/// genuine failure (nonzero exit).
pub const INJECTED: &str = "[injected]";

/// Whether an error message came from an injected fault.
pub fn is_injected(msg: &str) -> bool {
    msg.contains(INJECTED)
}

// ===================================================================
// Fault kinds and the inject spec
// ===================================================================

/// The injectable failure classes, one per site family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A compiler personality crashes (`caps.rs` / `pgi.rs`).
    CompileFail,
    /// A flaky slow compile: lowering stalls, burning virtual time
    /// and watchdog budget (`lower.rs`).
    CompileSlow,
    /// A transient device fault at kernel launch (`runner.rs`).
    DeviceFault,
    /// A kernel spins forever; only the step-budget watchdog can end
    /// it (`runner.rs` / `interp.rs`).
    KernelHang,
    /// A cached artifact is corrupted in place (`cache.rs`).
    CorruptCache,
    /// The whole process aborts right after a journal record becomes
    /// durable (`paccport-persist`). Unlike every other kind this one
    /// does not unwind — the site calls [`crash_exit`], and recovery
    /// is proven by restarting with `--resume`.
    Crash,
    /// An in-flight journal or cache-store write is truncated or
    /// garbled mid-write, then the process aborts — the on-disk state
    /// a real power cut leaves behind (`paccport-persist`).
    TornWrite,
}

impl FaultKind {
    /// The spec keyword naming this kind.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::CompileFail => "compile",
            FaultKind::CompileSlow => "slow",
            FaultKind::DeviceFault => "device",
            FaultKind::KernelHang => "hang",
            FaultKind::CorruptCache => "corrupt-cache",
            FaultKind::Crash => "crash",
            FaultKind::TornWrite => "torn-write",
        }
    }

    /// Inverse of [`FaultKind::tag`] (journal event records persist
    /// faults by tag and decode through this).
    pub fn from_tag(s: &str) -> Option<Self> {
        Some(match s {
            "compile" => FaultKind::CompileFail,
            "slow" => FaultKind::CompileSlow,
            "device" => FaultKind::DeviceFault,
            "hang" => FaultKind::KernelHang,
            "corrupt-cache" => FaultKind::CorruptCache,
            "crash" => FaultKind::Crash,
            "torn-write" => FaultKind::TornWrite,
            _ => return None,
        })
    }
}

/// The site-key vocabulary `--inject` targets are validated against.
/// A target is accepted when it is a substring of a vocabulary word or
/// a vocabulary word is a substring of it, so both `caps` and a full
/// structured key like `journal:step-000004` pass while a typo like
/// `pgl` is rejected up front instead of silently matching nothing.
const KNOWN_SITE_VOCABULARY: &[&str] = &[
    // Compiler personalities and backends.
    "caps",
    "pgi",
    "openarc",
    "opencl",
    "hand-written",
    "cuda",
    "ocl",
    "acc",
    "gcc",
    "icc",
    // Devices.
    "k40",
    "5110p",
    "firepro",
    "amd",
    "mic",
    "gpu",
    "cpu",
    "host",
    // Benchmarks and their kernels.
    "lud",
    "gaussian",
    "bfs",
    "backprop",
    "hydro",
    "fan1",
    "fan2",
    "kernel",
    "layer_forward",
    "adjust_weights",
    // Variant / series label fragments.
    "base",
    "indep",
    "dist",
    "tile",
    "unroll",
    "reduction",
    "reorg",
    "advanced",
    "tuned",
    "fig",
    "ext",
    "check",
    "cell",
    // Structured site prefixes: compile lowering, artifact cache, and
    // the persist layer's journal/store write sites.
    "lower:",
    "cache:",
    "gen",
    "journal:",
    "step-",
    "rec-",
    "cache-file:",
];

fn target_in_vocabulary(target: &str) -> bool {
    KNOWN_SITE_VOCABULARY
        .iter()
        .any(|v| v.contains(target) || target.contains(v))
}

/// One clause of an inject spec: `kind[:target][:rate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Case-insensitive substring matched against the site key;
    /// empty (or `*`) matches every site.
    pub target: String,
    /// Probability per (site, attempt) in `[0, 1]`; omitted = 1.
    pub rate: f64,
}

impl FaultRule {
    fn matches(&self, kind: FaultKind, key: &str) -> bool {
        self.kind == kind
            && (self.target.is_empty() || key.to_ascii_lowercase().contains(&self.target))
    }
}

/// A parsed `--inject` specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    pub rules: Vec<FaultRule>,
    /// The text the spec was parsed from, echoed in the ledger header.
    pub source: String,
}

impl FaultSpec {
    /// Parse a comma-separated list of `kind[:target][:rate]` clauses.
    ///
    /// `kind` is one of `compile`, `slow`, `device`, `hang`,
    /// `corrupt-cache`, `crash`, `torn-write`; `target` is a
    /// case-insensitive substring of the site key (`*` or empty for
    /// all sites), validated against the known site vocabulary so a
    /// typo fails up front instead of silently matching nothing;
    /// `rate` is a probability in `[0, 1]` (default 1). Each kind may
    /// appear at most once — duplicate clauses would silently shadow
    /// each other via the max-rate merge. The single word `chaos`
    /// expands to [`FaultSpec::chaos`].
    ///
    /// ```
    /// let s = paccport_faults::FaultSpec::parse("compile:caps:0.1,hang:bfs").unwrap();
    /// assert_eq!(s.rules.len(), 2);
    /// assert_eq!(s.rules[0].rate, 0.1);
    /// assert_eq!(s.rules[1].target, "bfs");
    /// ```
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        if text.trim() == "chaos" {
            return Ok(FaultSpec::chaos());
        }
        let mut rules = Vec::new();
        for clause in text.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let parts: Vec<&str> = clause.split(':').collect();
            if parts.len() > 3 {
                return Err(format!(
                    "inject clause `{clause}` has too many `:` fields (kind[:target][:rate])"
                ));
            }
            let kind = FaultKind::from_tag(parts[0]).ok_or_else(|| {
                format!(
                    "unknown fault kind `{}` (expected compile|slow|device|hang|corrupt-cache|crash|torn-write, or the preset `chaos`)",
                    parts[0]
                )
            })?;
            if rules.iter().any(|r: &FaultRule| r.kind == kind) {
                return Err(format!(
                    "inject clause `{clause}`: fault kind `{}` appears in more than one clause — merge them into one `kind[:target][:rate]` clause",
                    kind.tag()
                ));
            }
            // Two-field form: the second field is a rate if it parses
            // as one, a target otherwise (`hang:bfs` vs `hang:0.2`).
            let (target, rate_text) = match parts.len() {
                1 => ("", None),
                2 => match parts[1].parse::<f64>() {
                    Ok(_) => ("", Some(parts[1])),
                    Err(_) => (parts[1], None),
                },
                _ => (parts[1], Some(parts[2])),
            };
            let rate = match rate_text {
                None => 1.0,
                Some(t) => t
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        format!("inject clause `{clause}`: rate must be a number in [0, 1]")
                    })?,
            };
            let target = if target == "*" { "" } else { target };
            let target = target.to_ascii_lowercase();
            if !target.is_empty() && !target_in_vocabulary(&target) {
                return Err(format!(
                    "inject clause `{clause}`: unknown target `{target}` — targets substring-match site keys (compilers like `caps`/`pgi`, benchmarks like `lud`/`bfs`, variants like `tile`, or persist sites like `journal:`/`step-000004`); use `*` for all sites"
                ));
            }
            rules.push(FaultRule { kind, target, rate });
        }
        if rules.is_empty() {
            return Err("inject spec is empty".into());
        }
        Ok(FaultSpec {
            rules,
            source: text.trim().to_string(),
        })
    }

    /// The `chaos` preset: moderate transient rates at every site
    /// family, low enough that bounded retry recovers almost every
    /// cell, high enough that every resilience path is exercised.
    pub fn chaos() -> FaultSpec {
        let mk = |kind, rate| FaultRule {
            kind,
            target: String::new(),
            rate,
        };
        FaultSpec {
            rules: vec![
                mk(FaultKind::CompileFail, 0.06),
                mk(FaultKind::CompileSlow, 0.05),
                mk(FaultKind::DeviceFault, 0.06),
                mk(FaultKind::KernelHang, 0.01),
                mk(FaultKind::CorruptCache, 0.05),
            ],
            source: "chaos".into(),
        }
    }

    /// The highest rate any rule assigns to `(kind, key)`, 0 if none.
    fn rate_for(&self, kind: FaultKind, key: &str) -> f64 {
        self.rules
            .iter()
            .filter(|r| r.matches(kind, key))
            .fold(0.0, |acc, r| acc.max(r.rate))
    }
}

// ===================================================================
// Global configuration
// ===================================================================

struct Config {
    spec: FaultSpec,
    seed: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn config() -> &'static Mutex<Option<Config>> {
    static CONFIG: OnceLock<Mutex<Option<Config>>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(None))
}

/// Install a fault spec process-wide and clear the ledger. Until
/// [`deconfigure`] every injection site rolls against it.
pub fn configure(spec: FaultSpec, seed: u64) {
    *config().lock().unwrap() = Some(Config { spec, seed });
    ledger_set().lock().unwrap().clear();
    // Telemetry timestamps follow the virtual clock while injection is
    // active, so trace exports of a chaos run are fully deterministic.
    paccport_trace::set_clock(Some(vclock::now_ns));
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Remove the fault spec; all sites become no-ops again.
pub fn deconfigure() {
    ACTIVE.store(false, Ordering::Relaxed);
    *config().lock().unwrap() = None;
    ledger_set().lock().unwrap().clear();
    paccport_trace::set_clock(None);
}

/// Whether a fault spec is currently installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// `(spec source, seed)` of the installed config, if any — what the
/// fault-ledger header echoes.
pub fn config_summary() -> Option<(String, u64)> {
    config()
        .lock()
        .unwrap()
        .as_ref()
        .map(|c| (c.spec.source.clone(), c.seed))
}

/// The configured seed (0 when inactive) — shared with the engine's
/// backoff jitter so one `--fault-seed` pins the whole schedule.
pub fn seed() -> u64 {
    config().lock().unwrap().as_ref().map_or(0, |c| c.seed)
}

// ===================================================================
// Decisions
// ===================================================================

thread_local! {
    /// Which retry attempt the current job is on. Set by the engine's
    /// retry loop so a transient fault can clear on the next attempt:
    /// the decision hash includes it, and *only* it, as run state.
    static ATTEMPT: Cell<u32> = const { Cell::new(0) };
}

/// Set the current thread's retry-attempt counter (engine retry loop).
pub fn set_attempt(n: u32) {
    ATTEMPT.with(|a| a.set(n));
}

/// The current thread's retry-attempt counter.
pub fn current_attempt() -> u32 {
    ATTEMPT.with(|a| a.get())
}

fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Murmur3's 64-bit finalizer. Raw FNV-1a avalanches poorly on
/// trailing bytes: a change to the *last* byte hashed (the attempt
/// counter here) moves the hash by at most ~2^48, which almost never
/// flips a `< rate` comparison decided by the top bits — a retried
/// fault would re-fire forever. This mixes every input bit into the
/// top bits.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A unit-interval sample, pure in its inputs.
fn roll(seed: u64, kind: FaultKind, key: &str, attempt: u32) -> f64 {
    let text = format!("{seed}\u{1f}{}\u{1f}{key}\u{1f}{attempt}", kind.tag());
    let h = mix64(fnv1a64(text.as_bytes(), 0xcbf2_9ce4_8422_2325));
    // Top 53 bits -> [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether a fault of `kind` fires at site `key` on the current
/// attempt. Pure in `(seed, kind, key, attempt)` — no per-run state,
/// so the answer is identical across schedules and processes.
pub fn should_inject(kind: FaultKind, key: &str) -> bool {
    if !active() {
        return false;
    }
    let guard = config().lock().unwrap();
    let Some(cfg) = guard.as_ref() else {
        return false;
    };
    let rate = cfg.spec.rate_for(kind, key);
    rate > 0.0 && roll(cfg.seed, kind, key, current_attempt()) < rate
}

/// [`should_inject`] plus ledger recording: the one-call form sites
/// use. Returns whether the fault fires.
pub fn inject(kind: FaultKind, key: &str) -> bool {
    if should_inject(kind, key) {
        record(kind, key);
        true
    } else {
        false
    }
}

// ===================================================================
// Ledger
// ===================================================================

/// One injected fault, as the ledger reports it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    pub kind: FaultKind,
    pub key: String,
    pub attempt: u32,
}

#[allow(clippy::type_complexity)]
fn ledger_set() -> &'static Mutex<BTreeSet<(&'static str, String, u32)>> {
    static LEDGER: OnceLock<Mutex<BTreeSet<(&'static str, String, u32)>>> = OnceLock::new();
    LEDGER.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Record an injected fault. Deduplicated by `(kind, key, attempt)`:
/// when several workers observe the same shared fault (e.g. a poisoned
/// cache slot) the ledger still holds one entry, keeping its contents
/// independent of scheduling.
pub fn record(kind: FaultKind, key: &str) {
    paccport_trace::add("fault.injected", 1);
    if paccport_trace::metrics::metrics_enabled() {
        paccport_trace::metrics::counter_add("faults_injected_total", &[("kind", kind.tag())], 1);
    }
    let attempt = current_attempt();
    let fresh = ledger_set()
        .lock()
        .unwrap()
        .insert((kind.tag(), key.to_string(), attempt));
    // Notify the sink only for first sightings, and only after the
    // ledger lock is released: the sink may itself take locks (the run
    // journal appends the event durably) and must never nest inside
    // ours.
    if fresh {
        let guard = event_sink().lock().unwrap();
        if let Some(sink) = guard.as_ref() {
            sink(kind, key, attempt);
        }
    }
}

/// Every fault injected since [`configure`], sorted.
pub fn ledger() -> Vec<FaultEvent> {
    ledger_set()
        .lock()
        .unwrap()
        .iter()
        .map(|(tag, key, attempt)| FaultEvent {
            kind: FaultKind::from_tag(tag).expect("ledger holds valid tags"),
            key: key.clone(),
            attempt: *attempt,
        })
        .collect()
}

/// Whether a fault of `kind` was already recorded at site `key` on
/// *any* attempt. Persist sites use this as an at-most-once guard:
/// a torn write replayed after a crash-and-resume must not tear the
/// same bytes again, or recovery would livelock.
pub fn already_injected(kind: FaultKind, key: &str) -> bool {
    let lo = (kind.tag(), key.to_string(), 0u32);
    let hi = (kind.tag(), key.to_string(), u32::MAX);
    ledger_set().lock().unwrap().range(lo..=hi).next().is_some()
}

/// Whether the installed spec gives `kind` a nonzero rate anywhere.
pub fn kind_active(kind: FaultKind) -> bool {
    config()
        .lock()
        .unwrap()
        .as_ref()
        .is_some_and(|c| c.spec.rules.iter().any(|r| r.kind == kind && r.rate > 0.0))
}

// ===================================================================
// Event sink + restore (durability hooks)
// ===================================================================

type EventSink = Box<dyn Fn(FaultKind, &str, u32) + Send + Sync>;

fn event_sink() -> &'static Mutex<Option<EventSink>> {
    static SINK: OnceLock<Mutex<Option<EventSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install a process-wide observer called once per *new* ledger entry
/// (deduplicated exactly like the ledger itself), outside the ledger
/// lock. The persist layer uses this to journal fault events durably
/// so a resumed run can rebuild the same ledger. The sink must not
/// call [`record`] (it would recurse through its own trigger) and must
/// not panic.
pub fn set_event_sink(sink: impl Fn(FaultKind, &str, u32) + Send + Sync + 'static) {
    *event_sink().lock().unwrap() = Some(Box::new(sink));
}

/// Remove the event sink installed by [`set_event_sink`].
pub fn clear_event_sink() {
    *event_sink().lock().unwrap() = None;
}

/// Re-insert a fault event recorded by an earlier process life (read
/// back from the run journal) into the ledger. Bypasses telemetry and
/// the event sink: the event already happened and is already durable —
/// this only rebuilds in-memory state so a resumed run renders the
/// same fault ledger as an uninterrupted one.
pub fn restore_event(kind: FaultKind, key: &str, attempt: u32) {
    ledger_set()
        .lock()
        .unwrap()
        .insert((kind.tag(), key.to_string(), attempt));
}

// ===================================================================
// Crash exit
// ===================================================================

/// Process exit code for an injected crash (EX_TEMPFAIL from
/// sysexits.h: "try again later" — which is literally the protocol;
/// the supervisor restarts with `--resume`). Distinct from every exit
/// code the CLI uses for real outcomes.
pub const CRASH_EXIT_CODE: i32 = 75;

type CrashHook = Box<dyn Fn() + Send + Sync>;

fn crash_hooks() -> &'static Mutex<Vec<CrashHook>> {
    static HOOKS: OnceLock<Mutex<Vec<CrashHook>>> = OnceLock::new();
    HOOKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a hook run by [`crash_exit`] just before the process
/// aborts. The CLI registers its telemetry flush here so even a
/// crashed run leaves a parseable partial trace.
pub fn on_crash(hook: impl Fn() + Send + Sync + 'static) {
    crash_hooks().lock().unwrap().push(Box::new(hook));
}

/// Abort the process with [`CRASH_EXIT_CODE`], running the [`on_crash`]
/// hooks first. `std::process::exit` (not `abort`) so the hooks'
/// flushed output survives; no destructors beyond the hooks run, which
/// is the point — everything not already durable is lost.
pub fn crash_exit(site: &str) -> ! {
    eprintln!("{INJECTED} crash at {site}");
    for hook in crash_hooks().lock().unwrap().iter() {
        hook();
    }
    std::process::exit(CRASH_EXIT_CODE);
}

// ===================================================================
// Virtual clock + backoff
// ===================================================================

/// A process-global virtual clock, in nanoseconds. It advances only
/// when someone sleeps on it ([`vclock::advance`]); retry backoff is
/// expressed against it so the schedule is testable without wall time.
pub mod vclock {
    use super::*;

    static NOW_NS: AtomicU64 = AtomicU64::new(0);

    /// Current virtual time.
    pub fn now_ns() -> u64 {
        NOW_NS.load(Ordering::Relaxed)
    }

    /// Sleep: advance the clock by `ns` (instantly).
    pub fn advance(ns: u64) {
        NOW_NS.fetch_add(ns, Ordering::Relaxed);
    }

    /// Reset to zero (tests).
    pub fn reset() {
        NOW_NS.store(0, Ordering::Relaxed);
    }
}

/// Exponential backoff with deterministic jitter, capped.
///
/// `delay_ns(key, attempt)` for attempt `n ≥ 1` is
/// `min(cap, base·2^(n-1) + jitter)` with `jitter ∈ [0, base)` drawn
/// from `(seed, key, n)`. The cap is applied *after* the jitter, so
/// the schedule is non-decreasing in `n` for any seed and key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    pub base_ns: u64,
    pub cap_ns: u64,
    pub seed: u64,
}

impl Backoff {
    /// The delay before retry attempt `n` (1-based; 0 returns 0).
    pub fn delay_ns(&self, key: &str, attempt: u32) -> u64 {
        if attempt == 0 || self.base_ns == 0 {
            return 0;
        }
        let exp = (attempt - 1).min(32);
        let raw = self.base_ns.saturating_mul(1u64 << exp);
        let text = format!("{}\u{1f}backoff\u{1f}{key}\u{1f}{attempt}", self.seed);
        let jitter = fnv1a64(text.as_bytes(), 0x6c62_272e_07bb_0142) % self.base_ns.max(1);
        raw.saturating_add(jitter).min(self.cap_ns)
    }
}

// ===================================================================
// Watchdog
// ===================================================================

/// The typed panic payload a tripped watchdog unwinds with. The
/// runner and the engine downcast for it and turn it into a `Timeout`
/// error; anything else keeps unwinding.
#[derive(Debug, Clone)]
pub struct WatchdogTimeout {
    /// The budget that was exhausted.
    pub budget: u64,
    /// `true` when an injected hang burned the budget (the timeout is
    /// then chaos, not a genuine runaway loop).
    pub injected: bool,
}

/// Default step budget armed around a job when faults are active but
/// the caller did not pick one. Far above any honest cell at smoke or
/// quick scale, small enough that a spin loop trips in milliseconds.
pub const DEFAULT_STEP_BUDGET: u64 = 2_000_000_000;

/// Number of threads with an armed watchdog — the fast-path gate for
/// [`charge`], mirroring `paccport-trace`'s enabled flag.
static WATCHERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static BUDGET: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Arm (or re-arm) this thread's watchdog with a fresh step budget.
pub fn arm_watchdog(steps: u64) {
    BUDGET.with(|b| {
        if b.replace(Some(steps)).is_none() {
            WATCHERS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Disarm this thread's watchdog. No-op if not armed.
pub fn disarm_watchdog() {
    BUDGET.with(|b| {
        if b.take().is_some() {
            WATCHERS.fetch_sub(1, Ordering::Relaxed);
        }
    });
}

/// Whether this thread's watchdog is armed.
pub fn watchdog_armed() -> bool {
    WATCHERS.load(Ordering::Relaxed) > 0 && BUDGET.with(|b| b.get().is_some())
}

/// Charge `n` steps against this thread's budget; panics with a
/// [`WatchdogTimeout`] payload when it runs out. One relaxed atomic
/// load when no thread is armed.
#[inline]
pub fn charge(n: u64) {
    if WATCHERS.load(Ordering::Relaxed) == 0 {
        return;
    }
    charge_slow(n, false);
}

fn charge_slow(n: u64, injected: bool) {
    let tripped = BUDGET.with(|b| match b.get() {
        Some(left) if left < n => {
            // Disarm before unwinding so cleanup code that also
            // charges cannot double-panic.
            b.set(None);
            WATCHERS.fetch_sub(1, Ordering::Relaxed);
            Some(left)
        }
        Some(left) => {
            b.set(Some(left - n));
            None
        }
        None => None,
    });
    if let Some(budget) = tripped {
        paccport_trace::add("watchdog.timeout", 1);
        std::panic::panic_any(WatchdogTimeout {
            budget: budget.max(n),
            injected,
        });
    }
}

/// An injected hang: spin charging the watchdog until it trips. Arms
/// the default budget first if nothing is armed, so a hang can never
/// actually wedge the process.
pub fn hang() -> ! {
    if !watchdog_armed() {
        arm_watchdog(DEFAULT_STEP_BUDGET);
    }
    loop {
        charge_slow(1 << 16, true);
    }
}

/// Downcast a caught panic payload to the watchdog timeout, if that
/// is what unwound.
pub fn timeout_of(payload: &(dyn Any + Send)) -> Option<&WatchdogTimeout> {
    payload.downcast_ref::<WatchdogTimeout>()
}

/// Render a caught panic payload as an error message. Watchdog
/// timeouts become `Timeout` errors (carrying [`INJECTED`] when a
/// hang fault caused them); other payloads keep their text.
pub fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(t) = timeout_of(payload) {
        let mark = if t.injected {
            format!("{INJECTED} ")
        } else {
            String::new()
        };
        format!("{mark}Timeout: step budget of {} exhausted", t.budget)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

// ===================================================================
// Panic-hook quieting for isolated jobs
// ===================================================================

thread_local! {
    static IN_ISOLATED_JOB: Cell<u32> = const { Cell::new(0) };
}

/// RAII marker that the current thread is inside a `catch_unwind`
/// job whose panics are reported through the quarantine ledger; the
/// quiet hook suppresses the default stderr backtrace for them.
pub struct JobGuard(());

impl Drop for JobGuard {
    fn drop(&mut self) {
        IN_ISOLATED_JOB.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Enter an isolated job (see [`JobGuard`]).
pub fn job_guard() -> JobGuard {
    IN_ISOLATED_JOB.with(|c| c.set(c.get() + 1));
    JobGuard(())
}

/// Install (once) a panic hook that stays silent for panics inside
/// isolated jobs — they resurface as `FAILED(reason, attempts)`
/// report entries — and delegates everything else to the previous
/// hook.
pub fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = IN_ISOLATED_JOB.with(|c| c.get() > 0)
                || info.payload().downcast_ref::<WatchdogTimeout>().is_some();
            if !quiet {
                previous(info);
            }
        }));
    });
}

// ===================================================================
// Convenience site helpers
// ===================================================================

/// Virtual nanoseconds a flaky slow compile stalls for.
pub const SLOW_COMPILE_VNS: u64 = 1_500_000_000;

/// The `slow` site: when the fault fires, stall on the virtual clock.
///
/// Deliberately does NOT burn watchdog steps: the step budget models
/// *work* (a hung interpreter loop), latency belongs on the clock.
/// Charging here would also couple timeouts to which thread happens
/// to warm the compile cache, making quarantine schedule-dependent.
pub fn maybe_slow_compile(key: &str) {
    if inject(FaultKind::CompileSlow, key) {
        vclock::advance(SLOW_COMPILE_VNS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Fault config is process-global; serialize the tests that touch it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_full_grammar() {
        let s = FaultSpec::parse("compile:caps:0.1,hang:bfs,corrupt-cache").unwrap();
        assert_eq!(s.rules.len(), 3);
        assert_eq!(s.rules[0].kind, FaultKind::CompileFail);
        assert_eq!(s.rules[0].target, "caps");
        assert_eq!(s.rules[0].rate, 0.1);
        assert_eq!(s.rules[1].kind, FaultKind::KernelHang);
        assert_eq!(s.rules[1].target, "bfs");
        assert_eq!(s.rules[1].rate, 1.0);
        assert_eq!(s.rules[2].target, "");
    }

    #[test]
    fn parse_two_field_rate_vs_target() {
        let s = FaultSpec::parse("device:0.25").unwrap();
        assert_eq!(s.rules[0].target, "");
        assert_eq!(s.rules[0].rate, 0.25);
        let s = FaultSpec::parse("device:LUD").unwrap();
        assert_eq!(s.rules[0].target, "lud");
        assert_eq!(s.rules[0].rate, 1.0);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FaultSpec::parse("").is_err());
        assert!(FaultSpec::parse("explode:caps").is_err());
        assert!(FaultSpec::parse("compile:caps:1.5").is_err());
        assert!(FaultSpec::parse("compile:caps:0.1:extra").is_err());
    }

    #[test]
    fn chaos_preset_covers_every_kind() {
        let s = FaultSpec::parse("chaos").unwrap();
        let kinds: Vec<_> = s.rules.iter().map(|r| r.kind).collect();
        for k in [
            FaultKind::CompileFail,
            FaultKind::CompileSlow,
            FaultKind::DeviceFault,
            FaultKind::KernelHang,
            FaultKind::CorruptCache,
        ] {
            assert!(kinds.contains(&k), "chaos missing {k:?}");
        }
        assert!(s.rules.iter().all(|r| r.rate > 0.0 && r.rate < 0.2));
    }

    #[test]
    fn decisions_are_pure_and_seeded() {
        let _g = lock();
        configure(FaultSpec::parse("compile:*:0.5").unwrap(), 7);
        let keys: Vec<String> = (0..64).map(|i| format!("caps:prog{i}")).collect();
        let a: Vec<bool> = keys
            .iter()
            .map(|k| should_inject(FaultKind::CompileFail, k))
            .collect();
        let b: Vec<bool> = keys
            .iter()
            .map(|k| should_inject(FaultKind::CompileFail, k))
            .collect();
        assert_eq!(a, b, "same seed, same answers");
        assert!(
            a.iter().any(|&x| x) && a.iter().any(|&x| !x),
            "rate 0.5 mixes"
        );

        configure(FaultSpec::parse("compile:*:0.5").unwrap(), 8);
        let c: Vec<bool> = keys
            .iter()
            .map(|k| should_inject(FaultKind::CompileFail, k))
            .collect();
        assert_ne!(a, c, "different seed, different pattern");
        deconfigure();
    }

    #[test]
    fn rate_extremes_and_attempt_sensitivity() {
        let _g = lock();
        configure(FaultSpec::parse("device:*:1").unwrap(), 1);
        assert!(should_inject(FaultKind::DeviceFault, "x"));
        assert!(
            !should_inject(FaultKind::KernelHang, "x"),
            "other kinds silent"
        );
        configure(FaultSpec::parse("device:*:0").unwrap(), 1);
        assert!(!should_inject(FaultKind::DeviceFault, "x"));

        // A 0.5-rate fault clears on some attempt: decisions vary with
        // the attempt counter and nothing else.
        configure(FaultSpec::parse("device:*:0.5").unwrap(), 3);
        let per_attempt: Vec<bool> = (0..16)
            .map(|a| {
                set_attempt(a);
                should_inject(FaultKind::DeviceFault, "cell")
            })
            .collect();
        set_attempt(0);
        assert!(per_attempt.iter().any(|&x| !x));
        deconfigure();
    }

    #[test]
    fn target_filters_by_substring() {
        let _g = lock();
        configure(FaultSpec::parse("compile:caps").unwrap(), 1);
        assert!(should_inject(FaultKind::CompileFail, "CAPS 3.4.1:lud"));
        assert!(!should_inject(FaultKind::CompileFail, "PGI 14.9:lud"));
        deconfigure();
    }

    #[test]
    fn ledger_dedups_and_sorts() {
        let _g = lock();
        configure(FaultSpec::parse("device").unwrap(), 1);
        record(FaultKind::DeviceFault, "b");
        record(FaultKind::DeviceFault, "a");
        record(FaultKind::DeviceFault, "b");
        let l = ledger();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].key, "a");
        assert_eq!(l[1].key, "b");
        deconfigure();
        assert!(ledger().is_empty());
    }

    #[test]
    fn vclock_advances_without_wall_time() {
        let t0 = vclock::now_ns();
        vclock::advance(1_000_000);
        assert_eq!(vclock::now_ns() - t0, 1_000_000);
    }

    #[test]
    fn backoff_is_monotone_capped_deterministic() {
        let b = Backoff {
            base_ns: 50_000_000,
            cap_ns: 2_000_000_000,
            seed: 42,
        };
        let delays: Vec<u64> = (1..12).map(|a| b.delay_ns("cell", a)).collect();
        for w in delays.windows(2) {
            assert!(w[0] <= w[1], "monotone: {delays:?}");
        }
        assert!(delays.iter().all(|&d| d <= b.cap_ns));
        assert_eq!(delays.last(), Some(&b.cap_ns), "reaches the cap");
        assert_eq!(b.delay_ns("cell", 3), b.delay_ns("cell", 3));
        assert_eq!(b.delay_ns("x", 0), 0);
    }

    #[test]
    fn watchdog_trips_as_typed_timeout() {
        let _g = lock();
        install_quiet_panic_hook();
        arm_watchdog(100);
        charge(60);
        assert!(watchdog_armed());
        let caught = std::panic::catch_unwind(|| charge(60)).unwrap_err();
        let t = timeout_of(caught.as_ref()).expect("typed payload");
        assert!(!t.injected);
        assert!(!watchdog_armed(), "disarmed before unwinding");
        assert!(describe_panic(caught.as_ref()).contains("Timeout"));
        // Re-arm + disarm round-trips.
        arm_watchdog(10);
        disarm_watchdog();
        assert!(!watchdog_armed());
        charge(1_000_000); // no-op when disarmed
    }

    #[test]
    fn hang_terminates_via_watchdog_and_is_injected() {
        let _g = lock();
        install_quiet_panic_hook();
        let caught = std::panic::catch_unwind(|| hang()).unwrap_err();
        let t = timeout_of(caught.as_ref()).expect("typed payload");
        assert!(t.injected);
        let msg = describe_panic(caught.as_ref());
        assert!(is_injected(&msg) && msg.contains("Timeout"), "{msg}");
    }

    #[test]
    fn injected_marker_protocol() {
        assert!(is_injected("[injected] transient device fault"));
        assert!(!is_injected("store index 9 out of bounds"));
    }

    #[test]
    fn parse_accepts_persist_kinds() {
        let s = FaultSpec::parse("crash:step-000004,torn-write:journal").unwrap();
        assert_eq!(s.rules[0].kind, FaultKind::Crash);
        assert_eq!(s.rules[0].target, "step-000004");
        assert_eq!(s.rules[1].kind, FaultKind::TornWrite);
        assert_eq!(s.rules[1].target, "journal");
        let s = FaultSpec::parse("crash:0.25").unwrap();
        assert_eq!(s.rules[0].rate, 0.25);
        assert_eq!(s.rules[0].target, "");
        assert_eq!(
            FaultKind::from_tag("torn-write"),
            Some(FaultKind::TornWrite)
        );
        assert_eq!(FaultKind::from_tag("crash"), Some(FaultKind::Crash));
    }

    #[test]
    fn parse_rejects_duplicate_kinds() {
        let err = FaultSpec::parse("compile:caps,compile:pgi").unwrap_err();
        assert!(err.contains("more than one clause"), "{err}");
        let err = FaultSpec::parse("crash,crash:0.5").unwrap_err();
        assert!(err.contains("`crash`"), "{err}");
        // Distinct kinds still compose.
        assert!(FaultSpec::parse("compile:caps,device:lud").is_ok());
    }

    #[test]
    fn parse_rejects_unknown_targets() {
        let err = FaultSpec::parse("hang:zzzqqq").unwrap_err();
        assert!(err.contains("unknown target `zzzqqq`"), "{err}");
        assert!(err.contains("`*`"), "actionable: {err}");
        // Known vocabulary, case-insensitively, still passes.
        for ok in [
            "hang:LUD",
            "compile:caps",
            "device:fig",
            "crash:step-000123",
            "torn-write:cache-file",
        ] {
            assert!(FaultSpec::parse(ok).is_ok(), "{ok} should parse");
        }
    }

    #[test]
    fn already_injected_restore_and_kind_active() {
        let _g = lock();
        configure(FaultSpec::parse("device:lud").unwrap(), 1);
        assert!(kind_active(FaultKind::DeviceFault));
        assert!(!kind_active(FaultKind::Crash));
        assert!(!already_injected(FaultKind::DeviceFault, "lud#k"));
        record(FaultKind::DeviceFault, "lud#k");
        assert!(already_injected(FaultKind::DeviceFault, "lud#k"));
        assert!(
            !already_injected(FaultKind::KernelHang, "lud#k"),
            "kind is part of the key"
        );

        // Restoring a journaled event rebuilds the ledger entry without
        // re-counting it as a new injection.
        restore_event(FaultKind::TornWrite, "journal:rec-1234", 2);
        let l = ledger();
        assert!(l.iter().any(|e| e.kind == FaultKind::TornWrite
            && e.key == "journal:rec-1234"
            && e.attempt == 2));
        deconfigure();
    }

    #[test]
    fn event_sink_fires_once_per_new_entry() {
        let _g = lock();
        use std::sync::Arc;
        let seen: Arc<Mutex<Vec<(String, String, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        configure(FaultSpec::parse("device:lud").unwrap(), 1);
        set_event_sink(move |kind, key, attempt| {
            seen2
                .lock()
                .unwrap()
                .push((kind.tag().into(), key.into(), attempt));
        });
        record(FaultKind::DeviceFault, "lud#a");
        record(FaultKind::DeviceFault, "lud#a"); // dedup: no second event
        record(FaultKind::DeviceFault, "lud#b");
        restore_event(FaultKind::DeviceFault, "lud#c", 0); // restore: silent
        clear_event_sink();
        record(FaultKind::DeviceFault, "lud#d"); // sink removed
        let events = seen.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                ("device".to_string(), "lud#a".to_string(), 0),
                ("device".to_string(), "lud#b".to_string(), 0),
            ]
        );
        deconfigure();
    }
}
