//! Property tests for the retry backoff schedule: monotone in the
//! attempt number, capped, and a pure function of (seed, key,
//! attempt).

use paccport_faults::Backoff;
use proptest::prelude::*;

fn backoff(base: u64, cap: u64, seed: u64) -> Backoff {
    Backoff {
        base_ns: base,
        cap_ns: cap,
        seed,
    }
}

proptest! {
    #[test]
    fn delays_are_monotone_nondecreasing_until_capped(
        base in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
        key_n in 0u64..1_000_000,
    ) {
        let key = format!("k{key_n}");
        let cap = base * 64;
        let b = backoff(base, cap, seed);
        prop_assert_eq!(b.delay_ns(&key, 0), 0, "first attempt never waits");
        let mut prev = 0u64;
        for attempt in 1..12u32 {
            let d = b.delay_ns(&key, attempt);
            prop_assert!(
                d >= prev || d == cap,
                "attempt {} delay {} dropped below {} before the cap",
                attempt, d, prev
            );
            prop_assert!(d <= cap, "delay {} exceeds cap {}", d, cap);
            prev = d;
        }
    }

    #[test]
    fn delays_are_deterministic_per_seed(
        base in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
        key_n in 0u64..1_000_000,
        attempt in 1u32..16,
    ) {
        let key = format!("k{key_n}");
        let cap = base * 1024;
        let a = backoff(base, cap, seed).delay_ns(&key, attempt);
        let b = backoff(base, cap, seed).delay_ns(&key, attempt);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn jitter_stays_within_one_base_of_the_exponential(
        base in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
        key_n in 0u64..1_000_000,
        attempt in 1u32..10,
    ) {
        let key = format!("k{key_n}");
        let cap = u64::MAX;
        let d = backoff(base, cap, seed).delay_ns(&key, attempt);
        let exp = base << (attempt - 1).min(32);
        prop_assert!(d >= exp, "delay {} below the exponential floor {}", d, exp);
        prop_assert!(d < exp + base, "jitter must stay within one base");
    }
}
