//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **Quirks as data** — each figure-shaping compiler bug is
//!    toggled off to show which paper observation it produces
//!    (e.g. without `caps_default_gang1` the LUD baseline gap
//!    vanishes).
//! 2. **Roofline vs pure-compute** — the memory term of the timing
//!    model is what makes LUD prefer worker 16 (Fig. 4); removing it
//!    (approximated by a compute-bound instruction mix) moves the
//!    optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_compilers::{compile, CompileOptions, CompilerId, QuirkSet};
use paccport_devsim::{run, RunConfig};
use paccport_kernels::{lud, VariantCfg};

fn quirk_ablation() {
    let p = lud::program(&VariantCfg::baseline());
    let rc = RunConfig::timing(vec![("n".into(), 1024.0)], 1);
    let faithful = CompileOptions::gpu();
    let mut fixed = CompileOptions::gpu();
    fixed.quirks = QuirkSet::none();
    let t_bug = run(&compile(CompilerId::Caps, &p, &faithful).unwrap(), &rc)
        .unwrap()
        .elapsed;
    let t_fixed = run(&compile(CompilerId::Caps, &p, &fixed).unwrap(), &rc)
        .unwrap()
        .elapsed;
    println!("== Ablation: caps_default_gang1 quirk (LUD n=1024 baseline) ==");
    println!("  with bug (paper):    {t_bug:.3} s");
    println!("  bug disabled:        {t_fixed:.3} s");
    println!(
        "  -> the quirk alone produces the Fig. 3 baseline gap ({:.0}x)\n",
        t_bug / t_fixed
    );
    assert!(t_bug / t_fixed > 10.0);
}

fn bench(c: &mut Criterion) {
    quirk_ablation();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let p = lud::program(&VariantCfg::baseline());
    let rc = RunConfig::timing(vec![("n".into(), 512.0)], 1);
    for (label, quirks) in [
        ("faithful", QuirkSet::faithful()),
        ("bug_free", QuirkSet::none()),
    ] {
        let mut o = CompileOptions::gpu();
        o.quirks = quirks;
        let compiled = compile(CompilerId::Caps, &p, &o).unwrap();
        g.bench_function(format!("lud_timing_{label}"), |b| {
            b.iter(|| std::hint::black_box(run(&compiled, &rc).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
