//! Regenerates Figures 7 and 9 (Gaussian elimination: elapsed times
//! and PTX composition incl. the 3N/2N kernel-launch counts).

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_core::experiments::{fig7_ge, fig9_ge_ptx};
use paccport_core::study::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    println!(
        "{}",
        paccport_core::report::render_elapsed(&fig7_ge(&scale))
    );
    println!(
        "{}",
        paccport_core::report::render_ptx(&fig9_ge_ptx(&scale))
    );
    let mut g = c.benchmark_group("fig7_ge");
    g.sample_size(10);
    g.bench_function("fig7_quick", |b| {
        b.iter(|| std::hint::black_box(fig7_ge(&scale)))
    });
    g.bench_function("fig9_quick", |b| {
        b.iter(|| std::hint::black_box(fig9_ge_ptx(&scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
