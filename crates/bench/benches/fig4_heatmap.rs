//! Regenerates the Figure 4 heat maps (thread-distribution sweeps for
//! LUD on CAPS-K40, PGI-K40 and CAPS-MIC) and benchmarks the
//! rayon-parallel sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_core::experiments::fig4_heatmaps;
use paccport_core::study::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    for hm in fig4_heatmaps(&scale) {
        println!("{}", hm.render());
    }
    let mut g = c.benchmark_group("fig4_heatmap");
    g.sample_size(10);
    g.bench_function("three_sweeps_quick", |b| {
        b.iter(|| std::hint::black_box(fig4_heatmaps(&scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
