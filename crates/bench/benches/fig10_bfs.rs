//! Regenerates Figures 10/11 and Table VII (BFS: elapsed times, PTX
//! stubs, transfer schedules).

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_core::experiments::{fig10_bfs, fig11_bfs_ptx, tab7_bfs};
use paccport_core::study::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    println!(
        "{}",
        paccport_core::report::render_elapsed(&fig10_bfs(&scale))
    );
    println!(
        "{}",
        paccport_core::report::render_ptx(&fig11_bfs_ptx(&scale))
    );
    println!("{}", paccport_core::report::render_tab7(&tab7_bfs(&scale)));
    let mut g = c.benchmark_group("fig10_bfs");
    g.sample_size(10);
    g.bench_function("fig10_quick", |b| {
        b.iter(|| std::hint::black_box(fig10_bfs(&scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
