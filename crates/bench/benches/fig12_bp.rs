//! Regenerates Figures 12 and 14 (Back Propagation: elapsed times and
//! PTX composition incl. the reduction's shared-memory instructions).

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_core::experiments::{fig12_bp, fig14_bp_ptx};
use paccport_core::study::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    println!(
        "{}",
        paccport_core::report::render_elapsed(&fig12_bp(&scale))
    );
    println!(
        "{}",
        paccport_core::report::render_ptx(&fig14_bp_ptx(&scale))
    );
    let mut g = c.benchmark_group("fig12_bp");
    g.sample_size(10);
    g.bench_function("fig12_quick", |b| {
        b.iter(|| std::hint::black_box(fig12_bp(&scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
