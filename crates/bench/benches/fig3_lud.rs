//! Regenerates Figure 3 (LUD elapsed times per optimization step) and
//! benchmarks the pipeline that produces it: IR build → CAPS/PGI
//! compile → timing-model run for every variant × device.

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_core::experiments::fig3_lud;
use paccport_core::study::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    // Print the regenerated figure once, so `cargo bench` output
    // doubles as the reproduction artifact.
    let fig = fig3_lud(&scale);
    println!("{}", paccport_core::report::render_elapsed(&fig));
    let mut g = c.benchmark_group("fig3_lud");
    g.sample_size(10);
    g.bench_function("regenerate_quick", |b| {
        b.iter(|| std::hint::black_box(fig3_lud(&scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
