//! Regenerates Figure 15 (Hydro: OpenCL vs CAPS OpenACC on GPU/MIC
//! with GCC/ICC hosts) and benchmarks both the timing pipeline and the
//! functional interpreter on a small Sod problem.

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_compilers::{compile, CompileOptions, CompilerId};
use paccport_core::experiments::fig15_hydro;
use paccport_core::study::Scale;
use paccport_devsim::run;
use paccport_hydro as hydro;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    println!(
        "{}",
        paccport_core::report::render_elapsed(&fig15_hydro(&scale))
    );
    let mut g = c.benchmark_group("fig15_hydro");
    g.sample_size(10);
    g.bench_function("fig15_quick", |b| {
        b.iter(|| std::hint::black_box(fig15_hydro(&scale)))
    });
    // Functional interpreter throughput on the full 19-kernel pipeline.
    let p = hydro::program(hydro::HydroVariant::Optimized);
    let compiled = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    let cfg = hydro::sod_run_config(32, 8, 3);
    g.bench_function("functional_sod_32x8x3", |b| {
        b.iter(|| std::hint::black_box(run(&compiled, &cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
