//! Regenerates Figure 6 (LUD PTX composition) and benchmarks the
//! compiler lowerings themselves: per-kernel lowering and whole-module
//! compilation for both personalities.

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_compilers::{compile, CompileOptions, CompilerId, LoweringStyle};
use paccport_core::experiments::fig6_lud_ptx;
use paccport_core::study::Scale;
use paccport_kernels::{lud, VariantCfg};

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    println!(
        "{}",
        paccport_core::report::render_ptx(&fig6_lud_ptx(&scale))
    );
    let p = lud::program(&VariantCfg::thread_dist(256, 16));
    let mut g = c.benchmark_group("ptx_counts");
    g.bench_function("caps_compile_lud", |b| {
        b.iter(|| std::hint::black_box(compile(CompilerId::Caps, &p, &CompileOptions::gpu())))
    });
    g.bench_function("pgi_compile_lud", |b| {
        b.iter(|| std::hint::black_box(compile(CompilerId::Pgi, &p, &CompileOptions::gpu())))
    });
    let k = p.kernel("lud_row").unwrap().clone();
    g.bench_function("lower_single_kernel", |b| {
        b.iter(|| {
            std::hint::black_box(paccport_compilers::lower_kernel(
                &p,
                &k,
                1,
                &LoweringStyle::caps(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
