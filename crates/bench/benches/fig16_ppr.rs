//! Regenerates Figure 16 (the PPR comparison, Eq. 1) across GE, BFS,
//! BP and Hydro.

use criterion::{criterion_group, criterion_main, Criterion};
use paccport_core::experiments::fig16_ppr;
use paccport_core::study::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    println!("{}", paccport_core::report::render_ppr(&fig16_ppr(&scale)));
    let mut g = c.benchmark_group("fig16_ppr");
    g.sample_size(10);
    g.bench_function("four_benchmarks_quick", |b| {
        b.iter(|| std::hint::black_box(fig16_ppr(&scale)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
