//! `reproduce bench-devsim` — kernel-execution throughput of the two
//! devsim tiers.
//!
//! Measures the pure kernel-execution path (no host walk, no transfer
//! accounting, no race tracker): each workload's kernels run over the
//! full iteration space under the tree-walking interpreter and under
//! the compile-once bytecode VM, wall-clocked with a median-of-N
//! sample loop (the same measurement shape as the criterion shim's
//! `Bencher::iter`, which `benches/tier_exec.rs` reuses). Before any
//! timing, both tiers run once on identical inputs and every output
//! buffer is asserted bitwise-equal — a benchmark that drifted
//! semantically would be measuring a different program.
//!
//! Two workloads, both sized so the tree tier takes tens of
//! milliseconds per pass:
//!
//! * **hydro** — the Sod-tube solver's `Optimized` OpenACC variant
//!   (the paper's Section V-E code), every kernel once per pass;
//! * **matmul** — a dense `n×n` triple loop with a sequential inner
//!   accumulation, the classic arithmetic-bound shape the paper's GE
//!   and LUD kernels reduce to.
//!
//! Output is a deterministic text table plus (optionally) a small
//! hand-rolled JSON report (`BENCH_devsim.json` in the repo root is a
//! committed reference produced by `--seed 42`; CI re-runs the bench
//! and fails if the measured speedup regresses more than 10% below
//! it).

use std::time::Instant;

use paccport_devsim::bytecode::{compile_kernel, exec_kernel_bc};
use paccport_devsim::interp::{exec_kernel, KernelFidelity, Scope};
use paccport_devsim::{Buffer, V};
use paccport_hydro::acc::{program as hydro_program, HydroVariant};
use paccport_ir::{
    assign, for_, ld, let_, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, Program,
    ProgramBuilder, Scalar, E,
};

/// One workload's tier timings (seconds, median of N samples).
#[derive(Debug, Clone)]
pub struct BenchEntry {
    pub name: String,
    pub kernels: usize,
    pub tree_s: f64,
    pub bytecode_s: f64,
}

impl BenchEntry {
    pub fn speedup(&self) -> f64 {
        self.tree_s / self.bytecode_s
    }
}

/// Full report of a `bench-devsim` run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub seed: u64,
    pub samples: usize,
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "devsim tier throughput (seed {}, median of {} samples)\n",
            self.seed, self.samples
        );
        for e in &self.entries {
            s.push_str(&format!(
                "  {:<8} {:>2} kernels   tree {:>10.3} ms   bytecode {:>10.3} ms   speedup {:>6.2}x\n",
                e.name,
                e.kernels,
                e.tree_s * 1e3,
                e.bytecode_s * 1e3,
                e.speedup()
            ));
        }
        s
    }

    /// Hand-rolled JSON (no serde dependency in the hot path; the
    /// shape is stable and greppable).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"samples\": {},\n", self.samples));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"kernels\": {}, \"tree_s\": {:.6}, \"bytecode_s\": {:.6}, \"speedup\": {:.2}}}{}\n",
                e.name,
                e.kernels,
                e.tree_s,
                e.bytecode_s,
                e.speedup(),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Extract `"name": speedup` pairs from a report previously written by
/// [`BenchReport::to_json`]. Deliberately line-oriented — it only
/// parses what `to_json` emits.
pub fn parse_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(n0) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[n0 + 9..];
        let Some(n1) = rest.find('"') else { continue };
        let name = rest[..n1].to_string();
        let Some(s0) = line.find("\"speedup\": ") else {
            continue;
        };
        let tail = &line[s0 + 11..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse() {
            out.push((name, v));
        }
    }
    out
}

/// splitmix64 for deterministic input data.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    /// In [0.5, 1.5): away from zero so reciprocal-heavy kernels stay
    /// finite and both tiers exercise ordinary float paths.
    fn f(&mut self) -> f64 {
        0.5 + (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One benchmarkable workload: a program plus concrete inputs.
struct Workload {
    name: &'static str,
    p: Program,
    params: Vec<V>,
    bufs: Vec<Buffer>,
}

/// Dense `n×n` matmul with a sequential inner accumulation.
fn matmul_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("matmul_bench");
    let np = b.iparam("n");
    let a = b.array("a", Scalar::F32, E::from(np) * E::from(np), Intent::In);
    let bb = b.array("b", Scalar::F32, E::from(np) * E::from(np), Intent::In);
    let c = b.array("c", Scalar::F32, E::from(np) * E::from(np), Intent::Out);
    let i = b.var("i");
    let j = b.var("j");
    let kv = b.var("k");
    let acc = b.var("acc");
    let loops = vec![
        ParallelLoop::new(i, Expr::iconst(0), Expr::param(np)),
        ParallelLoop::new(j, Expr::iconst(0), Expr::param(np)),
    ];
    let body = Block::new(vec![
        let_(acc, Scalar::F32, 0.0),
        for_(
            kv,
            0i64,
            E::from(np),
            vec![assign(
                acc,
                E::from(Expr::var(acc))
                    + ld(
                        a,
                        E::from(Expr::var(i)) * E::from(np) + E::from(Expr::var(kv)),
                    ) * ld(
                        bb,
                        E::from(Expr::var(kv)) * E::from(np) + E::from(Expr::var(j)),
                    ),
            )],
        ),
        st(
            c,
            E::from(Expr::var(i)) * E::from(np) + E::from(Expr::var(j)),
            E::from(Expr::var(acc)),
        ),
    ]);
    let k = Kernel::simple("matmul", loops, body);
    let _ = n;
    b.finish(vec![HostStmt::Launch(k)])
}

/// Bind parameters in declaration order (same rule as the runner) and
/// size every array from its length expression.
fn materialize(p: Program, values: &[(&str, f64)], rng: &mut Rng, name: &'static str) -> Workload {
    let params: Vec<V> = p
        .params
        .iter()
        .map(|d| {
            let v = values
                .iter()
                .find(|(n, _)| *n == d.name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("bench workload `{name}` missing param `{}`", d.name));
            match d.ty {
                Scalar::F32 | Scalar::F64 => V::F(v),
                _ => V::I(v as i64),
            }
        })
        .collect();
    let mut bufs = Vec::with_capacity(p.arrays.len());
    let mut scratch = paccport_devsim::fresh_vars(&p);
    for a in &p.arrays {
        let mut no_bufs: [Buffer; 0] = [];
        let scope = Scope {
            vars: &mut scratch,
            bufs: &mut no_bufs,
            locals: None,
            group: Default::default(),
            tracker: None,
        };
        let len = paccport_devsim::interp::eval(&p, &params, &a.len, &scope).as_i() as usize;
        let buf = match a.elem {
            Scalar::F64 => Buffer::F64((0..len).map(|_| rng.f()).collect()),
            _ => Buffer::F32((0..len).map(|_| rng.f() as f32).collect()),
        };
        bufs.push(buf);
    }
    Workload {
        name,
        p,
        params,
        bufs,
    }
}

/// Variable environment for a bench pass: every slot pre-bound to a
/// small float, standing in for the host-assigned scalars (hydro's
/// `dt`/`dtdx`) that the full runner would have written before launch.
fn bench_vars(p: &Program) -> Vec<Option<V>> {
    vec![Some(V::F(0.004)); p.var_names.len()]
}

/// One full pass of a workload under the tree tier.
pub fn run_tree_pass(w_p: &Program, params: &[V], bufs: &mut [Buffer]) {
    let mut vars = bench_vars(w_p);
    for k in w_p.kernels() {
        exec_kernel(w_p, params, k, &mut vars, bufs, KernelFidelity::Exact);
    }
}

/// One full pass under the bytecode tier, given pre-compiled kernels.
pub fn run_bytecode_pass(
    w_p: &Program,
    codes: &[paccport_devsim::KernelCode],
    params: &[V],
    bufs: &mut [Buffer],
) {
    let mut vars = bench_vars(w_p);
    for (k, code) in w_p.kernels().iter().zip(codes) {
        exec_kernel_bc(
            code,
            params,
            k,
            &mut vars,
            bufs,
            KernelFidelity::Exact,
            None,
        );
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The two committed workloads at their benchmark sizes.
fn workloads(seed: u64) -> Vec<Workload> {
    let mut rng = Rng(seed);
    let n = 48i64;
    vec![
        materialize(
            hydro_program(HydroVariant::Optimized),
            &[("nx", 48.0), ("ny", 48.0), ("dx", 0.02), ("nsteps", 1.0)],
            &mut rng,
            "hydro",
        ),
        materialize(matmul_program(n), &[("n", n as f64)], &mut rng, "matmul"),
    ]
}

/// Run the tier benchmark: `samples` timed passes per tier per
/// workload, median wall time, after a bitwise cross-check of the two
/// tiers' outputs on identical inputs.
pub fn run_devsim_bench(seed: u64, samples: usize) -> BenchReport {
    let samples = samples.max(1);
    let mut entries = Vec::new();
    for w in workloads(seed) {
        let codes: Vec<_> =
            w.p.kernels()
                .iter()
                .map(|k| compile_kernel(&w.p, k))
                .collect();

        // Semantic gate before any timing: identical inputs, bitwise
        // identical outputs.
        let mut tb = w.bufs.clone();
        let mut bb = w.bufs.clone();
        run_tree_pass(&w.p, &w.params, &mut tb);
        run_bytecode_pass(&w.p, &codes, &w.params, &mut bb);
        for (i, (x, y)) in tb.iter().zip(&bb).enumerate() {
            assert_eq!(
                x.bits(),
                y.bits(),
                "bench workload `{}` buffer {i} diverged between tiers",
                w.name
            );
        }

        let time = |f: &mut dyn FnMut()| {
            // Warmup pass, then N timed samples (criterion-shim shape).
            f();
            let mut ts = Vec::with_capacity(samples);
            for _ in 0..samples {
                let t0 = Instant::now();
                f();
                ts.push(t0.elapsed().as_secs_f64());
            }
            median(ts)
        };
        let mut bufs = w.bufs.clone();
        let tree_s = time(&mut || run_tree_pass(&w.p, &w.params, std::hint::black_box(&mut bufs)));
        let mut bufs = w.bufs.clone();
        let bytecode_s = time(&mut || {
            run_bytecode_pass(&w.p, &codes, &w.params, std::hint::black_box(&mut bufs))
        });
        entries.push(BenchEntry {
            name: w.name.to_string(),
            kernels: codes.len(),
            tree_s,
            bytecode_s,
        });
    }
    BenchReport {
        seed,
        samples,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_tiers_agree() {
        // One sample keeps this cheap; the bitwise gate inside
        // `run_devsim_bench` is the real assertion.
        let r = run_devsim_bench(42, 1);
        assert_eq!(r.entries.len(), 2);
        assert!(r
            .entries
            .iter()
            .all(|e| e.tree_s > 0.0 && e.bytecode_s > 0.0));
    }

    #[test]
    fn json_roundtrips_speedups() {
        let r = BenchReport {
            seed: 1,
            samples: 3,
            entries: vec![BenchEntry {
                name: "hydro".into(),
                kernels: 7,
                tree_s: 0.1,
                bytecode_s: 0.01,
            }],
        };
        let sp = parse_speedups(&r.to_json());
        assert_eq!(sp.len(), 1);
        assert_eq!(sp[0].0, "hydro");
        assert!((sp[0].1 - 10.0).abs() < 0.01);
    }
}
