//! # paccport-bench — the benchmark harness
//!
//! Two faces:
//!
//! * the **`reproduce` binary** (`cargo run -p paccport-bench --bin
//!   reproduce --release`) regenerates every table and figure of the
//!   paper's evaluation section on the simulated test bed (use
//!   `--quick` for CI-scale inputs, `--exp figN` for one experiment);
//! * the **criterion benches** (`cargo bench`) measure this
//!   reproduction's own machinery — one bench per paper table/figure
//!   pipeline, plus ablations over the design choices DESIGN.md calls
//!   out (quirk toggles, roofline vs pure-compute model, sampled vs
//!   exact dynamic costs).

pub mod devbench;

pub use paccport_core::study::Scale;
