//! Regenerate every table and figure of the paper's evaluation on the
//! simulated test bed.
//!
//! ```text
//! reproduce [--check] [--scale smoke|quick|paper] [--quick]
//!           [--jobs N] [--trace] [--profile] [--exp <id>]...
//!           [--tier tree|bytecode|both] [--passes LIST]
//!           [--inject SPEC] [--fault-seed N]
//!           [--state-dir DIR] [--resume]
//!           [--trace-out FILE] [--trace-format chrome|jsonl|folded]
//!           [--metrics-out FILE]
//! reproduce conform [--programs N] [--seed S] [--tier tree|bytecode|both]
//!           [telemetry flags]
//! reproduce profile [--scale ...] [--jobs N] [--inject SPEC]
//!                   [--fault-seed N] [telemetry flags]
//! reproduce bench-devsim [--seed S] [--samples N] [--json FILE]
//!                        [--against FILE]
//! reproduce fsck DIR
//! reproduce serve [--addr HOST:PORT] [--jobs N] [--workers N]
//!                 [--queue-cap N] [--cache-bytes N] [--tenant-quota N]
//!                 [--port-file FILE] [--inject SPEC] [--fault-seed N]
//!                 [--access-log FILE] [--recorder-cap N]
//! reproduce loadgen --addr HOST:PORT [--rps N] [--duration-steps K]
//!                   [--seed S] [--dup-ratio R] [--scale ...]
//!                   [--tenants N] [--slo-ms MS] [--json FILE]
//!                   [--scrape-metrics] [--shutdown]
//!                   [--sample-traces N] [--trace-dir DIR]
//! ```
//!
//! With no `--exp`, all experiments run. `--scale` picks the input
//! sizes: `paper` (Table IV, the default), `quick` (CI scale), or
//! `smoke` (smallest functional sizes); `--quick` is an alias for
//! `--scale quick`. `--jobs N` fans each experiment matrix out over N
//! worker threads through a shared compile cache (`--jobs 1`, the
//! default, is the serial reference path; stdout is byte-identical
//! either way). `--trace` prints a pipeline trace — span timings and
//! cache/transform/launch counters — to stderr after the run.
//! Recognized ids:
//! tab1 tab2 tab3 tab4 tab5 tab6 tab7, fig1 fig3 fig4 fig6 fig7 fig8
//! fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16, plus the future-work
//! extensions ext1 (OpenARC auto-tuning) and ext2 (data-region
//! insertion).
//!
//! `--passes LIST` runs the middle-end pass pipeline over every
//! program before it reaches a compiler personality: a comma-
//! separated list of pass names, where `default` expands to
//! `mem2reg,constfold,licm,cse,dse` and `ptx-peephole` additionally
//! cleans dead `mov`/`cvt` debris from the lowered modules. Every
//! pass preserves bitwise-exact observables (the `conform`
//! subcommand checks each one, and each prefix of the default
//! pipeline, as its own leg); what changes are the static instruction
//! counts (Table V) and the modeled timings derived from them.
//!
//! `--check` runs the soundness cross-check instead of the figures:
//! every benchmark variant × target executes *functionally* (at
//! `smoke`-clamped sizes) under the device simulator's dynamic race
//! detector, and the findings are compared against the static
//! dependence analysis per kernel and loop level. Exits nonzero if
//! any statically-independent loop races, or a known-wrong reduction
//! plan is not caught as a write-write race.
//!
//! `conform` runs the differential conformance harness instead of the
//! figures: `--programs N` (default 50) seeded random IR programs
//! (`--seed S`, default 42) each execute under the reference oracle,
//! the functional simulator across every compiler personality ×
//! device, and every semantics-preserving transform, asserting
//! bitwise-equal observables. Known miscompilation quirks (the CAPS
//! MIC reduction lowering) must surface as *expected* divergence.
//! Any genuine mismatch is shrunk to a minimal program, printed as a
//! paste-ready regression test, and the run exits nonzero. Output is
//! deterministic: same arguments, byte-identical stdout.
//!
//! `profile` runs every benchmark variant × target functionally and
//! prints the `nvprof`-style per-kernel profile for each cell — the
//! view that exposed PGI's BFS kernels silently running on the host
//! (Section V-C1). `--profile` appends the same sweep to a normal
//! figure run, sharing its compile cache.
//!
//! Structured telemetry (every subcommand): `--trace-out FILE` records
//! the run as a timestamped span event stream and exports it in
//! `--trace-format` — `chrome` (trace-event JSON, loadable in Perfetto
//! or `chrome://tracing`, one lane per engine worker), `jsonl` (one
//! JSON object per line), or `folded` (flamegraph folded stacks).
//! `--metrics-out FILE` writes a Prometheus-style text exposition of
//! the run's metrics registry: simulated hardware counters per kernel
//! (launches, device time, memory traffic, divergence, occupancy),
//! engine job lifecycle (cache hits, retries, quarantines), compiler
//! invocations, and conformance leg outcomes. Both exports are
//! structurally deterministic — same flags, same structure; only
//! wall-clock timestamp fields vary, and under `--inject` even those
//! come from the virtual clock.
//!
//! `--tier tree|bytecode|both` selects the devsim execution tier for
//! every functional kernel execution: `tree` (the default) is the
//! tree-walking reference interpreter, `bytecode` the compile-once
//! bytecode VM — the two are bitwise-equivalent by contract, so
//! stdout is byte-identical either way. `both` additionally runs the
//! tier-equivalence sweep: every soundness cell executes under *both*
//! tiers and the complete observable run state (buffers, race sets,
//! transfer ledgers, timings) is compared bit-for-bit, appending a
//! `tier equivalence` section and exiting nonzero on any mismatch.
//! On `conform`, `--tier` picks the tier the compiler-matrix legs run
//! under; the always-on `tier/bytecode` leg cross-checks the two
//! tiers on every generated program regardless.
//!
//! `bench-devsim` measures kernel-execution throughput of the two
//! tiers on the hydro and matmul workloads (median-of-`--samples`
//! wall time, bitwise cross-check before timing) and optionally
//! writes a JSON report (`--json`). `--against FILE` compares the
//! fresh speedups with a previously committed report and exits
//! nonzero if any workload regressed more than 10% below it.
//!
//! `--inject SPEC` turns on deterministic fault injection (chaos
//! testing): `SPEC` is a comma-separated list of
//! `kind[:target][:rate]` clauses — kinds `compile`, `slow`, `device`,
//! `hang`, `corrupt-cache`, `crash`, `torn-write` — or the `chaos`
//! preset. `--fault-seed N` (default 0) seeds the pure decision hash,
//! so a given (spec, seed) injects exactly the same faults every run.
//! The engine retries injected faults with exponential backoff on a
//! virtual clock and quarantines cells that exhaust their attempts;
//! the run completes with partial results, prints a fault ledger, and
//! exits nonzero only if a cell failed for a reason that was *not*
//! injected.
//!
//! `--state-dir DIR` makes the run durable: compiled artifacts persist
//! in a checksummed on-disk store under `DIR/cache`, and every
//! completed experiment cell (and injected fault event) is appended to
//! the run journal `DIR/journal.log` the moment it finishes. Without
//! the flag nothing is ever written to disk and the run is exactly the
//! pre-durability CLI. `--resume` (requires `--state-dir`) replays the
//! journal of a previous — possibly killed — run: journaled cells are
//! *not* recomputed, restored fault events rebuild the fault ledger,
//! and stdout is byte-identical to what one uninterrupted run would
//! have printed, at any `--jobs`. Resume bookkeeping goes to stderr
//! only. The `crash` and `torn-write` fault kinds have their sites in
//! this durability layer (they only fire under `--state-dir`): `crash`
//! aborts the process with exit code 75 right after journal step *k*
//! becomes durable, `torn-write` leaves a half-written record or cache
//! entry behind and then aborts — the supervisor protocol is "exit 75
//! means restart with `--resume`".
//!
//! `reproduce fsck DIR` verifies and repairs a state directory
//! offline: the journal is truncated back to its last durable record,
//! store entries whose checksum does not verify are evicted, and
//! leftover temp files from interrupted writes are removed. Exit
//! codes: 0 — the directory was already consistent; 1 — repairs were
//! performed and the directory is now consistent; 2 — usage error;
//! 3 — the directory cannot be inspected at all.
//!
//! `serve` exposes the experiment matrix over HTTP (see the
//! `paccport-server` crate): `POST /run` executes a
//! `(benchmark × variant × target × scale × seed)` slice on the shared
//! engine behind a bounded admission queue (429 + `Retry-After` when
//! full), coalescing identical concurrent requests into one execution;
//! `POST /stream` emits one chunk per cell; `GET /metrics` is the
//! Prometheus exposition. `--cache-bytes` caps the artifact cache (LRU
//! eviction) and `--tenant-quota` bounds each `X-Tenant`'s share.
//! The bound address goes to stdout and `--port-file`; the process
//! runs until SIGTERM or `POST /shutdown`, then drains in-flight work
//! and exits 0. Response bodies are deterministic per
//! `(request, seed)` — byte-identical across `--jobs` levels.
//!
//! `loadgen` drives a running server with a seeded, deterministic
//! request schedule (`--dup-ratio` controls how often a request
//! repeats its predecessor, exercising coalescing) and prints a JSON
//! latency/throughput/SLO report computed on a virtual clock from the
//! server's *modeled* timings — two runs with the same seed against
//! fresh servers are byte-identical.

use paccport_core::engine::Engine;
use paccport_core::experiments as exp;
use paccport_core::report;
use paccport_core::study::Scale;
use paccport_trace::export::TraceFormat;

/// Telemetry sinks shared by every subcommand: where to write the
/// event-stream export and the metrics exposition, if anywhere. Held
/// in a process global so *every* exit path — normal completion,
/// usage errors via [`die`], and injected crashes via the
/// `paccport_faults::on_crash` hook — can flush whatever has been
/// recorded so far.
struct Telemetry {
    trace_out: Option<String>,
    trace_format: Option<TraceFormat>,
    metrics_out: Option<String>,
}

static TELEMETRY: std::sync::Mutex<Telemetry> = std::sync::Mutex::new(Telemetry {
    trace_out: None,
    trace_format: None,
    metrics_out: None,
});

/// Consume `a` (and its value from `it`) if it is a telemetry flag;
/// `false` means the flag belongs to someone else. Recording switches
/// on the moment the flag is parsed — before any validation of later
/// flags — so even a run that dies on a usage error leaves a
/// parseable (if near-empty) export behind.
fn tele_consume(a: &str, it: &mut std::slice::Iter<String>) -> bool {
    match a {
        "--trace-out" => {
            let path = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--trace-out requires a file path"));
            paccport_trace::set_events_enabled(true);
            TELEMETRY.lock().unwrap().trace_out = Some(path);
        }
        "--trace-format" => {
            let name = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--trace-format requires chrome|jsonl|folded"));
            let format = TraceFormat::parse(&name).unwrap_or_else(|e| die(&e));
            TELEMETRY.lock().unwrap().trace_format = Some(format);
        }
        "--metrics-out" => {
            let path = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--metrics-out requires a file path"));
            paccport_trace::metrics::set_metrics_enabled(true);
            TELEMETRY.lock().unwrap().metrics_out = Some(path);
        }
        _ => return false,
    }
    true
}

/// Validate the telemetry flag combination after parsing.
fn tele_validate() {
    let dangling_format = {
        let t = TELEMETRY.lock().unwrap();
        t.trace_format.is_some() && t.trace_out.is_none()
    };
    if dangling_format {
        die("--trace-format requires --trace-out");
    }
}

/// Write the configured exports. The happy path (`quiet = false`)
/// dies on an I/O failure; the abort paths — usage errors, injected
/// crashes — pass `quiet = true` so a flush problem can never mask
/// the exit code the caller is about to report.
fn tele_flush(quiet: bool) {
    let (trace_out, trace_format, metrics_out) = {
        let Ok(t) = TELEMETRY.lock() else { return };
        (t.trace_out.clone(), t.trace_format, t.metrics_out.clone())
    };
    let write = |path: &str, text: String| {
        if let Err(e) = std::fs::write(path, text) {
            if quiet {
                eprintln!("reproduce: cannot write {path}: {e}");
            } else {
                die(&format!("cannot write {path}: {e}"));
            }
        }
    };
    if let Some(path) = &trace_out {
        let format = trace_format.unwrap_or(TraceFormat::Chrome);
        let text = paccport_trace::export::render(
            format,
            &paccport_trace::events(),
            &paccport_trace::summary(),
        );
        write(path, text);
    }
    if let Some(path) = &metrics_out {
        write(path, paccport_trace::metrics::render_prometheus());
    }
}

/// Flush the pipeline trace even when a panic unwinds out of `main` —
/// a normal return or `process::exit` skips this (the happy path
/// prints its own summary), so the guard only fires while panicking.
struct TraceFlushGuard;

impl Drop for TraceFlushGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && paccport_trace::enabled() {
            eprintln!("reproduce: panicked — flushing pipeline trace");
            eprint!("{}", paccport_trace::summary().render());
        }
    }
}

fn main() {
    // Even a run killed by an injected crash must leave parseable
    // telemetry behind: flush from the crash hook, quietly, so exit
    // code 75 survives.
    paccport_faults::on_crash(|| tele_flush(true));
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("conform") {
        conform(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("profile") {
        profile_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-devsim") {
        bench_devsim(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("fsck") {
        fsck_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        serve_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("loadgen") {
        loadgen_cmd(&args[1..]);
        return;
    }
    let check = args.iter().any(|a| a == "--check");
    let trace = args.iter().any(|a| a == "--trace");
    let profile = args.iter().any(|a| a == "--profile");
    let mut scale_name = if args.iter().any(|a| a == "--quick") {
        "quick".to_string()
    } else {
        "paper".to_string()
    };
    let mut jobs: usize = 1;
    let mut wanted: Vec<String> = Vec::new();
    let mut inject: Option<String> = None;
    let mut fault_seed: u64 = 0;
    let mut tier_name = "tree".to_string();
    let mut state_dir: Option<String> = None;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if tele_consume(a, &mut it) {
        } else if a == "--state-dir" {
            state_dir = Some(
                it.next()
                    .cloned()
                    .unwrap_or_else(|| die("--state-dir requires a directory path")),
            );
        } else if a == "--resume" {
            resume = true;
        } else if a == "--tier" {
            tier_name = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--tier requires tree|bytecode|both"));
        } else if a == "--exp" {
            if let Some(id) = it.next() {
                wanted.push(id.clone());
            }
        } else if a == "--inject" {
            inject = Some(
                it.next()
                    .cloned()
                    .unwrap_or_else(|| die("--inject requires a fault spec (try `chaos`)")),
            );
        } else if a == "--fault-seed" {
            fault_seed = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--fault-seed requires an unsigned integer"));
        } else if a == "--jobs" {
            jobs = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--jobs requires a positive integer"));
            if jobs == 0 {
                die("--jobs requires a positive integer");
            }
        } else if a == "--scale" {
            scale_name = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--scale requires smoke|quick|paper"));
        } else if a == "--passes" {
            let spec = it.next().cloned().unwrap_or_else(|| {
                die("--passes requires a comma-separated pass list (try `default`)")
            });
            match paccport_compilers::passes::Pipeline::parse(&spec) {
                Ok(pl) => paccport_compilers::passes::set_global_pipeline(Some(pl)),
                Err(e) => die(&e),
            }
        }
    }
    let all = wanted.is_empty();
    let scale = match scale_name.as_str() {
        "smoke" => Scale::smoke(),
        "quick" => Scale::quick(),
        "paper" => Scale::paper(),
        _ => die("--scale requires smoke|quick|paper"),
    };
    let want = |id: &str| all || wanted.iter().any(|w| w == id);
    let tier_both = apply_tier(&tier_name);

    if trace {
        paccport_trace::set_enabled(true);
    }
    tele_validate();
    if resume && state_dir.is_none() {
        die("--resume requires --state-dir");
    }
    let _flush_guard = TraceFlushGuard;
    if let Some(spec) = &inject {
        let spec = paccport_faults::FaultSpec::parse(spec)
            .unwrap_or_else(|e| die(&format!("--inject: {e}")));
        paccport_faults::configure(spec, fault_seed);
    }

    // Durable state, when asked for. Opened after fault configuration
    // so `restore_fault_events` can filter on the active kinds, and
    // before the engine so journaled cells replay. All resume
    // bookkeeping goes to stderr: stdout must stay byte-identical to
    // an uninterrupted (or stateless) run.
    let state = state_dir.as_ref().map(|dir| {
        let dir = std::path::Path::new(dir);
        let journal = std::sync::Arc::new(
            paccport_core::CellJournal::open(dir, resume)
                .unwrap_or_else(|e| die(&format!("--state-dir {}: {e}", dir.display()))),
        );
        let store = paccport_core::DiskArtifactStore::open(dir)
            .unwrap_or_else(|e| die(&format!("--state-dir {}: {e}", dir.display())));
        if resume {
            let restored = journal.restore_fault_events();
            eprintln!(
                "reproduce: resuming from {} — {} journaled cells, {} fault events restored",
                dir.display(),
                journal.replayable(),
                restored
            );
        }
        let sink = std::sync::Arc::clone(&journal);
        paccport_faults::set_event_sink(move |kind, site, attempt| {
            sink.record_event(kind.tag(), site, attempt)
        });
        (journal, store)
    });
    let mut eng = Engine::new(jobs);
    if let Some((journal, store)) = state {
        eng.cache().set_store(std::sync::Arc::new(store));
        eng = eng.with_journal(journal);
    }
    let eng = eng;

    if check {
        let report = exp::check_soundness_on(&eng, &scale);
        print!("{}", report::render_soundness(&report));
        let mut tiers_ok = true;
        if tier_both {
            let tr = paccport_core::tierdiff::tier_equivalence_on(eng.cache(), &scale);
            print!("{}", tr.render());
            tiers_ok = tr.ok();
        }
        print!("{}", report::render_fault_ledger(&eng.quarantined()));
        if trace {
            eprintln!(
                "jobs: {}  |  unique artifacts compiled: {}  |  cache hits: {}",
                eng.jobs(),
                eng.cache().misses(),
                eng.cache().hits()
            );
            eprint!("{}", paccport_trace::summary().render());
        }
        tele_flush(false);
        if !report.all_consistent() || !report.lost_update_caught() {
            eprintln!("reproduce --check: soundness invariant violated");
            std::process::exit(1);
        }
        if !tiers_ok {
            eprintln!("reproduce --check: execution tiers diverged");
            std::process::exit(1);
        }
        return;
    }

    println!("paccport `reproduce` — Understanding Performance Portability of OpenACC");
    println!(
        "scale: {} (LUD {}, GE {}, BFS {}, BP {}x{}, Hydro {})\n",
        match scale_name.as_str() {
            "paper" => "paper (Table IV)",
            "smoke" => "smoke",
            _ => "quick",
        },
        scale.lud_n,
        scale.ge_n,
        scale.bfs_n,
        scale.bp_in,
        scale.bp_hid,
        scale.hydro_n
    );

    // ---------------- Static tables ----------------
    if want("tab1") {
        println!("{}", report::render_tab1());
    }
    if want("tab2") {
        let (dep, indep) = exp::tab2_dependence_demo();
        println!("== Table II: The dependency in loops ==");
        println!("dependent loop   (A[i] = A[i-1] + 1): carried dependence found = {dep}");
        println!("independent loop (A[i] = A[i]   + 1): safely parallel          = {indep}\n");
    }
    if want("tab3") {
        println!("{}", report::render_tab3());
    }
    if want("tab4") {
        println!("{}", report::render_tab4());
    }
    if want("tab5") {
        println!("{}", report::render_tab5());
    }
    if want("tab6") {
        println!("{}", report::render_tab6(scale.lud_n as u64));
    }

    // ---------------- Demonstrations ----------------
    if want("fig1") {
        let (cuda, acc) = exp::fig1_tiling_shared_ops_on(&eng);
        println!("== Fig. 1: Tiling in CUDA vs OpenACC ==");
        println!("CUDA/OpenCL-style tiling (BP forward, __local staging): {cuda} shared-memory instructions");
        println!("OpenACC tile clause (GE fan1 under CAPS):               {acc} shared-memory instructions");
        println!("-> OpenACC tiling still reads global memory only, as the paper observes.\n");
    }
    if want("fig8") {
        println!("== Fig. 8: Advanced thread distribution configuration ==");
        println!("{}\n", exp::fig8_advanced_config());
    }
    if want("fig13") {
        println!("== Fig. 13: The reduction directive's shared-memory tree (lowered IR) ==");
        println!("{}", exp::fig13_reduction_listing_on(&eng));
    }

    // ---------------- LUD ----------------
    if want("fig3") {
        println!(
            "{}",
            report::render_elapsed(&exp::fig3_lud_on(&eng, &scale))
        );
    }
    if want("fig4") {
        println!("== Fig. 4: Elapsed time of different thread distributions (LUD) ==");
        for hm in exp::fig4_heatmaps_on(&eng, &scale) {
            println!("{}", hm.render());
            let (g, w, t) = hm.best();
            println!("best: gang {g}, worker {w} ({})\n", report::fmt_secs(t));
        }
    }
    if want("fig6") {
        println!(
            "{}",
            report::render_ptx(&exp::fig6_lud_ptx_on(&eng, &scale))
        );
    }

    // ---------------- GE ----------------
    if want("fig7") {
        println!("{}", report::render_elapsed(&exp::fig7_ge_on(&eng, &scale)));
    }
    if want("fig9") {
        println!("{}", report::render_ptx(&exp::fig9_ge_ptx_on(&eng, &scale)));
    }

    // ---------------- BFS ----------------
    if want("fig10") {
        println!(
            "{}",
            report::render_elapsed(&exp::fig10_bfs_on(&eng, &scale))
        );
    }
    if want("fig11") {
        println!(
            "{}",
            report::render_ptx(&exp::fig11_bfs_ptx_on(&eng, &scale))
        );
    }
    if want("tab7") {
        println!("{}", report::render_tab7(&exp::tab7_bfs_on(&eng, &scale)));
    }

    // ---------------- BP ----------------
    if want("fig12") {
        println!(
            "{}",
            report::render_elapsed(&exp::fig12_bp_on(&eng, &scale))
        );
    }
    if want("fig14") {
        println!(
            "{}",
            report::render_ptx(&exp::fig14_bp_ptx_on(&eng, &scale))
        );
    }

    // ---------------- Hydro ----------------
    if want("fig15") {
        println!(
            "{}",
            report::render_elapsed(&exp::fig15_hydro_on(&eng, &scale))
        );
    }

    // ---------------- PPR ----------------
    if want("fig16") {
        println!("{}", report::render_ppr(&exp::fig16_ppr_on(&eng, &scale)));
    }

    // ---------------- Extensions (the paper's future work) ----------
    if want("ext1") {
        println!("== Extension 1: OpenARC-style auto-tuning vs the hand method (LUD) ==");
        for row in exp::ext1_autotune_vs_hand_on(&eng, &scale) {
            println!(
                "  {}: hand (256,16) {}  |  auto-tuned {}  ({} tuning runs)",
                row.device,
                report::fmt_secs(row.hand_seconds),
                report::fmt_secs(row.tuned_seconds),
                row.tuning_runs
            );
            for (k, g, w) in &row.tuned_configs {
                println!("      {k}: gang {g}, worker {w}");
            }
        }
        println!();
    }
    if want("ext2") {
        println!("== Extension 2: Step 5 — automatic data-region insertion (LUD) ==");
        for row in exp::ext2_data_regions_on(&eng, &scale) {
            println!(
                "  {:<32} {:>10} transfers   {}",
                row.label,
                row.transfers,
                report::fmt_secs(row.seconds)
            );
        }
        println!();
    }

    // ---------------- Profile sweep ----------------
    if profile {
        println!("== Per-kernel profiles (functional matrix) ==");
        print!(
            "{}",
            paccport_core::profile::profile_matrix_on(&eng, &scale).render()
        );
    }

    // `--tier both` on a figure run appends the same equivalence
    // sweep `--check --tier both` performs (at the clamped functional
    // sizes), sharing the engine's compile cache.
    let mut tiers_ok = true;
    if tier_both {
        let tr = paccport_core::tierdiff::tier_equivalence_on(eng.cache(), &scale);
        print!("{}", tr.render());
        tiers_ok = tr.ok();
    }

    // The fault ledger renders only when injection is configured, so
    // fault-free stdout is untouched.
    print!("{}", report::render_fault_ledger(&eng.quarantined()));

    // The trace goes to stderr so stdout stays byte-identical between
    // --jobs 1 and --jobs N.
    if trace {
        eprintln!(
            "jobs: {}  |  unique artifacts compiled: {}  |  cache hits: {}",
            eng.jobs(),
            eng.cache().misses(),
            eng.cache().hits()
        );
        eprint!("{}", paccport_trace::summary().render());
    }
    tele_flush(false);

    // Partial results are fine under chaos, but a cell that failed for
    // a reason we did NOT inject is a real bug: exit nonzero.
    let genuine = eng.uninjected_failures();
    if !genuine.is_empty() {
        for q in &genuine {
            eprintln!(
                "reproduce: genuine failure in {}: {} [{} attempts]",
                q.label, q.reason, q.attempts
            );
        }
        std::process::exit(1);
    }
    if !tiers_ok {
        eprintln!("reproduce: execution tiers diverged");
        std::process::exit(1);
    }
}

/// Parse `--tier` and set the process-wide default execution tier.
/// Returns whether the caller should additionally run the two-tier
/// equivalence sweep (`both`).
fn apply_tier(name: &str) -> bool {
    match name {
        "both" => true,
        _ => {
            let t = paccport_devsim::ExecTier::parse(name)
                .unwrap_or_else(|| die("--tier requires tree|bytecode|both"));
            paccport_devsim::set_default_tier(t);
            false
        }
    }
}

/// `reproduce conform [--programs N] [--seed S]` — differential
/// conformance fuzzing. Exits 0 iff every program either matched the
/// oracle bitwise on every leg or diverged only through a modeled
/// compiler quirk.
fn conform(args: &[String]) {
    let mut programs: u64 = 50;
    let mut seed: u64 = 42;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if tele_consume(a, &mut it) {
        } else if a == "--programs" {
            programs = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--programs requires an unsigned integer"));
        } else if a == "--seed" {
            seed = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--seed requires an unsigned integer"));
        } else if a == "--tier" {
            let name = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--tier requires tree|bytecode|both"));
            // `both` keeps the matrix legs on the tree reference; the
            // always-on `tier/bytecode` leg covers the comparison.
            apply_tier(&name);
        } else {
            die(&format!("conform: unknown argument `{a}`"));
        }
    }
    tele_validate();
    let report = paccport_conformance::run_conformance(programs, seed);
    print!("{}", report.render());
    tele_flush(false);
    if !report.ok() {
        std::process::exit(1);
    }
}

/// `reproduce profile [--scale ...] [--jobs N] [--inject SPEC]
/// [--fault-seed N]` — the per-kernel profile sweep over the
/// functional benchmark matrix.
fn profile_cmd(args: &[String]) {
    let mut scale_name = "smoke".to_string();
    let mut jobs: usize = 1;
    let mut inject: Option<String> = None;
    let mut fault_seed: u64 = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if tele_consume(a, &mut it) {
        } else if a == "--scale" {
            scale_name = it
                .next()
                .cloned()
                .unwrap_or_else(|| die("--scale requires smoke|quick|paper"));
        } else if a == "--quick" {
            scale_name = "quick".to_string();
        } else if a == "--jobs" {
            jobs = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&j| j > 0)
                .unwrap_or_else(|| die("--jobs requires a positive integer"));
        } else if a == "--inject" {
            inject = Some(
                it.next()
                    .cloned()
                    .unwrap_or_else(|| die("--inject requires a fault spec (try `chaos`)")),
            );
        } else if a == "--fault-seed" {
            fault_seed = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--fault-seed requires an unsigned integer"));
        } else {
            die(&format!("profile: unknown argument `{a}`"));
        }
    }
    let scale = match scale_name.as_str() {
        "smoke" => Scale::smoke(),
        "quick" => Scale::quick(),
        "paper" => Scale::paper(),
        _ => die("--scale requires smoke|quick|paper"),
    };
    tele_validate();
    let _flush_guard = TraceFlushGuard;
    if let Some(spec) = &inject {
        let spec = paccport_faults::FaultSpec::parse(spec)
            .unwrap_or_else(|e| die(&format!("--inject: {e}")));
        paccport_faults::configure(spec, fault_seed);
    }
    let eng = Engine::new(jobs);
    let report = paccport_core::profile::profile_matrix_on(&eng, &scale);
    print!("{}", report.render());
    print!("{}", report::render_fault_ledger(&eng.quarantined()));
    tele_flush(false);
    if !eng.uninjected_failures().is_empty() || !report.uninjected_failures().is_empty() {
        eprintln!("reproduce profile: genuine failures occurred");
        std::process::exit(1);
    }
}

/// `reproduce bench-devsim [--seed S] [--samples N] [--json FILE]
/// [--against FILE]` — kernel-execution throughput of the two devsim
/// tiers, with a bitwise cross-check before any timing.
fn bench_devsim(args: &[String]) {
    let mut seed: u64 = 42;
    let mut samples: usize = 7;
    let mut json_out: Option<String> = None;
    let mut against: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            seed = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--seed requires an unsigned integer"));
        } else if a == "--samples" {
            samples = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| die("--samples requires a positive integer"));
        } else if a == "--json" {
            json_out = Some(
                it.next()
                    .cloned()
                    .unwrap_or_else(|| die("--json requires a file path")),
            );
        } else if a == "--against" {
            against = Some(
                it.next()
                    .cloned()
                    .unwrap_or_else(|| die("--against requires a file path")),
            );
        } else {
            die(&format!("bench-devsim: unknown argument `{a}`"));
        }
    }
    let report = paccport_bench::devbench::run_devsim_bench(seed, samples);
    print!("{}", report.render());
    if let Some(path) = &json_out {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    if let Some(path) = &against {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let want = paccport_bench::devbench::parse_speedups(&baseline);
        if want.is_empty() {
            die(&format!("{path} contains no speedup entries"));
        }
        let mut regressed = false;
        for e in &report.entries {
            if let Some((_, w)) = want.iter().find(|(n, _)| *n == e.name) {
                let floor = w * 0.9;
                if e.speedup() < floor {
                    eprintln!(
                        "bench-devsim: `{}` speedup {:.2}x regressed below 90% of committed {:.2}x",
                        e.name,
                        e.speedup(),
                        w
                    );
                    regressed = true;
                }
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}

/// `reproduce fsck DIR` — verify and repair a `--state-dir` offline.
///
/// Exit codes: 0 — already consistent; 1 — repairs were performed and
/// the directory is now consistent; 2 — usage error; 3 — the
/// directory cannot be inspected at all.
fn fsck_cmd(args: &[String]) {
    let mut dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if tele_consume(a, &mut it) {
        } else if a.starts_with("--") {
            die(&format!("fsck: unknown argument `{a}`"));
        } else if dir.is_none() {
            dir = Some(a.clone());
        } else {
            die("fsck: exactly one state directory expected");
        }
    }
    let Some(dir) = dir else {
        die("fsck: a state directory is required");
    };
    tele_validate();
    let report = match paccport_persist::fsck(std::path::Path::new(&dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reproduce fsck: {e}");
            tele_flush(true);
            std::process::exit(3);
        }
    };
    println!("fsck {dir}");
    println!(
        "  journal: {} records intact, {} bytes of torn tail truncated",
        report.journal_records, report.journal_truncated_bytes
    );
    println!(
        "  cache:   {} entries intact, {} evicted, {} temp files removed",
        report.cache_entries,
        report.cache_evicted.len(),
        report.temp_files_removed
    );
    for name in &report.cache_evicted {
        println!("           evicted {name}");
    }
    println!(
        "  {}",
        if report.is_clean() {
            "clean".to_string()
        } else {
            format!("{} repairs performed", report.repairs())
        }
    );
    tele_flush(false);
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// `reproduce serve` — stand up the experiment server on `--addr` and
/// block until it drains (SIGTERM or `POST /shutdown`). Metrics are
/// always on so `GET /metrics` has something to say.
fn serve_cmd(args: &[String]) {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = paccport_server::ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut fault_seed: u64 = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("serve: {a} requires {what}")))
        };
        match a.as_str() {
            "--addr" => addr = val("HOST:PORT"),
            "--jobs" => {
                cfg.jobs = val("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("serve: --jobs requires a positive integer"))
            }
            "--workers" => {
                cfg.workers = val("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("serve: --workers requires a positive integer"))
            }
            "--queue-cap" => {
                cfg.queue_cap = val("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("serve: --queue-cap requires a positive integer"))
            }
            "--cache-bytes" => {
                cfg.cache_bytes = Some(
                    val("a byte count")
                        .parse()
                        .unwrap_or_else(|_| die("serve: --cache-bytes requires a byte count")),
                )
            }
            "--tenant-quota" => {
                cfg.tenant_quota = Some(
                    val("a byte count")
                        .parse()
                        .unwrap_or_else(|_| die("serve: --tenant-quota requires a byte count")),
                )
            }
            "--port-file" => port_file = Some(val("a file path")),
            "--access-log" => cfg.access_log = Some(val("a file path").into()),
            "--recorder-cap" => {
                cfg.recorder_cap = val("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("serve: --recorder-cap requires a positive integer"))
            }
            "--inject" => inject = Some(val("a fault spec (try `chaos`)")),
            "--fault-seed" => {
                fault_seed = val("an unsigned integer")
                    .parse()
                    .unwrap_or_else(|_| die("serve: --fault-seed requires an unsigned integer"))
            }
            other => die(&format!("serve: unknown argument `{other}`")),
        }
    }
    if let Some(spec) = &inject {
        let spec = paccport_faults::FaultSpec::parse(spec)
            .unwrap_or_else(|e| die(&format!("serve: --inject: {e}")));
        paccport_faults::configure(spec, fault_seed);
    }
    paccport_trace::metrics::set_metrics_enabled(true);
    paccport_server::install_sigterm_drain();
    let server = paccport_server::Server::start(&addr, cfg)
        .unwrap_or_else(|e| die(&format!("serve: cannot bind {addr}: {e}")));
    let bound = server.addr().to_string();
    if let Some(path) = &port_file {
        std::fs::write(path, &bound)
            .unwrap_or_else(|e| die(&format!("serve: cannot write {path}: {e}")));
    }
    println!("serving on {bound}");
    server.join();
    println!("drained");
}

/// `reproduce loadgen` — deterministic load against a running server;
/// the SLO report goes to stdout (and `--json FILE`, when given).
fn loadgen_cmd(args: &[String]) {
    let mut cfg = paccport_server::loadgen::LoadgenConfig::default();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("loadgen: {a} requires {what}")))
        };
        match a.as_str() {
            "--addr" => cfg.addr = val("HOST:PORT"),
            "--rps" => {
                cfg.rps = val("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("loadgen: --rps requires a positive integer"))
            }
            "--duration-steps" => {
                cfg.steps = val("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("loadgen: --duration-steps requires a positive integer"))
            }
            "--seed" => {
                cfg.seed = val("an unsigned integer")
                    .parse()
                    .unwrap_or_else(|_| die("loadgen: --seed requires an unsigned integer"))
            }
            "--dup-ratio" => {
                cfg.dup_ratio = val("a ratio in [0,1]")
                    .parse()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| die("loadgen: --dup-ratio requires a ratio in [0,1]"))
            }
            "--scale" => cfg.scale = val("smoke|quick|paper"),
            "--tenants" => {
                cfg.tenants = val("an unsigned integer")
                    .parse()
                    .unwrap_or_else(|_| die("loadgen: --tenants requires an unsigned integer"))
            }
            "--slo-ms" => {
                cfg.slo_ms = val("a positive number")
                    .parse()
                    .ok()
                    .filter(|&ms: &f64| ms > 0.0)
                    .unwrap_or_else(|| die("loadgen: --slo-ms requires a positive number"))
            }
            "--json" => json_out = Some(val("a file path")),
            "--scrape-metrics" => cfg.scrape_metrics = true,
            "--sample-traces" => {
                cfg.sample_traces = val("an unsigned integer").parse().unwrap_or_else(|_| {
                    die("loadgen: --sample-traces requires an unsigned integer")
                })
            }
            "--trace-dir" => cfg.trace_dir = Some(val("a directory path")),
            "--shutdown" => cfg.shutdown_after = true,
            other => die(&format!("loadgen: unknown argument `{other}`")),
        }
    }
    if cfg.addr.is_empty() {
        die("loadgen: --addr HOST:PORT is required");
    }
    let report =
        paccport_server::loadgen::run(&cfg).unwrap_or_else(|e| die(&format!("loadgen: {e}")));
    if let Some(path) = &json_out {
        std::fs::write(path, &report)
            .unwrap_or_else(|e| die(&format!("loadgen: cannot write {path}: {e}")));
    }
    print!("{report}");
}

fn die(msg: &str) -> ! {
    eprintln!("reproduce: {msg}");
    tele_flush(true);
    std::process::exit(2);
}
