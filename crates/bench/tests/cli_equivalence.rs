//! End-to-end checks on the `reproduce` binary: the parallel engine
//! and the tracing flag must never change what lands on stdout.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

#[test]
fn parallel_stdout_is_byte_identical_to_serial() {
    let serial = reproduce(&["--quick", "--jobs", "1"]);
    let parallel = reproduce(&["--quick", "--jobs", "8"]);
    assert!(serial.status.success());
    assert!(parallel.status.success());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs 8 must reproduce the serial report byte-for-byte"
    );
}

#[test]
fn trace_goes_to_stderr_only() {
    let plain = reproduce(&["--quick"]);
    let traced = reproduce(&["--quick", "--jobs", "4", "--trace"]);
    assert!(traced.status.success());
    assert_eq!(
        plain.stdout, traced.stdout,
        "--trace must leave stdout untouched"
    );
    let err = String::from_utf8_lossy(&traced.stderr);
    assert!(err.contains("unique artifacts compiled"), "stderr: {err}");
    assert!(err.contains("== trace summary =="), "stderr: {err}");
    assert!(err.contains("cache.hit"), "stderr: {err}");
    assert!(plain.stderr.is_empty(), "no trace flag, no stderr chatter");
}

#[test]
fn bad_jobs_value_is_a_usage_error() {
    for args in [
        &["--quick", "--jobs", "0"][..],
        &["--quick", "--jobs", "many"][..],
        &["--quick", "--jobs"][..],
    ] {
        let out = reproduce(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(out.stdout.is_empty(), "usage errors must not emit a report");
    }
}
