//! End-to-end chaos checks on the `reproduce` binary: a fixed
//! (--inject, --fault-seed) pair must reproduce byte-identically, the
//! fault ledger must land on stdout, and exit codes must distinguish
//! injected chaos from genuine breakage.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

const CHAOS: &[&str] = &[
    "--scale",
    "smoke",
    "--inject",
    "chaos",
    "--fault-seed",
    "42",
];

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let a = reproduce(CHAOS);
    let b = reproduce(CHAOS);
    assert!(a.status.success(), "injected-only failures exit 0");
    assert_eq!(a.stdout, b.stdout, "chaos must be deterministic");
}

#[test]
fn chaos_stdout_is_independent_of_job_count() {
    let serial = reproduce(CHAOS);
    let parallel = reproduce(&[CHAOS, &["--jobs", "8"]].concat());
    assert!(parallel.status.success());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "fault decisions must not depend on worker scheduling"
    );
}

#[test]
fn chaos_report_carries_a_fault_ledger() {
    let out = reproduce(CHAOS);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("== Fault ledger: --inject chaos --fault-seed 42"),
        "ledger header missing"
    );
    assert!(text.contains("fault(s) injected"));
    // Fault-free runs must not mention faults at all.
    let clean = reproduce(&["--scale", "smoke"]);
    let clean_text = String::from_utf8(clean.stdout).unwrap();
    assert!(!clean_text.contains("Fault ledger"));
    assert!(!clean_text.contains("FAILED"));
}

#[test]
fn chaos_soundness_check_passes_and_is_deterministic() {
    let a = reproduce(&[&["--check"], CHAOS].concat());
    let b = reproduce(&[&["--check"], CHAOS].concat());
    assert!(
        a.status.success(),
        "injected faults must not fail --check: {}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn bad_inject_spec_is_a_usage_error() {
    let out = reproduce(&["--inject", "gremlins:1.0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--inject"), "{err}");
}

#[test]
fn duplicate_fault_kinds_are_rejected_with_an_actionable_error() {
    let out = reproduce(&["--inject", "crash:step,crash:journal"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert_eq!(err.lines().count(), 1, "one-line error expected: {err}");
    assert!(
        err.contains("more than one clause") && err.contains("crash"),
        "{err}"
    );
}

#[test]
fn unknown_inject_targets_are_rejected_with_an_actionable_error() {
    let out = reproduce(&["--inject", "compile:no-such-site"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert_eq!(err.lines().count(), 1, "one-line error expected: {err}");
    assert!(
        err.contains("unknown target `no-such-site`") && err.contains("substring-match"),
        "{err}"
    );
}

#[test]
fn usage_errors_still_flush_requested_telemetry() {
    let path = std::env::temp_dir().join(format!(
        "paccport-chaos-usage-metrics-{}.prom",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let out = reproduce(&[
        "--metrics-out",
        path.to_str().unwrap(),
        "--inject",
        "gremlins",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        path.exists(),
        "metrics file must be flushed on usage errors"
    );
    let _ = std::fs::remove_file(&path);
}
