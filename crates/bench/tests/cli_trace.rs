//! End-to-end checks of the telemetry CLI surface: the Chrome export
//! must parse as trace-event JSON with one lane per engine worker,
//! same-flag runs must produce structurally identical exports (only
//! the wall-clock fields may differ), and `reproduce profile` must be
//! byte-identical at any job count.

use std::path::PathBuf;
use std::process::{Command, Output};

use paccport_trace::json;

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("paccport_cli_trace_{}_{name}", std::process::id()))
}

fn read(path: &PathBuf) -> String {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("export file {} missing: {e}", path.display()));
    let _ = std::fs::remove_file(path);
    text
}

/// Blank the wall-clock fields of a Chrome export, keeping everything
/// structural (event order, names, lanes, args).
fn strip_timestamps(trace: &str) -> String {
    let mut out = String::with_capacity(trace.len());
    let mut rest = trace;
    while let Some(pos) = rest
        .find("\"ts\":")
        .map(|a| (a, 5))
        .into_iter()
        .chain(rest.find("\"dur\":").map(|a| (a, 6)))
        .min_by_key(|(a, _)| *a)
    {
        let (at, klen) = pos;
        out.push_str(&rest[..at + klen]);
        rest = &rest[at + klen..];
        let num_end = rest
            .find(|c: char| !c.is_ascii_digit() && c != '.')
            .unwrap_or(rest.len());
        rest = &rest[num_end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn chrome_export_parses_with_multiple_worker_lanes() {
    let trace_file = tmp("chrome.json");
    let metrics_file = tmp("metrics.txt");
    let out = reproduce(&[
        "--check",
        "--scale",
        "smoke",
        "--jobs",
        "4",
        "--trace-out",
        trace_file.to_str().unwrap(),
        "--metrics-out",
        metrics_file.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let trace = read(&trace_file);
    let doc = json::parse(&trace).expect("Chrome export must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(events.len() > 50, "a --check run records real work");
    let mut worker_lanes: Vec<i64> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .map(|e| e.get("tid").unwrap().as_f64().unwrap() as i64)
        .filter(|tid| *tid > 0)
        .collect();
    worker_lanes.sort_unstable();
    worker_lanes.dedup();
    assert!(
        worker_lanes.len() >= 2,
        "a --jobs 4 run must populate at least two worker lanes, got {worker_lanes:?}"
    );

    let metrics = read(&metrics_file);
    assert!(
        metrics.contains("# TYPE devsim_kernel_launches_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE devsim_kernel_seconds histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE compile_total counter"),
        "{metrics}"
    );
    assert!(metrics.contains("cache_miss"), "{metrics}");
}

#[test]
fn same_flag_runs_export_identical_structure() {
    let run = |tag: &str| {
        let trace_file = tmp(&format!("det_{tag}.json"));
        let metrics_file = tmp(&format!("det_{tag}.txt"));
        let out = reproduce(&[
            "--check",
            "--scale",
            "smoke",
            "--jobs",
            "4",
            "--trace-out",
            trace_file.to_str().unwrap(),
            "--metrics-out",
            metrics_file.to_str().unwrap(),
        ]);
        assert!(out.status.success());
        (read(&trace_file), read(&metrics_file))
    };
    let (trace_a, metrics_a) = run("a");
    let (trace_b, metrics_b) = run("b");

    assert_eq!(
        strip_timestamps(&trace_a),
        strip_timestamps(&trace_b),
        "same-flag traces must be identical modulo ts/dur"
    );
    // Metrics are byte-deterministic except the span-duration
    // histogram, whose observations are wall-clock readings.
    let strip = |m: &str| -> String {
        m.lines()
            .filter(|l| !l.contains("trace_span_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&metrics_a), strip(&metrics_b));
}

#[test]
fn jsonl_and_folded_formats_are_well_formed() {
    let trace_file = tmp("events.jsonl");
    let out = reproduce(&[
        "--scale",
        "smoke",
        "--trace-out",
        trace_file.to_str().unwrap(),
        "--trace-format",
        "jsonl",
    ]);
    assert!(out.status.success());
    let text = read(&trace_file);
    assert!(text.lines().count() > 10);
    for line in text.lines() {
        let obj = json::parse(line).expect("every JSONL line parses");
        assert!(obj.get("type").is_some(), "{line}");
    }

    let folded_file = tmp("stacks.folded");
    let out = reproduce(&[
        "--scale",
        "smoke",
        "--trace-out",
        folded_file.to_str().unwrap(),
        "--trace-format",
        "folded",
    ]);
    assert!(out.status.success());
    let text = read(&folded_file);
    for line in text.lines() {
        let (path, value) = line.rsplit_once(' ').expect("`stack;path NS` format");
        assert!(!path.is_empty());
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad self-time: {line}"));
    }
    assert!(
        text.lines().any(|l| l.contains(';')),
        "folded output must contain at least one nested stack:\n{text}"
    );
}

#[test]
fn profile_subcommand_is_deterministic_across_job_counts() {
    let serial = reproduce(&["profile", "--scale", "smoke"]);
    assert!(
        serial.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let text = String::from_utf8(serial.stdout.clone()).unwrap();
    assert!(text.contains("per-kernel profiles:"), "{text}");
    assert!(
        text.contains("HOST (never launched)"),
        "the PGI BFS host-fallback must be visible in the sweep"
    );
    let parallel = reproduce(&["profile", "--scale", "smoke", "--jobs", "4"]);
    assert!(parallel.status.success());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "profile output must not depend on worker count"
    );
}

#[test]
fn conform_subcommand_populates_leg_outcome_metrics() {
    let metrics_file = tmp("conform.txt");
    let out = reproduce(&[
        "conform",
        "--programs",
        "5",
        "--seed",
        "7",
        "--metrics-out",
        metrics_file.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = read(&metrics_file);
    assert!(
        metrics.contains("conformance_legs_total{outcome="),
        "{metrics}"
    );
}

#[test]
fn telemetry_flag_misuse_is_a_usage_error() {
    let out = reproduce(&["--trace-format", "chrome"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--trace-format requires --trace-out"), "{err}");

    let out = reproduce(&["--trace-out", "/tmp/x.json", "--trace-format", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown trace format"), "{err}");

    let out = reproduce(&["profile", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
