//! The `reproduce conform` subcommand and the blessed `--check`
//! snapshot.
//!
//! The conformance gate in CI diffs two runs byte-for-byte, so the
//! subcommand's determinism is itself a tested contract here, not an
//! aspiration. The `--check --scale smoke` report is additionally
//! pinned against a golden snapshot: any change to the soundness
//! table's wording, ordering or verdicts must be a conscious re-bless
//! (`UPDATE_SNAPSHOTS=1 cargo test -p paccport-bench`), never drift.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

#[test]
fn conform_smoke_passes_and_reports_expected_divergence() {
    let out = reproduce(&["conform", "--programs", "10", "--seed", "42"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "conform smoke must exit 0; stdout:\n{text}"
    );
    assert!(text.contains("differential conformance: 10 programs, seed 42"));
    assert!(text.contains("mismatches         : 0"), "stdout:\n{text}");
    // The quirk model must fire — a run where the CAPS MIC reduction
    // bug never diverges means the harness lost its teeth.
    assert!(
        !text.contains("expected divergence: 0 "),
        "no modeled miscompilation fired over 10 programs:\n{text}"
    );
}

#[test]
fn conform_output_is_byte_identical_across_runs() {
    let a = reproduce(&["conform", "--programs", "25", "--seed", "42"]);
    let b = reproduce(&["conform", "--programs", "25", "--seed", "42"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "conform must be deterministic for a fixed (--programs, --seed)"
    );
    // And a different seed must actually change the run (same program
    // count, different draws).
    let c = reproduce(&["conform", "--programs", "25", "--seed", "7"]);
    assert!(c.status.success());
    assert!(
        String::from_utf8_lossy(&c.stdout).contains("25 programs, seed 7"),
        "seed must be echoed in the report header"
    );
}

#[test]
fn conform_rejects_bad_arguments() {
    for args in [
        &["conform", "--programs"][..],
        &["conform", "--programs", "many"][..],
        &["conform", "--seed"][..],
        &["conform", "--frobnicate"][..],
    ] {
        let out = reproduce(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(out.stdout.is_empty(), "usage errors must not emit a report");
    }
}

#[test]
fn check_smoke_stdout_matches_blessed_snapshot() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/check_smoke.txt"
    );
    let out = reproduce(&["--check", "--scale", "smoke"]);
    assert!(out.status.success(), "--check --scale smoke must pass");
    let got = String::from_utf8_lossy(&out.stdout).into_owned();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(path, &got).expect("re-bless snapshot");
        return;
    }
    let want = std::fs::read_to_string(path).expect("read blessed snapshot");
    assert_eq!(
        got, want,
        "`reproduce --check --scale smoke` drifted from the blessed \
         snapshot; if the change is intentional, re-bless with \
         UPDATE_SNAPSHOTS=1 cargo test -p paccport-bench"
    );
}
