//! Supervisor-style crash-recovery checks on the `reproduce` binary.
//!
//! The durability contract under test: a run with `--state-dir` that
//! dies at *any* journal step (injected `crash` / `torn-write` faults,
//! exit code 75) can be restarted with `--resume` and the final stdout
//! is byte-identical to one uninterrupted run — at any `--jobs` — and
//! `reproduce fsck` detects every torn write while never flagging a
//! clean directory.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("paccport-crashrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The cheap experiment the crash matrix sweeps: one LUD elapsed
/// figure at smoke scale.
const EXP: &[&str] = &["--exp", "fig3", "--scale", "smoke"];

fn dir_arg(d: &Path) -> &str {
    d.to_str().unwrap()
}

/// The tentpole matrix: for both `--jobs 1` and `--jobs 4`, crash at
/// every journal step; each crashed run exits 75 and the `--resume`
/// restart reproduces the clean baseline byte-for-byte.
#[test]
fn crash_at_every_journal_step_resumes_to_identical_output() {
    for jobs in ["1", "4"] {
        let baseline = reproduce(&[EXP, &["--jobs", jobs]].concat());
        assert!(baseline.status.success());

        // One complete durable run tells us how many journal steps
        // there are to crash at.
        let probe = tmp(&format!("probe-{jobs}"));
        let full = reproduce(&[EXP, &["--jobs", jobs, "--state-dir", dir_arg(&probe)]].concat());
        assert!(full.status.success());
        assert_eq!(
            stdout(&full),
            stdout(&baseline),
            "--state-dir must not change stdout"
        );
        let steps = std::fs::read_to_string(probe.join("journal.log"))
            .unwrap()
            .lines()
            .count();
        assert!(steps > 2, "expected a multi-record journal, got {steps}");
        let _ = std::fs::remove_dir_all(&probe);

        // Sweep one past the end: a crash step the run never reaches
        // must leave it completing normally.
        for k in 0..=steps {
            let d = tmp(&format!("step-{jobs}-{k}"));
            let spec = format!("crash:step-{k:06}");
            let crashed = reproduce(
                &[
                    EXP,
                    &[
                        "--jobs",
                        jobs,
                        "--state-dir",
                        dir_arg(&d),
                        "--inject",
                        &spec,
                    ],
                ]
                .concat(),
            );
            match crashed.status.code() {
                Some(75) => {
                    let resumed = reproduce(
                        &[
                            EXP,
                            &["--jobs", jobs, "--state-dir", dir_arg(&d), "--resume"],
                        ]
                        .concat(),
                    );
                    assert!(
                        resumed.status.success(),
                        "resume after crash at step {k} (jobs {jobs}): {}",
                        String::from_utf8_lossy(&resumed.stderr)
                    );
                    assert_eq!(
                        stdout(&resumed),
                        stdout(&baseline),
                        "resumed stdout diverged (crash step {k}, jobs {jobs})"
                    );
                }
                Some(0) => {
                    // Step k was never rolled (the unrolled meta/event
                    // records, or past the end): the run finished —
                    // with an empty fault-ledger section appended,
                    // since injection was configured.
                    let text = stdout(&crashed);
                    let report = text.split("== Fault ledger").next().unwrap();
                    assert_eq!(report, stdout(&baseline));
                }
                other => panic!("crash step {k} (jobs {jobs}): unexpected exit {other:?}"),
            }
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}

/// The same protocol through `--check`: crash mid-soundness-matrix,
/// resume, and the report is byte-identical to an undisturbed check.
#[test]
fn check_crash_and_resume_matches_clean_baseline() {
    let baseline = reproduce(&["--check", "--scale", "smoke", "--jobs", "4"]);
    assert!(baseline.status.success());

    let d = tmp("check");
    let crashed = reproduce(&[
        "--check",
        "--scale",
        "smoke",
        "--jobs",
        "4",
        "--state-dir",
        dir_arg(&d),
        "--inject",
        "crash:step-000003",
    ]);
    assert_eq!(
        crashed.status.code(),
        Some(75),
        "expected the injected crash"
    );

    let resumed = reproduce(&[
        "--check",
        "--scale",
        "smoke",
        "--jobs",
        "4",
        "--state-dir",
        dir_arg(&d),
        "--resume",
    ]);
    assert!(resumed.status.success());
    assert_eq!(stdout(&resumed), stdout(&baseline));
    let _ = std::fs::remove_dir_all(&d);
}

/// Torn journal writes under supervision: keep restarting with the
/// same chaos spec until the run survives. Every life makes progress
/// (the tear is at-most-once per record payload), the final ledger is
/// the union of every life's events, and the report itself matches
/// the clean baseline.
#[test]
fn torn_write_chaos_converges_under_supervision() {
    let baseline = reproduce(EXP);
    assert!(baseline.status.success());

    let d = tmp("torn");
    let spec = ["--inject", "torn-write:journal:0.5"];
    let mut crashes = 0;
    let final_out = loop {
        let mut args = [EXP, &["--state-dir", dir_arg(&d)], &spec[..]].concat();
        if crashes > 0 {
            args.push("--resume");
        }
        let out = reproduce(&args);
        match out.status.code() {
            Some(75) => {
                crashes += 1;
                assert!(crashes < 100, "supervision did not converge");
            }
            Some(0) => break out,
            other => panic!("unexpected exit {other:?}"),
        }
    };
    assert!(crashes > 0, "rate 0.5 should have torn at least one record");

    // Everything before the fault ledger is the clean baseline.
    let text = stdout(&final_out);
    let (report, ledger) = text
        .split_once("== Fault ledger")
        .expect("chaos run must print a fault ledger");
    assert_eq!(report, stdout(&baseline));
    // The ledger lists exactly one torn-write event per crash.
    assert_eq!(
        ledger.matches("torn-write").count(),
        crashes + 1, // one per event line, one in the spec echo
        "ledger must be the union of every life's events"
    );
    let _ = std::fs::remove_dir_all(&d);
}

/// A torn artifact-store write is (a) detected and repaired by fsck,
/// and (b) survivable without fsck: the resumed run evicts the
/// corrupt entry on read and recompiles.
#[test]
fn torn_cache_writes_are_detected_by_fsck_and_survivable() {
    let baseline = reproduce(EXP);

    let d = tmp("torncache");
    let crashed = reproduce(
        &[
            EXP,
            &[
                "--state-dir",
                dir_arg(&d),
                "--inject",
                "torn-write:cache-file",
            ],
        ]
        .concat(),
    );
    assert_eq!(crashed.status.code(), Some(75));

    // fsck: detects the torn entry (exit 1), is idempotent (exit 0),
    // and never flags the directory again.
    let repair = reproduce(&["fsck", dir_arg(&d)]);
    assert_eq!(repair.status.code(), Some(1), "{}", stdout(&repair));
    let repair_text = stdout(&repair);
    assert!(repair_text.contains("evicted"), "{repair_text}");
    let clean = reproduce(&["fsck", dir_arg(&d)]);
    assert_eq!(clean.status.code(), Some(0), "{}", stdout(&clean));

    // And the resumed run completes to the baseline.
    let resumed = reproduce(&[EXP, &["--state-dir", dir_arg(&d), "--resume"]].concat());
    assert!(resumed.status.success());
    assert_eq!(stdout(&resumed), stdout(&baseline));
    let _ = std::fs::remove_dir_all(&d);

    // Zero false positives: fsck on a state dir left by an
    // *uninterrupted* run reports clean.
    let d2 = tmp("cleandir");
    assert!(reproduce(&[EXP, &["--state-dir", dir_arg(&d2)]].concat())
        .status
        .success());
    let verdict = reproduce(&["fsck", dir_arg(&d2)]);
    assert_eq!(verdict.status.code(), Some(0), "{}", stdout(&verdict));
    let _ = std::fs::remove_dir_all(&d2);
}

/// fsck's exit-code discipline: 2 for usage errors, 3 for a directory
/// that cannot be inspected.
#[test]
fn fsck_exit_codes_distinguish_usage_from_unreadable() {
    let usage = reproduce(&["fsck"]);
    assert_eq!(usage.status.code(), Some(2));
    let two = reproduce(&["fsck", "a", "b"]);
    assert_eq!(two.status.code(), Some(2));
    let missing = reproduce(&["fsck", "/nonexistent/paccport-state"]);
    assert_eq!(missing.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("not a directory"));
}

/// A run killed by an injected crash still flushes its telemetry:
/// the partial trace and metrics files exist and are parseable.
#[test]
fn crashed_run_leaves_parseable_partial_telemetry() {
    let d = tmp("tele");
    let trace = d.join("trace.jsonl");
    let metrics = d.join("metrics.prom");
    let state = d.join("state");
    let out = reproduce(
        &[
            EXP,
            &[
                "--state-dir",
                state.to_str().unwrap(),
                "--inject",
                "crash:step-000002",
                "--trace-out",
                trace.to_str().unwrap(),
                "--trace-format",
                "jsonl",
                "--metrics-out",
                metrics.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(75));
    let trace_text = std::fs::read_to_string(&trace).expect("trace flushed on crash");
    assert!(
        trace_text
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')),
        "jsonl trace must be one JSON object per line"
    );
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics flushed on crash");
    assert!(
        metrics_text.contains("journal_appends_total"),
        "partial metrics must include the journal counter"
    );
    let _ = std::fs::remove_dir_all(&d);
}

/// A resumed run reports replay through the metrics registry.
#[test]
fn resume_counts_replayed_cells_and_disk_cache_hits() {
    let d = tmp("metrics");
    let state = d.join("state");
    assert!(
        reproduce(&[EXP, &["--state-dir", state.to_str().unwrap()]].concat())
            .status
            .success()
    );
    let m = d.join("m.prom");
    let resumed = reproduce(
        &[
            EXP,
            &[
                "--state-dir",
                state.to_str().unwrap(),
                "--resume",
                "--metrics-out",
                m.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(resumed.status.success());
    let text = std::fs::read_to_string(&m).unwrap();
    let replayed: u64 = text
        .lines()
        .find(|l| l.starts_with("cells_replayed_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("cells_replayed_total exported");
    assert!(replayed > 0, "resume must replay journaled cells");
    let _ = std::fs::remove_dir_all(&d);
}

/// `--resume` without `--state-dir` is a usage error, as is a
/// `--state-dir` pointing at an unusable path.
#[test]
fn resume_requires_a_state_dir() {
    let out = reproduce(&[EXP, &["--resume"]].concat());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires --state-dir"));
}
