//! End-to-end chaos checks on `reproduce serve` (ISSUE 9): the server
//! under `--inject chaos --fault-seed N` plus a seeded loadgen must
//! produce byte-identical SLO reports across two runs against fresh
//! servers; quarantined cells surface as typed error responses, never
//! hangs; the fault ledger lands in `GET /metrics`; and SIGTERM drains
//! the process to a clean exit 0.
//!
//! The committed loadgen baseline `BENCH_serve.json` (repo root) is
//! checked here too — re-bless with
//! `UPDATE_SNAPSHOTS=1 cargo test -p paccport-bench --test cli_serve_chaos`.

use std::process::{Child, Command, Output};

use paccport_server::http;

/// Spawn `reproduce serve` with `args` and wait for it to report its
/// bound address through `--port-file`. The caller owns the child.
fn spawn_serve(tag: &str, args: &[&str]) -> (Child, String) {
    let port_file =
        std::env::temp_dir().join(format!("paccport-serve-{}-{tag}.port", std::process::id()));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--port-file"])
        .arg(&port_file)
        .args(args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn reproduce serve");
    for _ in 0..200 {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            if !addr.is_empty() {
                let _ = std::fs::remove_file(&port_file);
                return (child, addr);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    panic!("server never wrote {}", port_file.display());
}

fn loadgen(addr: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args([
            "loadgen",
            "--addr",
            addr,
            "--rps",
            "4",
            "--duration-steps",
            "3",
            "--seed",
            "42",
            "--dup-ratio",
            "0.25",
        ])
        .args(extra)
        .output()
        .expect("run reproduce loadgen")
}

/// A drained server exits 0 and narrates both lifecycle milestones.
fn assert_clean_exit(mut child: Child) {
    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "serve must exit 0 after drain: {status}");
    let mut out = String::new();
    use std::io::Read;
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();
    assert!(out.contains("serving on"), "{out}");
    assert!(out.contains("drained"), "{out}");
}

#[test]
fn chaos_slo_reports_are_byte_identical_across_fresh_servers() {
    let mut reports: Vec<Vec<u8>> = Vec::new();
    for round in 0..2 {
        let (child, addr) = spawn_serve(
            &format!("chaos-det-{round}"),
            &["--inject", "chaos", "--fault-seed", "7"],
        );
        let out = loadgen(addr.trim(), &["--shutdown"]);
        assert!(
            out.status.success(),
            "loadgen failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        reports.push(out.stdout);
        assert_clean_exit(child);
    }
    assert_eq!(
        String::from_utf8_lossy(&reports[0]),
        String::from_utf8_lossy(&reports[1]),
        "same (--inject, --fault-seed, loadgen seed) against a fresh \
         server must reproduce the SLO report byte-for-byte"
    );
}

#[test]
fn quarantined_cells_are_typed_error_responses_with_a_metrics_ledger() {
    // Rate-1.0 device faults: every attempt fails, every cell
    // quarantines — the strongest "no hangs" probe there is.
    let (child, addr) = spawn_serve(
        "quarantine",
        &["--inject", "device:1.0", "--fault-seed", "9"],
    );
    let addr = addr.trim();
    let body = "{\"benchmark\":\"LUD\",\"variant\":\"Base\",\
                \"target\":\"CAPS-CUDA-K40\",\"scale\":\"smoke\",\"seed\":7}";
    let r = http::request(addr, "POST", "/run", &[], body).unwrap();
    assert_eq!(
        r.status, 500,
        "all-quarantined requests are 500: {}",
        r.body
    );
    let v = paccport_trace::json::parse(&r.body).expect("typed error body is JSON");
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("failed"));
    assert!(r.body.contains("\"injected\":true"), "{}", r.body);
    assert!(r.body.contains("[injected]"), "{}", r.body);
    assert!(r.body.contains("\"attempts\":"), "{}", r.body);

    // The same request repeats byte-identically — quarantine decisions
    // are a pure function of (cell, seed), not of scheduling.
    let again = http::request(addr, "POST", "/run", &[], body).unwrap();
    assert_eq!(again.body, r.body);

    // The fault ledger is visible in the Prometheus exposition.
    let m = http::request(addr, "GET", "/metrics", &[], "").unwrap();
    assert_eq!(m.status, 200);
    assert!(
        m.body.contains("faults_injected_total"),
        "fault ledger missing from /metrics:\n{}",
        m.body
    );
    assert!(m.body.contains("serve_requests_total"), "{}", m.body);

    let s = http::request(addr, "POST", "/shutdown", &[], "").unwrap();
    assert_eq!(s.status, 200);
    assert_clean_exit(child);
}

#[test]
fn sigterm_drains_the_server_to_a_clean_exit() {
    let (child, addr) = spawn_serve("sigterm", &[]);
    let addr = addr.trim();
    let r = http::request(addr, "GET", "/healthz", &[], "").unwrap();
    assert_eq!(r.status, 200);
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    assert_clean_exit(child);
}

#[test]
fn committed_loadgen_baseline_is_reproducible() {
    let baseline = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    let (child, addr) = spawn_serve("baseline", &[]);
    let out = loadgen(addr.trim(), &["--scrape-metrics", "--shutdown"]);
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_clean_exit(child);
    let got = String::from_utf8(out.stdout).unwrap();
    paccport_trace::json::parse(&got).expect("SLO report is valid JSON");
    assert!(got.contains("\"slo\":"), "{got}");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&baseline, &got).expect("re-bless BENCH_serve.json");
        return;
    }
    let want = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline.display()));
    assert_eq!(
        got, want,
        "loadgen SLO report drifted from the committed BENCH_serve.json \
         baseline; if intentional, re-bless with UPDATE_SNAPSHOTS=1"
    );
}
