//! Parsing PTX-like text back into [`PtxModule`]s — the inverse of
//! [`crate::format`]. Lets tooling (and tests) round-trip kernels,
//! and lets users feed hand-edited listings into the counters.

use crate::instr::{Instruction, Item, LabelId, Operand, Reg, SpecialReg};
use crate::isa::{Opcode, PtxType};
use crate::kernel::{PtxKernel, PtxModule};

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// All opcodes, for mnemonic lookup.
const ALL_OPCODES: [Opcode; 34] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Max,
    Opcode::Min,
    Opcode::Fma,
    Opcode::Mad,
    Opcode::Rcp,
    Opcode::Abs,
    Opcode::Neg,
    Opcode::Rem,
    Opcode::Sqrt,
    Opcode::Ex2,
    Opcode::Setp,
    Opcode::Selp,
    Opcode::Bra,
    Opcode::And,
    Opcode::Or,
    Opcode::Not,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Cvt,
    Opcode::Mov,
    Opcode::LdParam,
    Opcode::CvtaToGlobal,
    Opcode::LdGlobal,
    Opcode::StGlobal,
    Opcode::AtomAdd,
    Opcode::AtomMax,
    Opcode::AtomMin,
    Opcode::LdShared,
    Opcode::StShared,
    Opcode::BarSync,
];

fn opcode_of(mnemonic: &str) -> Option<Opcode> {
    if mnemonic == "ret" {
        return Some(Opcode::Ret);
    }
    ALL_OPCODES
        .iter()
        .copied()
        .find(|o| o.mnemonic() == mnemonic)
}

fn type_of(suffix: &str) -> Option<PtxType> {
    Some(match suffix {
        "f32" => PtxType::F32,
        "f64" => PtxType::F64,
        "s32" => PtxType::S32,
        "u32" => PtxType::U32,
        "u64" => PtxType::U64,
        "pred" => PtxType::Pred,
        _ => return None,
    })
}

fn sreg_of(name: &str) -> Option<SpecialReg> {
    Some(match name {
        "%tid.x" => SpecialReg::TidX,
        "%tid.y" => SpecialReg::TidY,
        "%ctaid.x" => SpecialReg::CtaIdX,
        "%ctaid.y" => SpecialReg::CtaIdY,
        "%ntid.x" => SpecialReg::NTidX,
        "%ntid.y" => SpecialReg::NTidY,
        "%nctaid.x" => SpecialReg::NCtaIdX,
        "%nctaid.y" => SpecialReg::NCtaIdY,
        _ => return None,
    })
}

fn parse_operand(tok: &str, lineno: usize) -> Result<Operand, ParseError> {
    let tok = tok.trim();
    if let Some(s) = sreg_of(tok) {
        return Ok(Operand::Sreg(s));
    }
    if let Some(rest) = tok.strip_prefix("$L_") {
        let id: u32 = rest
            .parse()
            .map_err(|_| err(lineno, format!("bad label `{tok}`")))?;
        return Ok(Operand::Label(LabelId(id)));
    }
    if let Some(rest) = tok.strip_prefix("0f") {
        let bits = u32::from_str_radix(rest, 16)
            .map_err(|_| err(lineno, format!("bad float literal `{tok}`")))?;
        return Ok(Operand::ImmF(f32::from_bits(bits) as f64));
    }
    if tok.starts_with('[') && tok.ends_with(']') {
        return Ok(Operand::Sym(tok[1..tok.len() - 1].to_string()));
    }
    if tok.starts_with('%') {
        // %f1 / %fd1 / %r1 / %rd1 / %p1 — the class prefix is derived
        // from the instruction type at format time; strip it here.
        let digits: String = tok.chars().filter(|c| c.is_ascii_digit()).collect();
        let n: u32 = digits
            .parse()
            .map_err(|_| err(lineno, format!("bad register `{tok}`")))?;
        return Ok(Operand::Reg(Reg(n)));
    }
    tok.parse::<i64>()
        .map(Operand::ImmI)
        .map_err(|_| err(lineno, format!("unrecognized operand `{tok}`")))
}

/// Parse one instruction line (without trailing `;`).
fn parse_instruction(line: &str, lineno: usize) -> Result<Instruction, ParseError> {
    let mut rest = line.trim();
    // Guard predicate.
    let mut pred = None;
    if let Some(r) = rest.strip_prefix('@') {
        let (p, tail) = r
            .split_once(' ')
            .ok_or_else(|| err(lineno, "predicate without instruction"))?;
        let digits: String = p.chars().filter(|c| c.is_ascii_digit()).collect();
        pred = Some(Reg(digits
            .parse()
            .map_err(|_| err(lineno, format!("bad predicate `{p}`")))?));
        rest = tail.trim();
    }
    // Mnemonic.suffix — the type suffix is the last dot component.
    let (head, ops_str) = match rest.split_once(char::is_whitespace) {
        Some((h, o)) => (h, o),
        None => (rest, ""),
    };
    let (mnemonic, suffix) = head
        .rsplit_once('.')
        .ok_or_else(|| err(lineno, format!("missing type suffix in `{head}`")))?;
    let op =
        opcode_of(mnemonic).ok_or_else(|| err(lineno, format!("unknown opcode `{mnemonic}`")))?;
    let ty =
        type_of(suffix).ok_or_else(|| err(lineno, format!("unknown type suffix `{suffix}`")))?;

    let mut operands = Vec::new();
    for tok in ops_str.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        operands.push(parse_operand(tok, lineno)?);
    }
    // Destination convention: the first register operand is the
    // destination for value-producing opcodes.
    let has_dst = !matches!(
        op,
        Opcode::StGlobal
            | Opcode::StShared
            | Opcode::Bra
            | Opcode::BarSync
            | Opcode::Ret
            | Opcode::AtomAdd
            | Opcode::AtomMax
            | Opcode::AtomMin
    ) && !operands.is_empty();
    let (dst, srcs) = if has_dst {
        match operands[0] {
            Operand::Reg(r) => (Some(r), operands[1..].to_vec()),
            _ => (None, operands),
        }
    } else {
        (None, operands)
    };
    let mut inst = Instruction::new(op, ty, dst, srcs);
    inst.pred = pred;
    Ok(inst)
}

/// Parse a whole module produced by [`crate::format::format_module`].
pub fn parse_module(text: &str) -> Result<PtxModule, ParseError> {
    let mut module = PtxModule::default();
    let mut current: Option<PtxKernel> = None;
    let mut in_params = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('{') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("// Generated by ") {
            module.producer = rest.to_string();
            continue;
        }
        if line.starts_with("//")
            || line.starts_with(".version")
            || line.starts_with(".target")
            || line.starts_with(".address_size")
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".visible .entry ") {
            let name = rest.trim_end_matches('(').trim();
            current = Some(PtxKernel::new(name));
            in_params = true;
            continue;
        }
        if in_params {
            if let Some(rest) = line.strip_prefix(".param ") {
                let name = rest.trim_start_matches(".u64").trim().trim_end_matches(',');
                if let Some(k) = current.as_mut() {
                    k.params.push(name.to_string());
                }
                continue;
            }
            if line == ")" {
                in_params = false;
                continue;
            }
        }
        if line == "}" {
            if let Some(k) = current.take() {
                module.kernels.push(k);
            }
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let id = label
                .strip_prefix("$L_")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, format!("bad label `{label}`")))?;
            if let Some(k) = current.as_mut() {
                k.body.push(Item::Label(LabelId(id)));
            }
            continue;
        }
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| err(lineno, format!("missing `;` in `{line}`")))?;
        let inst = parse_instruction(stmt, lineno)?;
        let k = current
            .as_mut()
            .ok_or_else(|| err(lineno, "instruction outside a kernel"))?;
        k.body.push(Item::Inst(inst));
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Emitter;
    use crate::format::format_module;
    use crate::isa::Category;

    fn sample_module() -> PtxModule {
        let mut e = Emitter::new("saxpy");
        e.add_param("x");
        e.add_param("y");
        let base = e.emit(
            Opcode::LdParam,
            PtxType::U64,
            vec![Operand::Sym("x".into())],
        );
        let g = e.un(Opcode::CvtaToGlobal, PtxType::U64, base);
        let tid = e.emit(
            Opcode::Mov,
            PtxType::U32,
            vec![Operand::Sreg(SpecialReg::TidX)],
        );
        let off = e.bin(Opcode::Shl, PtxType::U64, tid, g);
        let v = e.emit(Opcode::LdGlobal, PtxType::F32, vec![off.into()]);
        let two = e.mov_imm_f(2.0);
        let prod = e.bin(Opcode::Mul, PtxType::F32, v, two);
        e.emit_void(
            Opcode::StGlobal,
            PtxType::F32,
            vec![off.into(), prod.into()],
        );
        let top = e.label();
        e.place(top);
        let p = e.bin(Opcode::Setp, PtxType::S32, tid, two);
        e.branch_if(p, top);
        PtxModule {
            producer: "CAPS 3.4.1 (Cuda -> K40)".into(),
            kernels: vec![e.finish()],
        }
    }

    #[test]
    fn round_trip_preserves_counts_and_structure() {
        let m = sample_module();
        let text = format_module(&m);
        let back = parse_module(&text).expect("parse");
        assert_eq!(back.producer, m.producer);
        assert_eq!(back.kernels.len(), 1);
        assert_eq!(back.kernels[0].name, "saxpy");
        assert_eq!(back.kernels[0].params, vec!["x", "y"]);
        assert_eq!(back.kernels[0].len(), m.kernels[0].len());
        assert_eq!(back.counts(), m.counts());
        // Labels and predicates survive.
        assert!(back.kernels[0]
            .body
            .iter()
            .any(|i| matches!(i, Item::Label(_))));
        assert!(back.kernels[0]
            .body
            .iter()
            .filter_map(|i| i.as_inst())
            .any(|i| i.pred.is_some()));
    }

    #[test]
    fn parses_float_immediates_exactly() {
        let m = sample_module();
        let back = parse_module(&format_module(&m)).unwrap();
        let imm: Vec<f64> = back.kernels[0]
            .body
            .iter()
            .filter_map(|i| i.as_inst())
            .flat_map(|i| i.srcs.iter())
            .filter_map(|o| match o {
                Operand::ImmF(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(imm, vec![2.0]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_module(".visible .entry k(\n)\n{\nbogus.f32 %f1;\n}\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn counts_from_hand_written_text() {
        let text = "\
.visible .entry tiny(
    .param .u64 a
)
{
    ld.param.u64 \t%rd1, [a];
    cvta.to.global.u64 \t%rd2, %rd1;
    ld.global.f32 \t%f3, %rd2;
    add.f32 \t%f4, %f3, %f3;
    st.global.f32 \t%rd2, %f4;
    ret.u32;
}
";
        let m = parse_module(text).unwrap();
        let c = m.counts();
        assert_eq!(c.get(Category::GlobalMemory), 3);
        assert_eq!(c.get(Category::Arithmetic), 1);
        assert_eq!(c.get(Category::DataMovement), 1);
    }
}
