//! # paccport-ptx — a PTX-like pseudo-assembly ISA
//!
//! The paper's second contribution is a *static PTX instruction
//! analysis*: for each benchmark and each optimization step it counts
//! the instructions the CAPS and PGI compilers emit, bucketed into the
//! categories of Table V (arithmetic, flow control, logical/shift,
//! data movement, global-memory and shared-memory instructions), and
//! uses the counts to explain performance differences — e.g. that
//! CAPS's "successful" unroll-and-jam on Gaussian elimination left the
//! PTX unchanged (a fake success), or that OpenACC tiling never
//! touched shared memory.
//!
//! This crate defines the instruction set those analyses run over:
//! virtual-register instructions with the exact opcode vocabulary of
//! the paper's Table V, plus kernels, modules, category counting,
//! diffing and a text formatter that renders recognisable PTX.
//!
//! ```
//! use paccport_ptx::*;
//!
//! let mut e = Emitter::new("k");
//! let a = e.mov_imm_f(2.0);
//! let b = e.mov_imm_f(3.0);
//! e.bin(Opcode::Fma, PtxType::F32, a, b);
//! let kernel = e.finish();
//! let counts = kernel.counts();
//! assert_eq!(counts.get(Category::Arithmetic), 1);
//! assert_eq!(counts.get(Category::DataMovement), 2);
//!
//! // Text round trip preserves the counts exactly.
//! let module = PtxModule { producer: "demo".into(), kernels: vec![kernel] };
//! let back = parse_module(&format_module(&module)).unwrap();
//! assert_eq!(back.counts(), module.counts());
//! ```

pub mod builder;
pub mod count;
pub mod format;
pub mod instr;
pub mod isa;
pub mod kernel;
pub mod parse;
pub mod peephole;

pub use builder::Emitter;
pub use count::{CategoryCounts, ModuleCounts};
pub use format::{format_instruction, format_kernel, format_module};
pub use instr::{Instruction, Item, LabelId, Operand, Reg, SpecialReg};
pub use isa::{Category, Opcode, PtxType, CATEGORIES};
pub use kernel::{PtxKernel, PtxModule};
pub use parse::{parse_module, ParseError};
