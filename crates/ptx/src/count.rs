//! Per-category instruction counting and diffing.

use crate::isa::{Category, CATEGORIES};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul};

/// Instruction counts per Table-V category.
///
/// Used both for *static* counts (what the paper plots in Figures 6,
/// 9, 11 and 14) and — multiplied by trip counts — for the *dynamic*
/// estimates the timing model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CategoryCounts {
    counts: [u64; CATEGORIES.len()],
}

impl CategoryCounts {
    pub fn get(&self, c: Category) -> u64 {
        self.counts[c.index()]
    }

    pub fn set(&mut self, c: Category, v: u64) {
        self.counts[c.index()] = v;
    }

    pub fn bump(&mut self, c: Category) {
        self.counts[c.index()] += 1;
    }

    pub fn add_n(&mut self, c: Category, n: u64) {
        self.counts[c.index()] += n;
    }

    /// Total over all categories *except* sync/control, matching what
    /// the paper's composition plots show.
    pub fn total_plotted(&self) -> u64 {
        CATEGORIES
            .iter()
            .filter(|c| **c != Category::Sync)
            .map(|c| self.get(*c))
            .sum()
    }

    /// Total over all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterate `(category, count)` in Table-V column order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        CATEGORIES.iter().map(move |c| (*c, self.get(*c)))
    }

    /// Saturating per-category difference `self - other` plus
    /// `other - self`, for "what changed between versions" reports.
    pub fn diff(&self, other: &CategoryCounts) -> Vec<(Category, i64)> {
        CATEGORIES
            .iter()
            .map(|c| (*c, self.get(*c) as i64 - other.get(*c) as i64))
            .filter(|(_, d)| *d != 0)
            .collect()
    }

    /// True when both count vectors are identical — the signal the
    /// paper used to detect CAPS's fake unroll success ("the PTX
    /// instructions remain the same").
    pub fn unchanged_from(&self, other: &CategoryCounts) -> bool {
        self == other
    }

    /// Scale by a (possibly fractional) trip-count factor, rounding
    /// to nearest. Used by the sampled dynamic estimator.
    pub fn scale(&self, factor: f64) -> CategoryCounts {
        let mut out = CategoryCounts::default();
        for (i, v) in self.counts.iter().enumerate() {
            out.counts[i] = (*v as f64 * factor).round() as u64;
        }
        out
    }

    /// Float view used for weighted accumulation.
    pub fn as_f64(&self) -> [f64; CATEGORIES.len()] {
        let mut out = [0.0; CATEGORIES.len()];
        for (i, v) in self.counts.iter().enumerate() {
            out[i] = *v as f64;
        }
        out
    }
}

impl Add for CategoryCounts {
    type Output = CategoryCounts;
    fn add(mut self, rhs: CategoryCounts) -> CategoryCounts {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += *b;
        }
        self
    }
}

impl AddAssign for CategoryCounts {
    fn add_assign(&mut self, rhs: CategoryCounts) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += *b;
        }
    }
}

impl Mul<u64> for CategoryCounts {
    type Output = CategoryCounts;
    fn mul(mut self, rhs: u64) -> CategoryCounts {
        for a in self.counts.iter_mut() {
            *a *= rhs;
        }
        self
    }
}

/// Per-kernel counts for a whole module, with the producer string —
/// one bar of a Figure-6-style composition plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleCounts {
    pub producer: String,
    pub per_kernel: Vec<(String, CategoryCounts)>,
}

impl ModuleCounts {
    pub fn from_module(m: &crate::kernel::PtxModule) -> Self {
        ModuleCounts {
            producer: m.producer.clone(),
            per_kernel: m
                .kernels
                .iter()
                .map(|k| (k.name.clone(), k.counts()))
                .collect(),
        }
    }

    pub fn total(&self) -> CategoryCounts {
        self.per_kernel
            .iter()
            .map(|(_, c)| *c)
            .fold(CategoryCounts::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_counts() {
        let mut a = CategoryCounts::default();
        a.bump(Category::Arithmetic);
        a.add_n(Category::GlobalMemory, 4);
        let b = a + a;
        assert_eq!(b.get(Category::Arithmetic), 2);
        assert_eq!(b.get(Category::GlobalMemory), 8);
        assert_eq!(b.total(), 10);
        let c = a * 3;
        assert_eq!(c.get(Category::GlobalMemory), 12);
    }

    #[test]
    fn plotted_total_excludes_sync() {
        let mut a = CategoryCounts::default();
        a.add_n(Category::Arithmetic, 5);
        a.add_n(Category::Sync, 2);
        assert_eq!(a.total_plotted(), 5);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn diff_reports_only_changes() {
        let mut a = CategoryCounts::default();
        a.add_n(Category::Arithmetic, 5);
        let mut b = CategoryCounts::default();
        b.add_n(Category::Arithmetic, 5);
        b.add_n(Category::SharedMemory, 1);
        assert!(a.unchanged_from(&a));
        assert!(!a.unchanged_from(&b));
        let d = b.diff(&a);
        assert_eq!(d, vec![(Category::SharedMemory, 1)]);
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        let mut a = CategoryCounts::default();
        a.add_n(Category::Arithmetic, 3);
        let s = a.scale(2.5);
        assert_eq!(s.get(Category::Arithmetic), 8); // 7.5 → 8
    }
}
