//! Kernels and modules of PTX-like code.

use crate::count::CategoryCounts;
use crate::instr::Item;
use serde::{Deserialize, Serialize};

/// A compiled kernel: a linear instruction stream with labels.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PtxKernel {
    pub name: String,
    /// Formal parameters (scalars and array base pointers), by name.
    pub params: Vec<String>,
    pub body: Vec<Item>,
}

impl PtxKernel {
    pub fn new(name: impl Into<String>) -> Self {
        PtxKernel {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of instructions (labels excluded).
    pub fn len(&self) -> usize {
        self.body.iter().filter(|i| i.as_inst().is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Static per-category instruction counts — the paper's core
    /// analysis artifact.
    pub fn counts(&self) -> CategoryCounts {
        let mut c = CategoryCounts::default();
        for item in &self.body {
            if let Some(inst) = item.as_inst() {
                c.bump(inst.op.category());
            }
        }
        c
    }
}

/// A module: all kernels produced from one program by one compiler.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PtxModule {
    /// Which toolchain produced this module (e.g. "CAPS 3.4.1 (CUDA)").
    pub producer: String,
    pub kernels: Vec<PtxKernel>,
}

impl PtxModule {
    pub fn kernel(&self, name: &str) -> Option<&PtxKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Summed static counts over all kernels.
    pub fn counts(&self) -> CategoryCounts {
        self.kernels
            .iter()
            .map(|k| k.counts())
            .fold(CategoryCounts::default(), |a, b| a + b)
    }

    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.kernels.iter().map(|k| k.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instruction, LabelId, Operand};
    use crate::isa::{Category, Opcode, PtxType};

    fn inst(op: Opcode) -> Item {
        Item::Inst(Instruction::new(op, PtxType::F32, None, vec![]))
    }

    #[test]
    fn labels_are_free() {
        let mut k = PtxKernel::new("k");
        k.body.push(Item::Label(LabelId(0)));
        k.body.push(inst(Opcode::Add));
        k.body.push(Item::Inst(Instruction::new(
            Opcode::Bra,
            PtxType::Pred,
            None,
            vec![Operand::Label(LabelId(0))],
        )));
        assert_eq!(k.len(), 2);
        let c = k.counts();
        assert_eq!(c.get(Category::Arithmetic), 1);
        assert_eq!(c.get(Category::FlowControl), 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn module_sums_kernels() {
        let mut a = PtxKernel::new("a");
        a.body.push(inst(Opcode::LdGlobal));
        let mut b = PtxKernel::new("b");
        b.body.push(inst(Opcode::StGlobal));
        b.body.push(inst(Opcode::Mul));
        let m = PtxModule {
            producer: "test".into(),
            kernels: vec![a, b],
        };
        assert_eq!(m.len(), 3);
        assert_eq!(m.counts().get(Category::GlobalMemory), 2);
        assert!(m.kernel("a").is_some());
        assert!(m.kernel("z").is_none());
    }
}
