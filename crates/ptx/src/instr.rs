//! Instructions over virtual registers.

use crate::isa::{Opcode, PtxType};
use serde::{Deserialize, Serialize};

/// A virtual register. The [`PtxType`] lives on the instruction; the
/// formatter derives the PTX register class from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

/// A branch-target label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelId(pub u32);

/// Hardware special registers (`mov.u32 %r1, %tid.x;`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialReg {
    TidX,
    TidY,
    CtaIdX,
    CtaIdY,
    NTidX,
    NTidY,
    NCtaIdX,
    NCtaIdY,
}

impl SpecialReg {
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NTidY => "%ntid.y",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::NCtaIdY => "%nctaid.y",
        }
    }
}

/// Instruction operands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    Reg(Reg),
    ImmF(f64),
    ImmI(i64),
    /// Kernel parameter / array-base symbol (for `ld.param`,
    /// `cvta.to.global`).
    Sym(String),
    /// Branch target.
    Label(LabelId),
    /// Special-register source (`%tid.x`, `%ctaid.y`, …).
    Sreg(SpecialReg),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// One PTX-like instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    pub op: Opcode,
    pub ty: PtxType,
    /// Destination register (absent for stores, branches, barriers).
    pub dst: Option<Reg>,
    pub srcs: Vec<Operand>,
    /// Guard predicate: `@%p bra …`.
    pub pred: Option<Reg>,
}

impl Instruction {
    pub fn new(op: Opcode, ty: PtxType, dst: Option<Reg>, srcs: Vec<Operand>) -> Self {
        Instruction {
            op,
            ty,
            dst,
            srcs,
            pred: None,
        }
    }

    pub fn with_pred(mut self, p: Reg) -> Self {
        self.pred = Some(p);
        self
    }
}

/// A body element: either a label or an instruction. Labels carry no
/// cost and are skipped by the counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    Label(LabelId),
    Inst(Instruction),
}

impl Item {
    pub fn as_inst(&self) -> Option<&Instruction> {
        match self {
            Item::Inst(i) => Some(i),
            Item::Label(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicated_branch_construction() {
        let i = Instruction::new(
            Opcode::Bra,
            PtxType::Pred,
            None,
            vec![Operand::Label(LabelId(3))],
        )
        .with_pred(Reg(7));
        assert_eq!(i.pred, Some(Reg(7)));
        assert!(i.dst.is_none());
    }

    #[test]
    fn item_inst_accessor() {
        let i = Item::Inst(Instruction::new(Opcode::Ret, PtxType::U32, None, vec![]));
        assert!(i.as_inst().is_some());
        assert!(Item::Label(LabelId(0)).as_inst().is_none());
    }
}
