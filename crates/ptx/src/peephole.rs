//! A post-lowering peephole over the PTX-like ISA: forward-propagate
//! register copies and delete `mov`/`cvt` instructions whose result
//! is never read.
//!
//! The simulated toolchains intentionally emit the register-pressure
//! debris their real counterparts did — e.g. the PGI personality's
//! per-parameter bookkeeping `mov`s whose results nothing ever reads
//! (they exist to reproduce the instruction-count gap of Table V).
//! This pass is the "what if the compiler cleaned up after itself"
//! counterfactual: it must not change behavior, only counts.
//!
//! Two rewrites, alternated to a fixpoint:
//!
//! * **copy propagation** — after `mov d, s` (unpredicated,
//!   register-to-register), later reads of `d` become reads of `s`,
//!   until either register is redefined. Strictly block-local: the
//!   alias map is cleared at labels, branches, barriers and returns,
//!   so control flow can never resurrect a stale alias.
//! * **dead-copy sweep** — an unpredicated `mov`/`cvt` *with* a
//!   destination that no instruction in the kernel reads (as source
//!   or predicate) computes an unobservable value and is dropped.
//!   `mov`s with *no* destination are stub markers emitted by
//!   `Emitter::emit_void` and are kept.

use crate::instr::{Instruction, Item, Operand, Reg};
use crate::isa::Opcode;
use crate::kernel::{PtxKernel, PtxModule};
use std::collections::{BTreeMap, BTreeSet};

/// Registers read anywhere in the kernel (sources and predicates).
fn used_regs(k: &PtxKernel) -> BTreeSet<Reg> {
    let mut used = BTreeSet::new();
    for item in &k.body {
        let Item::Inst(i) = item else { continue };
        for s in &i.srcs {
            if let Operand::Reg(r) = s {
                used.insert(*r);
            }
        }
        if let Some(p) = i.pred {
            used.insert(p);
        }
    }
    used
}

fn is_copy_like(i: &Instruction) -> bool {
    matches!(i.op, Opcode::Mov | Opcode::Cvt)
}

/// Remove unpredicated `mov`/`cvt` whose destination is never read.
/// Iterates internally: deleting one copy can strand another.
fn sweep_dead(k: &mut PtxKernel) -> bool {
    let mut changed = false;
    loop {
        let used = used_regs(k);
        let n0 = k.body.len();
        k.body.retain(|item| {
            let Item::Inst(i) = item else { return true };
            !(is_copy_like(i) && i.pred.is_none() && i.dst.is_some_and(|d| !used.contains(&d)))
        });
        if k.body.len() == n0 {
            return changed;
        }
        changed = true;
    }
}

/// Block-local forward copy propagation through unpredicated
/// register-to-register `mov`s.
fn copy_propagate(k: &mut PtxKernel) -> bool {
    let mut changed = false;
    let mut alias: BTreeMap<Reg, Reg> = BTreeMap::new();
    for item in &mut k.body {
        let i = match item {
            Item::Label(_) => {
                alias.clear();
                continue;
            }
            Item::Inst(i) => i,
        };
        // Rewrite reads first (this also makes chains transitive:
        // the alias target was itself rewritten when recorded).
        for s in &mut i.srcs {
            if let Operand::Reg(r) = s {
                if let Some(a) = alias.get(r) {
                    *s = Operand::Reg(*a);
                    changed = true;
                }
            }
        }
        if let Some(p) = &mut i.pred {
            if let Some(a) = alias.get(p) {
                *p = *a;
                changed = true;
            }
        }
        // Control-flow / synchronization edges invalidate everything.
        if matches!(i.op, Opcode::Bra | Opcode::Ret | Opcode::BarSync) {
            alias.clear();
            continue;
        }
        // Then account for the write.
        if let Some(d) = i.dst {
            alias.remove(&d);
            alias.retain(|_, v| *v != d);
            if i.op == Opcode::Mov && i.pred.is_none() {
                if let [Operand::Reg(s)] = i.srcs[..] {
                    if s != d {
                        alias.insert(d, s);
                    }
                }
            }
        }
    }
    changed
}

/// Clean one kernel. Returns whether anything changed.
pub fn run_kernel(k: &mut PtxKernel) -> bool {
    let mut changed = false;
    for _ in 0..8 {
        let step = copy_propagate(k) | sweep_dead(k);
        changed |= step;
        if !step {
            break;
        }
    }
    changed
}

/// Clean every kernel of a module. Returns whether anything changed.
pub fn run_module(m: &mut PtxModule) -> bool {
    let mut changed = false;
    for k in &mut m.kernels {
        changed |= run_kernel(k);
    }
    changed
}
