//! Opcodes, operand types and the Table-V instruction categories.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The instruction categories of the paper's Table V.
///
/// "Data movement encompasses both data transfers to shared and
/// global memory" in the paper's prose, but its Table V separates
/// register-level movement (`cvt`, `mov`, `ld.param`) from global- and
/// shared-memory instructions; we keep the table's six columns and add
/// a seventh bucket for synchronization/control (`bar.sync`, `ret`),
/// which the paper's plots omit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    Arithmetic,
    FlowControl,
    LogicalShift,
    DataMovement,
    GlobalMemory,
    SharedMemory,
    Sync,
}

/// All categories, in Table-V column order.
pub const CATEGORIES: [Category; 7] = [
    Category::Arithmetic,
    Category::FlowControl,
    Category::LogicalShift,
    Category::DataMovement,
    Category::GlobalMemory,
    Category::SharedMemory,
    Category::Sync,
];

impl Category {
    /// Column header used by the report tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::Arithmetic => "Arithmetic",
            Category::FlowControl => "Flow Control",
            Category::LogicalShift => "Logical Shift",
            Category::DataMovement => "Data Mov.",
            Category::GlobalMemory => "Global Memory",
            Category::SharedMemory => "Shared Memory",
            Category::Sync => "Sync",
        }
    }

    pub fn index(self) -> usize {
        CATEGORIES.iter().position(|c| *c == self).unwrap()
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Operand / instruction types, following PTX suffix spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PtxType {
    F32,
    F64,
    S32,
    U32,
    /// 64-bit address arithmetic.
    U64,
    /// Predicate registers.
    Pred,
}

impl PtxType {
    pub fn suffix(self) -> &'static str {
        match self {
            PtxType::F32 => "f32",
            PtxType::F64 => "f64",
            PtxType::S32 => "s32",
            PtxType::U32 => "u32",
            PtxType::U64 => "u64",
            PtxType::Pred => "pred",
        }
    }

    /// Register-name prefix PTX uses for this class.
    pub fn reg_prefix(self) -> &'static str {
        match self {
            PtxType::F32 => "%f",
            PtxType::F64 => "%fd",
            PtxType::S32 | PtxType::U32 => "%r",
            PtxType::U64 => "%rd",
            PtxType::Pred => "%p",
        }
    }
}

/// The opcode vocabulary of Table V (plus `sqrt`/`ex2` needed by
/// Hydro and Back Propagation, and the sync/control pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // Arithmetic
    Add,
    Sub,
    Mul,
    Div,
    Max,
    Min,
    Fma,
    Mad,
    Rcp,
    Abs,
    Neg,
    Rem,
    Sqrt,
    /// `ex2.approx` — exponential (used by BP's sigmoid).
    Ex2,
    // Flow control
    Setp,
    Selp,
    Bra,
    // Logical / shift
    And,
    Or,
    Not,
    Shl,
    Shr,
    // Data movement (register level)
    Cvt,
    Mov,
    LdParam,
    // Global memory
    CvtaToGlobal,
    LdGlobal,
    StGlobal,
    /// Atomic read-modify-write (`atom.global.add` etc.) — emitted by
    /// the OpenACC 2.0 atomics directive.
    AtomAdd,
    AtomMax,
    AtomMin,
    // Shared memory
    LdShared,
    StShared,
    // Sync / control
    BarSync,
    Ret,
}

impl Opcode {
    pub fn category(self) -> Category {
        use Opcode::*;
        match self {
            Add | Sub | Mul | Div | Max | Min | Fma | Mad | Rcp | Abs | Neg | Rem | Sqrt | Ex2 => {
                Category::Arithmetic
            }
            Setp | Selp | Bra => Category::FlowControl,
            And | Or | Not | Shl | Shr => Category::LogicalShift,
            Cvt | Mov | LdParam => Category::DataMovement,
            CvtaToGlobal | LdGlobal | StGlobal | AtomAdd | AtomMax | AtomMin => {
                Category::GlobalMemory
            }
            LdShared | StShared => Category::SharedMemory,
            BarSync | Ret => Category::Sync,
        }
    }

    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Max => "max",
            Min => "min",
            Fma => "fma",
            Mad => "mad",
            Rcp => "rcp",
            Abs => "abs",
            Neg => "neg",
            Rem => "rem",
            Sqrt => "sqrt",
            Ex2 => "ex2.approx",
            Setp => "setp",
            Selp => "selp",
            Bra => "bra",
            And => "and",
            Or => "or",
            Not => "not",
            Shl => "shl",
            Shr => "shr",
            Cvt => "cvt",
            Mov => "mov",
            LdParam => "ld.param",
            CvtaToGlobal => "cvta.to.global",
            LdGlobal => "ld.global",
            StGlobal => "st.global",
            AtomAdd => "atom.global.add",
            AtomMax => "atom.global.max",
            AtomMin => "atom.global.min",
            LdShared => "ld.shared",
            StShared => "st.shared",
            BarSync => "bar.sync",
            Ret => "ret",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_category_assignment() {
        // Spot checks straight out of Table V.
        assert_eq!(Opcode::Add.category(), Category::Arithmetic);
        assert_eq!(Opcode::Fma.category(), Category::Arithmetic);
        assert_eq!(Opcode::Rcp.category(), Category::Arithmetic);
        assert_eq!(Opcode::Setp.category(), Category::FlowControl);
        assert_eq!(Opcode::Selp.category(), Category::FlowControl);
        assert_eq!(Opcode::Bra.category(), Category::FlowControl);
        assert_eq!(Opcode::Or.category(), Category::LogicalShift);
        assert_eq!(Opcode::Shl.category(), Category::LogicalShift);
        assert_eq!(Opcode::Cvt.category(), Category::DataMovement);
        assert_eq!(Opcode::Mov.category(), Category::DataMovement);
        assert_eq!(Opcode::LdParam.category(), Category::DataMovement);
        assert_eq!(Opcode::CvtaToGlobal.category(), Category::GlobalMemory);
        assert_eq!(Opcode::LdGlobal.category(), Category::GlobalMemory);
        assert_eq!(Opcode::StGlobal.category(), Category::GlobalMemory);
        assert_eq!(Opcode::LdShared.category(), Category::SharedMemory);
        assert_eq!(Opcode::StShared.category(), Category::SharedMemory);
        assert_eq!(Opcode::BarSync.category(), Category::Sync);
    }

    #[test]
    fn category_index_is_stable() {
        for (i, c) in CATEGORIES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn mnemonics_render_ptx_names() {
        assert_eq!(Opcode::CvtaToGlobal.mnemonic(), "cvta.to.global");
        assert_eq!(Opcode::LdShared.mnemonic(), "ld.shared");
        assert_eq!(Opcode::BarSync.mnemonic(), "bar.sync");
    }

    #[test]
    fn reg_prefixes_follow_ptx_convention() {
        assert_eq!(PtxType::F32.reg_prefix(), "%f");
        assert_eq!(PtxType::S32.reg_prefix(), "%r");
        assert_eq!(PtxType::U64.reg_prefix(), "%rd");
        assert_eq!(PtxType::Pred.reg_prefix(), "%p");
    }
}
