//! Instruction emission helper used by the compiler lowerings.

use crate::count::CategoryCounts;
use crate::instr::{Instruction, Item, LabelId, Operand, Reg};
use crate::isa::{Opcode, PtxType};
use crate::kernel::PtxKernel;

/// Emits instructions into a kernel, allocating virtual registers and
/// labels, and supports "marks" so a lowering can measure the counts
/// contributed by a sub-range of the body (the compilers use this to
/// build nested cost trees for the dynamic estimator).
#[derive(Debug)]
pub struct Emitter {
    kernel: PtxKernel,
    next_reg: u32,
    next_label: u32,
}

impl Emitter {
    pub fn new(name: impl Into<String>) -> Self {
        Emitter {
            kernel: PtxKernel::new(name),
            next_reg: 1,
            next_label: 0,
        }
    }

    pub fn add_param(&mut self, name: impl Into<String>) {
        self.kernel.params.push(name.into());
    }

    /// Allocate a fresh virtual register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate a fresh label (not yet placed).
    pub fn label(&mut self) -> LabelId {
        let l = LabelId(self.next_label);
        self.next_label += 1;
        l
    }

    /// Place a label at the current position.
    pub fn place(&mut self, l: LabelId) {
        self.kernel.body.push(Item::Label(l));
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, i: Instruction) {
        self.kernel.body.push(Item::Inst(i));
    }

    /// Emit `op.ty dst, srcs...` with a fresh destination register.
    pub fn emit(&mut self, op: Opcode, ty: PtxType, srcs: Vec<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Instruction::new(op, ty, Some(dst), srcs));
        dst
    }

    /// Emit an instruction with no destination (stores, branches…).
    pub fn emit_void(&mut self, op: Opcode, ty: PtxType, srcs: Vec<Operand>) {
        self.push(Instruction::new(op, ty, None, srcs));
    }

    /// Emit a binary operation on two registers.
    pub fn bin(&mut self, op: Opcode, ty: PtxType, a: Reg, b: Reg) -> Reg {
        self.emit(op, ty, vec![a.into(), b.into()])
    }

    /// Emit a unary operation.
    pub fn un(&mut self, op: Opcode, ty: PtxType, a: Reg) -> Reg {
        self.emit(op, ty, vec![a.into()])
    }

    /// `mov.ty dst, imm`.
    pub fn mov_imm_i(&mut self, ty: PtxType, v: i64) -> Reg {
        self.emit(Opcode::Mov, ty, vec![Operand::ImmI(v)])
    }

    /// `mov.f32 dst, imm`.
    pub fn mov_imm_f(&mut self, v: f64) -> Reg {
        self.emit(Opcode::Mov, PtxType::F32, vec![Operand::ImmF(v)])
    }

    /// Predicated branch `@pred bra label`.
    pub fn branch_if(&mut self, pred: Reg, target: LabelId) {
        self.push(
            Instruction::new(
                Opcode::Bra,
                PtxType::Pred,
                None,
                vec![Operand::Label(target)],
            )
            .with_pred(pred),
        );
    }

    /// Unconditional branch.
    pub fn branch(&mut self, target: LabelId) {
        self.emit_void(Opcode::Bra, PtxType::Pred, vec![Operand::Label(target)]);
    }

    /// Current body length — a mark for later [`Self::counts_since`].
    pub fn mark(&mut self) -> usize {
        self.kernel.body.len()
    }

    /// Category counts of instructions emitted since `mark`.
    pub fn counts_since(&self, mark: usize) -> CategoryCounts {
        let mut c = CategoryCounts::default();
        for item in &self.kernel.body[mark..] {
            if let Some(i) = item.as_inst() {
                c.bump(i.op.category());
            }
        }
        c
    }

    /// Number of actual global-memory *transactions* (`ld.global` /
    /// `st.global`, excluding `cvta`) emitted since `mark` — the
    /// traffic the bandwidth model charges for.
    pub fn ldst_since(&self, mark: usize) -> u64 {
        self.kernel.body[mark..]
            .iter()
            .filter_map(|i| i.as_inst())
            .filter(|i| matches!(i.op, Opcode::LdGlobal | Opcode::StGlobal))
            .count() as u64
    }

    /// Finalize (appends `ret`).
    pub fn finish(mut self) -> PtxKernel {
        self.emit_void(Opcode::Ret, PtxType::U32, vec![]);
        self.kernel
    }

    /// Finalize without the trailing `ret` (for fragment lowering).
    pub fn finish_fragment(self) -> PtxKernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Category;

    #[test]
    fn fresh_registers_are_distinct() {
        let mut e = Emitter::new("k");
        let a = e.fresh();
        let b = e.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn marks_measure_emitted_ranges() {
        let mut e = Emitter::new("k");
        let a = e.mov_imm_f(1.0);
        let m = e.mark();
        let b = e.mov_imm_f(2.0);
        e.bin(Opcode::Add, PtxType::F32, a, b);
        let c = e.counts_since(m);
        assert_eq!(c.get(Category::DataMovement), 1);
        assert_eq!(c.get(Category::Arithmetic), 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn finish_appends_ret() {
        let e = Emitter::new("k");
        let k = e.finish();
        assert_eq!(k.len(), 1);
        assert_eq!(k.body.last().unwrap().as_inst().unwrap().op, Opcode::Ret);
    }

    #[test]
    fn loop_skeleton_emits_label_and_branch() {
        let mut e = Emitter::new("k");
        let top = e.label();
        e.place(top);
        let i = e.mov_imm_i(PtxType::S32, 0);
        let n = e.mov_imm_i(PtxType::S32, 8);
        let p = e.bin(Opcode::Setp, PtxType::S32, i, n);
        e.branch_if(p, top);
        let k = e.finish_fragment();
        assert_eq!(k.len(), 4);
        assert!(matches!(k.body[0], Item::Label(_)));
    }
}
