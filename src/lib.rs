//! # paccport — top-level facade
//!
//! Re-exports the whole workspace behind one crate so the examples and
//! integration tests (and downstream users) have a single dependency.
//!
//! See the `README.md` for a tour and `DESIGN.md` for the full system
//! inventory of this reproduction of *"Understanding Performance
//! Portability of OpenACC for Supercomputers"* (IPPS 2015).

pub use paccport_compilers as compilers;
pub use paccport_conformance as conformance;
pub use paccport_core as core;
pub use paccport_devsim as devsim;
pub use paccport_faults as faults;
pub use paccport_hydro as hydro;
pub use paccport_ir as ir;
pub use paccport_kernels as kernels;
pub use paccport_ptx as ptx;
pub use paccport_trace as trace;
