//! Round-trip the generated PTX of every benchmark through the text
//! formatter and parser: the parsed module must carry exactly the
//! same Table-V category counts as the in-memory one. This pins the
//! formatter/parser pair and guards the counters against drift.

use paccport::compilers::{compile, CompileOptions, CompilerId, Flag};
use paccport::hydro::{self, HydroVariant};
use paccport::kernels::{backprop, bfs, gaussian, lud, VariantCfg};
use paccport::ptx::{format_module, parse_module};

fn assert_round_trip(program: &paccport::ir::Program, compiler: CompilerId, o: &CompileOptions) {
    let c = compile(compiler, program, o).unwrap_or_else(|e| panic!("{}: {e}", program.name));
    let text = format_module(&c.module);
    let back =
        parse_module(&text).unwrap_or_else(|e| panic!("{} / {compiler:?}: {e}", program.name));
    assert_eq!(
        back.counts(),
        c.module.counts(),
        "{} / {compiler:?}: counts drifted through text",
        program.name
    );
    assert_eq!(back.kernels.len(), c.module.kernels.len());
    for (a, b) in back.kernels.iter().zip(&c.module.kernels) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.len(), b.len(), "kernel {}", a.name);
    }
}

#[test]
fn round_trip_all_rodinia_benchmarks() {
    let o = CompileOptions::gpu();
    let mut ge_reorg = VariantCfg::independent();
    ge_reorg.reorganized = true;
    let mut bp_red = VariantCfg::independent();
    bp_red.reduction = true;
    let mut lud_unroll = VariantCfg::thread_dist(256, 16);
    lud_unroll.unroll = Some(8);

    let programs = [
        lud::program(&VariantCfg::baseline()),
        lud::program(&lud_unroll),
        gaussian::program(&ge_reorg),
        gaussian::opencl_program(true),
        bfs::program(&VariantCfg::independent()),
        bfs::opencl_program(),
        backprop::program(&bp_red),
        backprop::opencl_program(128),
    ];
    for p in &programs {
        for compiler in [CompilerId::Caps, CompilerId::Pgi, CompilerId::OpenArc] {
            if compiler == CompilerId::Pgi && p.name.contains("ocl") {
                continue; // the hand OpenCL sources go through OpenClHand
            }
            assert_round_trip(p, compiler, &o);
        }
        assert_round_trip(p, CompilerId::OpenClHand, &o);
    }
}

#[test]
fn round_trip_hydro_and_flags() {
    let o = CompileOptions::gpu();
    assert_round_trip(
        &hydro::program(HydroVariant::Optimized),
        CompilerId::Caps,
        &o,
    );
    // Fast-math lowering (rcp+mul) must survive the trip too.
    assert_round_trip(
        &lud::program(&VariantCfg::thread_dist(256, 16)),
        CompilerId::Caps,
        &o.clone().with_flag(Flag::FastMath),
    );
    assert_round_trip(
        &gaussian::program(&VariantCfg::independent()),
        CompilerId::Pgi,
        &o.with_flag(Flag::Munroll),
    );
}
