//! Workspace-level gate: the bytecode execution tier is bitwise
//! interchangeable with the tree-walking reference interpreter.
//!
//! Two angles of attack:
//!
//! 1. The full soundness matrix (every compiler personality × device
//!    × program cell that `reproduce --check` sweeps) is run under
//!    both tiers and the complete observable run state — host buffer
//!    bit patterns, race sets, shadow-log access counts, transfer
//!    ledgers, while-loop iteration counts, kernel launch stats —
//!    must agree exactly. This runs twice: once with the race
//!    tracker on (scalar bytecode dispatch) and once with it off
//!    (tracker-less batched dispatch), so both VM paths are covered.
//! 2. The pinned conformance corpus — the regression cases fished out
//!    by the differential fuzzer — is replayed through the driver's
//!    `tier/bytecode` leg, which cross-checks the tiers including
//!    panic messages.

use paccport::compilers::ArtifactCache;
use paccport::conformance::corpus::corpus;
use paccport::conformance::{check_case, Outcome};
use paccport::core::study::Scale;
use paccport::core::tierdiff::{tier_equivalence, tier_equivalence_with};

#[test]
fn soundness_matrix_is_tier_equivalent() {
    let report = tier_equivalence(&Scale::smoke());
    assert_eq!(
        report.cells.len(),
        59,
        "smoke soundness matrix changed size; update this pin deliberately"
    );
    assert!(report.ok(), "{}", report.render());
    assert!(report.render().contains("tier mismatches: 0"));
}

#[test]
fn soundness_matrix_is_tier_equivalent_without_race_tracking() {
    // With shadow-logging off the bytecode VM takes its batched
    // innermost-loop dispatch; the tree-walker is unaffected, so any
    // batching bug shows up here as a bitwise mismatch.
    let report = tier_equivalence_with(&ArtifactCache::new(), &Scale::smoke(), false);
    assert_eq!(report.cells.len(), 59);
    assert!(report.ok(), "{}", report.render());
}

#[test]
fn pinned_corpus_replays_on_bytecode_tier() {
    let mut tier_legs = 0;
    for (name, case) in corpus() {
        for leg in check_case(&case) {
            if leg.label != "tier/bytecode" {
                continue;
            }
            tier_legs += 1;
            if let Outcome::Mismatch { kind, detail } = &leg.outcome {
                panic!("corpus case `{name}` diverged across tiers: {kind:?}: {detail}");
            }
        }
    }
    assert!(tier_legs > 0, "corpus produced no tier/bytecode legs");
}
