//! Property tests over the PTX-like text pipeline: randomized kernels
//! built through the [`Emitter`] must survive format → parse → format
//! as a text fixpoint, preserve their Table-V category counts, and the
//! counts themselves must obey the totals/diff invariants the report
//! layer relies on.

use paccport::ptx::count::{CategoryCounts, ModuleCounts};
use paccport::ptx::format::format_module;
use paccport::ptx::instr::{LabelId, Operand, Reg, SpecialReg};
use paccport::ptx::isa::{Category, Opcode, PtxType, CATEGORIES};
use paccport::ptx::kernel::PtxModule;
use paccport::ptx::parse::parse_module;
use paccport::ptx::Emitter;
use proptest::prelude::*;

/// Local splitmix64 so the instruction mix is driven by one sampled
/// seed instead of a strategy per choice.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() as usize) % xs.len()]
    }
}

const F_BIN: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Max,
    Opcode::Min,
];
const F_UN: [Opcode; 5] = [
    Opcode::Abs,
    Opcode::Neg,
    Opcode::Sqrt,
    Opcode::Rcp,
    Opcode::Ex2,
];
const I_BIN: [Opcode; 7] = [
    Opcode::Add,
    Opcode::Mul,
    Opcode::Rem,
    Opcode::And,
    Opcode::Or,
    Opcode::Shl,
    Opcode::Shr,
];
const SREGS: [SpecialReg; 4] = [
    SpecialReg::TidX,
    SpecialReg::CtaIdX,
    SpecialReg::NTidX,
    SpecialReg::NCtaIdX,
];

/// Emit a random but well-formed kernel. The mix respects the parser's
/// operand conventions: value-producing opcodes write a fresh dst,
/// stores/branches/atomics are dst-less, float immediates stay exactly
/// f32-representable (the text form is `0f%08X` of the f32 bits).
fn random_kernel(name: &str, seed: u64, len: usize) -> paccport::ptx::kernel::PtxKernel {
    let mut rng = Mix(seed);
    let mut e = Emitter::new(name);
    e.add_param("a");
    e.add_param("b");

    let base = e.emit(
        Opcode::LdParam,
        PtxType::U64,
        vec![Operand::Sym("a".into())],
    );
    let addr = e.un(Opcode::CvtaToGlobal, PtxType::U64, base);
    let mut fregs: Vec<Reg> = vec![e.mov_imm_f(1.5)];
    let mut iregs: Vec<Reg> = vec![e.mov_imm_i(PtxType::S32, 7)];
    let mut labels: Vec<LabelId> = Vec::new();

    for _ in 0..len {
        match rng.next() % 14 {
            0 => {
                let (a, b) = (rng.pick(&fregs), rng.pick(&fregs));
                let op = rng.pick(&F_BIN);
                fregs.push(e.bin(op, PtxType::F32, a, b));
            }
            1 => {
                let a = rng.pick(&fregs);
                let op = rng.pick(&F_UN);
                fregs.push(e.un(op, PtxType::F32, a));
            }
            2 => {
                let (a, b) = (rng.pick(&iregs), rng.pick(&iregs));
                let op = rng.pick(&I_BIN);
                iregs.push(e.bin(op, PtxType::S32, a, b));
            }
            3 => {
                // Exactly f32-representable: small multiples of 1/4.
                let v = (rng.next() % 64) as f64 * 0.25 - 8.0;
                fregs.push(e.mov_imm_f(v));
            }
            4 => {
                let v = (rng.next() % 2048) as i64 - 1024;
                iregs.push(e.mov_imm_i(PtxType::S32, v));
            }
            5 => {
                let s = rng.pick(&SREGS);
                iregs.push(e.emit(Opcode::Mov, PtxType::U32, vec![Operand::Sreg(s)]));
            }
            6 => {
                fregs.push(e.emit(Opcode::LdGlobal, PtxType::F32, vec![addr.into()]));
            }
            7 => {
                let v = rng.pick(&fregs);
                e.emit_void(Opcode::StGlobal, PtxType::F32, vec![addr.into(), v.into()]);
            }
            8 => {
                let i = rng.pick(&iregs);
                fregs.push(e.emit(Opcode::LdShared, PtxType::F32, vec![i.into()]));
            }
            9 => {
                let (i, v) = (rng.pick(&iregs), rng.pick(&fregs));
                e.emit_void(Opcode::StShared, PtxType::F32, vec![i.into(), v.into()]);
            }
            10 => {
                let l = e.label();
                e.place(l);
                labels.push(l);
            }
            11 => {
                if let Some(&l) = labels.last() {
                    let (a, b) = (rng.pick(&iregs), rng.pick(&iregs));
                    let p = e.bin(Opcode::Setp, PtxType::S32, a, b);
                    e.branch_if(p, l);
                }
            }
            12 => {
                let (a, b) = (rng.pick(&fregs), rng.pick(&fregs));
                let c = e.bin(Opcode::Fma, PtxType::F32, a, b);
                let i = rng.pick(&fregs);
                fregs.push(e.bin(Opcode::Fma, PtxType::F32, c, i));
            }
            _ => {
                e.emit_void(Opcode::BarSync, PtxType::U32, vec![Operand::ImmI(0)]);
            }
        }
    }
    e.finish()
}

fn random_module(seed: u64, kernels: usize, len: usize) -> PtxModule {
    PtxModule {
        producer: format!("CAPS 3.4.1 (Cuda -> K40) [seed {seed}]"),
        kernels: (0..kernels)
            .map(|k| {
                random_kernel(
                    &format!("kern_{k}"),
                    seed ^ (k as u64).wrapping_mul(0xa5a5),
                    len,
                )
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// format → parse → format is a text fixpoint, and a second parse
    /// reproduces the first parse exactly (structural idempotence).
    #[test]
    fn format_parse_format_is_a_fixpoint(seed in 0u64..1_000_000, kernels in 1usize..4, len in 0usize..60) {
        let m = random_module(seed, kernels, len);
        let text = format_module(&m);
        let back = parse_module(&text).expect("formatter output must parse");
        let text2 = format_module(&back);
        prop_assert_eq!(&text, &text2, "reformatted text diverged");
        prop_assert_eq!(parse_module(&text2).expect("second parse"), back);
    }

    /// Parsing preserves everything the analysis layer reads: producer,
    /// kernel names/params, instruction counts per kernel and module.
    #[test]
    fn roundtrip_preserves_counts(seed in 0u64..1_000_000, len in 1usize..80) {
        let m = random_module(seed, 2, len);
        let back = parse_module(&format_module(&m)).expect("parse");
        prop_assert_eq!(&back.producer, &m.producer);
        prop_assert_eq!(back.kernels.len(), m.kernels.len());
        for (k0, k1) in m.kernels.iter().zip(&back.kernels) {
            prop_assert_eq!(&k0.name, &k1.name);
            prop_assert_eq!(&k0.params, &k1.params);
            prop_assert_eq!(k0.len(), k1.len());
            prop_assert_eq!(k0.counts(), k1.counts());
        }
        prop_assert_eq!(back.counts(), m.counts());
        prop_assert_eq!(ModuleCounts::from_module(&back), ModuleCounts::from_module(&m));
    }

    /// Table-V count algebra: totals partition over categories, the
    /// plotted total is exactly total minus sync, self-diff is empty,
    /// and the module total is the fold of the per-kernel totals.
    #[test]
    fn category_count_totals_are_consistent(seed in 0u64..1_000_000, len in 0usize..100) {
        let m = random_module(seed, 3, len);
        for k in &m.kernels {
            let c = k.counts();
            let by_cat: u64 = CATEGORIES.iter().map(|cat| c.get(*cat)).sum();
            prop_assert_eq!(c.total(), by_cat, "total must partition over categories");
            prop_assert_eq!(
                c.total_plotted(),
                c.total() - c.get(Category::Sync),
                "plotted total must exclude exactly the sync bucket"
            );
            prop_assert_eq!(c.total(), k.len() as u64, "one bump per instruction");
            prop_assert!(c.unchanged_from(&c));
            prop_assert!(c.diff(&c).is_empty());
            prop_assert_eq!(
                c.iter().map(|(_, n)| n).sum::<u64>(),
                c.total(),
                "iter() must visit every bucket once"
            );
        }
        let folded = m
            .kernels
            .iter()
            .map(|k| k.counts())
            .fold(CategoryCounts::default(), |a, b| a + b);
        prop_assert_eq!(m.counts(), folded);
        prop_assert_eq!(ModuleCounts::from_module(&m).total(), folded);
    }

    /// diff() is an exact inverse delta: applying it to the baseline's
    /// counts reconstructs the changed version, and diff/unchanged_from
    /// agree about whether anything moved.
    #[test]
    fn diff_reconstructs_the_delta(seed in 0u64..1_000_000, extra in 0u64..9) {
        let m = random_module(seed, 1, 40);
        let before = m.kernels[0].counts();
        let mut after = before;
        after.add_n(Category::Arithmetic, extra);
        after.add_n(Category::GlobalMemory, extra * 2);

        let d = after.diff(&before);
        prop_assert_eq!(after.unchanged_from(&before), d.is_empty());
        let mut rebuilt = before;
        for (cat, delta) in &d {
            prop_assert!(*delta > 0, "this delta only ever adds");
            rebuilt.add_n(*cat, *delta as u64);
        }
        prop_assert_eq!(rebuilt, after);
    }
}

/// A corrupt listing must fail with the offending line, not panic —
/// this is the error path `parse_module` promises its callers.
#[test]
fn parse_errors_locate_the_bad_line() {
    let m = random_module(7, 1, 20);
    let mut text = format_module(&m);
    text.push_str("    frob.f32 \t%f1, %f2;\n");
    let bad_line = text.lines().count();
    let e = parse_module(&text).expect_err("unknown opcode must not parse");
    assert_eq!(e.line, bad_line);
    assert!(e.message.contains("frob"));
}
