//! End-to-end properties of the deterministic fault-injection
//! subsystem: chaos runs are reproducible from (spec, seed), lossless
//! modulo quarantine, and the watchdog turns hangs into typed
//! timeouts.
//!
//! Fault configuration is process-global, so every test here holds a
//! shared lock while a spec is active (this file is its own test
//! binary, so the lock never contends with the rest of the suite).

use std::sync::{Mutex, MutexGuard, OnceLock};

use paccport::core::engine::Engine;
use paccport::core::study::{CellSpec, ElapsedFigure, Scale};
use paccport::core::{experiments as exp, report};
use paccport::faults::{self, FaultSpec};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Run fig. 3 under the given fault configuration on a fresh engine.
fn fig3_under(spec: Option<(&str, u64)>) -> ElapsedFigure {
    match spec {
        Some((s, seed)) => faults::configure(FaultSpec::parse(s).unwrap(), seed),
        None => faults::deconfigure(),
    }
    let fig = exp::fig3_lud_on(&Engine::serial(), &Scale::smoke());
    faults::deconfigure();
    fig
}

#[test]
fn chaos_study_is_lossless_modulo_quarantine() {
    let _g = lock();
    let baseline = fig3_under(None);
    assert!(baseline.failures.is_empty(), "baseline must be fault-free");

    // A compile-fault rate high enough to quarantine something across
    // seeds is not guaranteed, so pick a seed known to quarantine at
    // least one cell AND recover others; the assertions below hold for
    // any seed regardless.
    let faulted = fig3_under(Some(("compile:0.35", 9)));

    for m in &faulted.points {
        let b = baseline
            .get(&m.series, &m.variant)
            .expect("cell exists in baseline");
        assert_eq!(b, m, "non-quarantined cell must match fault-free run");
    }
    assert_eq!(
        faulted.points.len() + faulted.failures.len(),
        baseline.points.len(),
        "every cell is either measured or explicitly quarantined"
    );
    for f in &faulted.failures {
        assert!(f.injected, "only injected chaos may quarantine: {f:?}");
        assert!(faults::is_injected(&f.reason), "{}", f.reason);
        assert!(f.attempts >= 1);
    }
}

#[test]
fn same_seed_reproduces_the_same_figure() {
    let _g = lock();
    let a = fig3_under(Some(("chaos", 1234)));
    let b = fig3_under(Some(("chaos", 1234)));
    assert_eq!(a.points, b.points);
    assert_eq!(a.failures, b.failures);
    assert_eq!(report::render_elapsed(&a), report::render_elapsed(&b));

    let c = fig3_under(Some(("chaos", 1235)));
    assert!(
        a.points != c.points || a.failures != c.failures,
        "a different seed should perturb at least one fault decision"
    );
}

#[test]
fn hung_kernel_times_out_and_is_quarantined() {
    let _g = lock();
    faults::configure(FaultSpec::parse("hang:lud:1.0").unwrap(), 0);
    let eng = Engine::serial();
    let (variant, vc) = &exp::lud_variants()[0];
    let cells = vec![CellSpec::new(
        "CAPS-CUDA-K40",
        variant.clone(),
        paccport::compilers::CompilerId::Caps,
        paccport::compilers::CompileOptions::gpu(),
        paccport::kernels::lud::program(vc),
        paccport::devsim::RunConfig::timing(vec![("n".into(), 32.0)], 1),
    )];
    let results = eng.measure_matrix_detailed(cells);
    faults::deconfigure();

    let f = results[0].as_ref().expect_err("rate-1.0 hang must fail");
    assert!(f.reason.contains("Timeout"), "{}", f.reason);
    assert!(f.injected);
    assert_eq!(f.attempts, eng.policy().max_attempts);
    let q = eng.quarantined();
    assert_eq!(q.len(), 1);
    assert!(q[0].reason.contains("Timeout"));
}

#[test]
fn fault_ledger_names_every_injected_event() {
    let _g = lock();
    faults::configure(FaultSpec::parse("compile:0.35").unwrap(), 9);
    let fig = exp::fig3_lud_on(&Engine::serial(), &Scale::smoke());
    let events = faults::ledger();
    faults::deconfigure();
    assert!(!fig.points.is_empty());
    assert!(!events.is_empty(), "rate 0.35 must fire somewhere");
    for e in &events {
        assert_eq!(e.kind.tag(), "compile");
        assert!(e.key.to_lowercase().contains("lud"), "{}", e.key);
    }
}
