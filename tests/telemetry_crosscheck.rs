//! Cross-checks between the metrics registry and the ground truth it
//! mirrors: the engine's artifact-cache statistics, and the device
//! simulator's own `RunResult` accounting. If an exporter ever shows
//! numbers these tests would catch drifting, the telemetry is lying.
//!
//! The registry is process-global, so the tests serialize on a
//! file-local mutex and reset it around each collection window.

use std::sync::Mutex;

use paccport::core::study::Scale;
use paccport::core::{profile_matrix_on, Engine};
use paccport::trace::metrics;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn family_sum(name: &str) -> f64 {
    metrics::histogram_sums(name)
        .iter()
        .map(|(_, s, _)| s)
        .sum()
}

#[test]
fn cache_hit_metric_matches_the_engine_cache_stats() {
    let _l = guard();
    metrics::reset_metrics();
    metrics::set_metrics_enabled(true);
    let eng = Engine::new(4);
    let report = profile_matrix_on(&eng, &Scale::smoke());
    metrics::set_metrics_enabled(false);

    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(
        eng.cache().misses() > 0,
        "the sweep must actually have compiled something"
    );
    // The `cache.hit` / `cache.miss` trace counters mirror into the
    // registry under their sanitized names; the cache's own atomic
    // stats are the ground truth they must agree with.
    assert_eq!(
        metrics::counter_value("cache_hit", &[]),
        eng.cache().hits(),
        "cache_hit metric out of sync with ArtifactCache::hits"
    );
    assert_eq!(
        metrics::counter_value("cache_miss", &[]),
        eng.cache().misses(),
        "cache_miss metric out of sync with ArtifactCache::misses"
    );
    metrics::reset_metrics();
}

#[test]
fn devsim_metrics_reproduce_the_run_results_own_accounting() {
    let _l = guard();
    let cells = paccport::core::experiments::soundness_cells(&Scale::smoke());

    metrics::reset_metrics();
    metrics::set_metrics_enabled(true);
    let mut elapsed_total = 0.0;
    let mut kernel_total = 0.0;
    let mut transfer_total = 0.0;
    for cell in &cells {
        let c = paccport::compilers::compile(cell.compiler, &cell.program, &cell.options)
            .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
        let r = paccport::devsim::run(&c, &cell.cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
        elapsed_total += r.elapsed;
        kernel_total += r.kernel_stats.iter().map(|s| s.device_time).sum::<f64>();
        transfer_total += r.transfer_time_s;
    }
    metrics::set_metrics_enabled(false);

    let close = |a: f64, b: f64, what: &str| {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "{what}: metric {a} vs ground truth {b}"
        );
    };
    // One observation per run: every run lands in `devsim_run_seconds`.
    let runs: u64 = metrics::histogram_sums("devsim_run_seconds")
        .iter()
        .map(|(_, _, n)| n)
        .sum();
    assert_eq!(runs as usize, cells.len());
    close(
        family_sum("devsim_run_seconds"),
        elapsed_total,
        "run seconds",
    );
    close(
        family_sum("devsim_kernel_seconds"),
        kernel_total,
        "per-kernel device time",
    );
    close(
        family_sum("devsim_transfer_seconds"),
        transfer_total,
        "transfer time",
    );
    // The headline invariant: the per-kernel series, the transfer
    // series and the non-kernel host series partition total run time —
    // nothing the simulator charges falls outside the registry.
    close(
        family_sum("devsim_kernel_seconds")
            + family_sum("devsim_transfer_seconds")
            + family_sum("devsim_host_seconds"),
        elapsed_total,
        "kernel + transfer + host vs elapsed",
    );
    metrics::reset_metrics();
}
