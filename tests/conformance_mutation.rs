//! Mutation sensitivity: the harness must *catch* seeded semantics
//! bugs, and the shrinker must minimize what it catches.
//!
//! This is the differential harness's own fire drill. We play a buggy
//! optimizer: a rewrite that flips `+` to `-` in the values kernels
//! compute — the classic off-by-a-sign a botched `simplify`
//! canonicalization or strength-reduction pass would introduce. The
//! rewrite preserves well-typedness (it still validates) and touches
//! only computed values, never indices or bounds, so the *only* way to
//! notice it is to compare observable results. The test asserts that
//! (a) the oracle-differential predicate notices it within a handful
//! of generated programs, and (b) greedy shrinking reduces the
//! witness to a program of at most 10 IR statements.

use paccport::conformance::{generate, shrink, Case};
use paccport::ir::{
    program_to_string, validate, BinOp, Block, Expr, HostStmt, Kernel, KernelBody, Program, Stmt,
};

// ---------------------------------------------------------------
// The seeded bug: Add -> Sub inside kernel-computed values.
// ---------------------------------------------------------------

fn mut_expr(e: &Expr) -> Expr {
    match e {
        Expr::Bin(BinOp::Add, a, b) => {
            Expr::Bin(BinOp::Sub, Box::new(mut_expr(a)), Box::new(mut_expr(b)))
        }
        Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(mut_expr(a)), Box::new(mut_expr(b))),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(mut_expr(a))),
        Expr::Cast(ty, a) => Expr::Cast(*ty, Box::new(mut_expr(a))),
        Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(mut_expr(a)), Box::new(mut_expr(b))),
        Expr::Fma(a, b, c) => Expr::Fma(
            Box::new(mut_expr(a)),
            Box::new(mut_expr(b)),
            Box::new(mut_expr(c)),
        ),
        Expr::Select(c, t, f) => Expr::Select(
            Box::new(mut_expr(c)),
            Box::new(mut_expr(t)),
            Box::new(mut_expr(f)),
        ),
        // Loads keep their index untouched: the bug corrupts values,
        // not addresses, so every mutant stays in bounds.
        other => other.clone(),
    }
}

fn mut_block(b: &Block) -> Block {
    Block(b.0.iter().map(mut_stmt).collect())
}

fn mut_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Let { var, ty, init } => Stmt::Let {
            var: *var,
            ty: *ty,
            init: mut_expr(init),
        },
        Stmt::Assign { var, value } => Stmt::Assign {
            var: *var,
            value: mut_expr(value),
        },
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => Stmt::Store {
            space: *space,
            array: *array,
            index: index.clone(),
            value: mut_expr(value),
        },
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => Stmt::Atomic {
            op: *op,
            array: *array,
            index: index.clone(),
            value: mut_expr(value),
        },
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => Stmt::If {
            cond: cond.clone(),
            then_blk: mut_block(then_blk),
            else_blk: mut_block(else_blk),
        },
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => Stmt::For {
            var: *var,
            lo: lo.clone(),
            hi: hi.clone(),
            step: *step,
            body: mut_block(body),
        },
        Stmt::Barrier => Stmt::Barrier,
    }
}

fn mut_kernel(k: &Kernel) -> Kernel {
    let mut kk = k.clone();
    kk.body = match &k.body {
        KernelBody::Simple(b) => KernelBody::Simple(mut_block(b)),
        KernelBody::Grouped(g) => {
            let mut gg = g.clone();
            gg.phases = g.phases.iter().map(mut_block).collect();
            KernelBody::Grouped(gg)
        }
    };
    kk
}

fn mut_host(stmts: &[HostStmt]) -> Vec<HostStmt> {
    stmts
        .iter()
        .map(|s| match s {
            HostStmt::Launch(k) => HostStmt::Launch(mut_kernel(k)),
            HostStmt::DataRegion { arrays, body } => HostStmt::DataRegion {
                arrays: arrays.clone(),
                body: mut_host(body),
            },
            HostStmt::HostLoop { var, lo, hi, body } => HostStmt::HostLoop {
                var: *var,
                lo: lo.clone(),
                hi: hi.clone(),
                body: mut_host(body),
            },
            HostStmt::WhileFlag {
                flag,
                max_iters,
                body,
            } => HostStmt::WhileFlag {
                flag: *flag,
                max_iters: *max_iters,
                body: mut_host(body),
            },
            other => other.clone(),
        })
        .collect()
}

fn mutate(p: &Program) -> Program {
    let mut m = p.clone();
    m.body = mut_host(&p.body);
    m
}

// ---------------------------------------------------------------
// The detector: oracle(original) vs oracle(mutant), bitwise.
// ---------------------------------------------------------------

/// True iff the seeded bug is observable on this case.
fn bug_caught(case: &Case) -> bool {
    use paccport::conformance::run_oracle;
    let Ok(want) = run_oracle(&case.program, &case.params, &case.inputs) else {
        return false;
    };
    match run_oracle(&mutate(&case.program), &case.params, &case.inputs) {
        // A mutant that traps (e.g. a budget blow-up) is also caught.
        Err(_) => true,
        Ok(got) => want.observable(&case.program) != got.observable(&case.program),
    }
}

#[test]
fn seeded_add_to_sub_bug_is_caught_and_shrinks_small() {
    // (a) The bug must be visible within a handful of programs.
    let witness = (0..20)
        .map(|i| generate(1234, i))
        .find(bug_caught)
        .expect("Add->Sub mutation invisible across 20 generated programs — generator too weak");

    // (b) The witness must shrink to a small program while the bug
    // stays observable, and the minimum must still validate.
    let small = shrink(&witness, &|c| bug_caught(c));
    assert!(bug_caught(&small), "shrinking lost the bug");
    validate(&small.program).expect("shrunk witness must stay valid");
    assert!(
        small.program.stmt_count() <= 10,
        "shrunk witness still has {} statements:\n{}",
        small.program.stmt_count(),
        program_to_string(&small.program)
    );
}

#[test]
fn mutants_still_validate() {
    // The rewrite must seed a *semantic* bug, not a malformed program:
    // if mutants failed validation, catching them would prove nothing.
    for i in 0..10 {
        let case = generate(1234, i);
        validate(&mutate(&case.program)).expect("mutant must remain well-formed");
    }
}
