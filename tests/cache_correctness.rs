//! Correctness of the content-hash compile cache: identical
//! (program, options, device) requests hit; any changed clause, flag,
//! device or host compiler misses; and an engine compiles each unique
//! artifact exactly once, which the hit/miss counters make observable.

use std::sync::Arc;

use paccport::compilers::{
    fingerprint, ArtifactCache, CompileOptions, CompilerId, Flag, HostCompiler, QuirkSet,
};
use paccport::core::engine::Engine;
use paccport::core::{experiments as exp, Scale};
use paccport::kernels::{gaussian, lud, VariantCfg};

#[test]
fn same_request_hits() {
    let cache = ArtifactCache::new();
    let p = lud::program(&VariantCfg::thread_dist(256, 16));
    let o = CompileOptions::gpu();
    let a = cache.compile(CompilerId::Caps, &p, &o).unwrap();
    let b = cache.compile(CompilerId::Caps, &p, &o).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the artifact");
    assert_eq!((cache.misses(), cache.hits()), (1, 1));
}

#[test]
fn changed_clause_misses() {
    let cache = ArtifactCache::new();
    let o = CompileOptions::gpu();
    // gang/worker clause changes are program-content changes.
    cache
        .compile(
            CompilerId::Caps,
            &lud::program(&VariantCfg::thread_dist(256, 16)),
            &o,
        )
        .unwrap();
    cache
        .compile(
            CompilerId::Caps,
            &lud::program(&VariantCfg::thread_dist(256, 32)),
            &o,
        )
        .unwrap();
    cache
        .compile(CompilerId::Caps, &lud::program(&VariantCfg::baseline()), &o)
        .unwrap();
    let mut vc = VariantCfg::independent();
    vc.tile = Some(32);
    cache
        .compile(CompilerId::Caps, &gaussian::program(&vc), &o)
        .unwrap();
    assert_eq!((cache.misses(), cache.hits()), (4, 0));
}

#[test]
fn changed_flag_device_host_or_quirks_misses() {
    let cache = ArtifactCache::new();
    let p = lud::program(&VariantCfg::thread_dist(256, 16));
    let gpu = CompileOptions::gpu();
    let variants = [
        gpu.clone(),
        gpu.clone().with_flag(Flag::Munroll),
        gpu.clone().with_flag(Flag::FastMath),
        gpu.clone().with_host_compiler(HostCompiler::Intel),
        CompileOptions::mic(),
        CompileOptions::amd(),
        {
            let mut o = gpu.clone();
            o.quirks = QuirkSet::none();
            o
        },
    ];
    for o in &variants {
        cache.compile(CompilerId::Caps, &p, o).unwrap();
    }
    // Same program under a different personality is yet another key.
    cache.compile(CompilerId::Pgi, &p, &gpu).unwrap();
    assert_eq!(cache.misses(), variants.len() as u64 + 1);
    assert_eq!(cache.hits(), 0);
}

#[test]
fn engine_compiles_each_unique_artifact_exactly_once() {
    let s = Scale::quick();
    let eng = Engine::new(4);

    // Fig. 3 is a 4-variant × {CAPS-gpu, CAPS-mic, PGI-gpu} matrix:
    // all 12 (program, options, compiler) triples are distinct.
    exp::fig3_lud_on(&eng, &s);
    assert_eq!(
        (eng.cache().misses(), eng.cache().hits()),
        (12, 0),
        "fresh engine: every fig3 cell is a unique artifact"
    );

    // Rerunning the same figure must be pure cache hits.
    exp::fig3_lud_on(&eng, &s);
    assert_eq!(eng.cache().misses(), 12, "rerun compiled nothing new");
    assert_eq!(eng.cache().hits(), 12);

    // Fig. 6 reuses fig. 3's CAPS/PGI GPU artifacts; only PGI's
    // -Munroll build is a new key. (CAPS: Base, ThreadDist, Unroll,
    // Tile; PGI: Base, ThreadDist — all already cached.)
    let misses_before = eng.cache().misses();
    exp::fig6_lud_ptx_on(&eng, &s);
    assert_eq!(
        eng.cache().misses() - misses_before,
        1,
        "cross-figure sharing: fig6 adds only the PGI -Munroll artifact"
    );
}

#[test]
fn serial_and_parallel_engines_cache_identically() {
    let s = Scale::quick();
    let serial = Engine::serial();
    let parallel = Engine::new(8);
    exp::fig7_ge_on(&serial, &s);
    exp::fig7_ge_on(&parallel, &s);
    assert_eq!(serial.cache().misses(), parallel.cache().misses());
    assert_eq!(serial.cache().hits(), parallel.cache().hits());
}

mod fingerprint_properties {
    use super::*;
    use paccport::kernels::backprop;
    use proptest::prelude::*;

    fn lud_with(gang: u32, worker: u32, unroll: Option<u32>) -> paccport::ir::Program {
        let mut vc = VariantCfg::thread_dist(gang, worker);
        vc.unroll = unroll;
        lud::program(&vc)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Building the same program twice gives the same fingerprint
        /// (the hash is content-based, not identity-based).
        #[test]
        fn rebuild_is_stable(gang in 1u32..1024, worker in 1u32..64, unroll in 2u32..9) {
            let a = lud_with(gang, worker, Some(unroll));
            let b = lud_with(gang, worker, Some(unroll));
            prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        }

        /// Changing any distribution clause changes the fingerprint.
        #[test]
        fn clause_changes_change_the_hash(gang in 1u32..1024, worker in 1u32..64) {
            let base = lud_with(gang, worker, None);
            prop_assert_ne!(
                fingerprint(&base),
                fingerprint(&lud_with(gang + 1, worker, None)),
                "gang clause must be part of the hash"
            );
            prop_assert_ne!(
                fingerprint(&base),
                fingerprint(&lud_with(gang, worker + 1, None)),
                "worker clause must be part of the hash"
            );
            prop_assert_ne!(
                fingerprint(&base),
                fingerprint(&lud_with(gang, worker, Some(4))),
                "unroll clause must be part of the hash"
            );
        }

        /// Distinct kernels never collide, whatever the clauses.
        #[test]
        fn distinct_programs_do_not_collide(gang in 1u32..1024, worker in 1u32..64) {
            let a = lud_with(gang, worker, None);
            let b = gaussian::program(&VariantCfg::thread_dist(gang, worker));
            let c = backprop::program(&VariantCfg::independent());
            prop_assert_ne!(fingerprint(&a), fingerprint(&b));
            prop_assert_ne!(fingerprint(&a), fingerprint(&c));
            prop_assert_ne!(fingerprint(&b), fingerprint(&c));
        }

        /// Cache keys see through clause differences end-to-end: two
        /// programs differing only in one clause occupy two entries.
        #[test]
        fn cache_separates_random_clause_pairs(gang in 1u32..512, worker in 1u32..32) {
            let cache = ArtifactCache::new();
            let o = CompileOptions::gpu();
            cache.compile(CompilerId::Caps, &lud_with(gang, worker, None), &o).unwrap();
            cache.compile(CompilerId::Caps, &lud_with(gang, worker + 1, None), &o).unwrap();
            cache.compile(CompilerId::Caps, &lud_with(gang, worker, None), &o).unwrap();
            prop_assert_eq!(cache.misses(), 2);
            prop_assert_eq!(cache.hits(), 1);
        }
    }
}
