//! Previously hand-found bugs, pinned as conformance regressions.
//!
//! Each of these started life as a real defect caught during earlier
//! PRs. The IR-expressible ones live in the conformance corpus and are
//! replayed through the full differential matrix here via the facade;
//! the one numeric guard that is not an IR program (`PprEntry::ppr`)
//! is pinned directly.

use paccport::conformance::corpus::corpus;
use paccport::conformance::{assert_conforms, check_case, Outcome};
use paccport::core::PprEntry;

/// The whole pinned corpus must stay green through every oracle /
/// simulator / compiler / transform leg. Covers, among others:
/// * `lone_store` — the dependence analyzer once paired a lone store
///   with itself and flagged a self-conflict;
/// * `if_scope` — the validator once leaked `let` bindings out of
///   `if` arms instead of save/restoring block scope.
#[test]
fn pinned_corpus_conforms_via_facade() {
    for (name, case) in corpus() {
        println!("corpus case `{name}`");
        assert_conforms(&case);
    }
}

/// The CAPS MIC reduction miscompilation is *modeled*, so the corpus
/// dot-product must diverge on exactly that leg — and the divergence
/// must be classified as expected, never as a mismatch.
#[test]
fn caps_mic_reduction_is_expected_divergence_not_mismatch() {
    let (_, case) = corpus()
        .into_iter()
        .find(|(n, _)| *n == "caps_mic_reduction")
        .expect("corpus has the CAPS MIC reduction case");
    let legs = check_case(&case);
    let mic = legs
        .iter()
        .find(|l| l.label == "caps/5110P")
        .expect("matrix includes caps/5110P");
    assert_eq!(
        mic.outcome,
        Outcome::ExpectedDivergence,
        "the modeled CAPS MIC reduction bug must fire as expected divergence"
    );
    assert!(
        !legs
            .iter()
            .any(|l| matches!(l.outcome, Outcome::Mismatch { .. })),
        "no leg may report a genuine mismatch: {legs:?}"
    );
}

/// `PprEntry::ppr` (Eq. 1) once divided blindly: a zero or non-finite
/// GPU timing injected `inf`/garbage ratios into Fig.-16 reports. The
/// guard must yield NaN — which every comparison predicate rejects —
/// for all degenerate inputs, and stay exact for valid ones.
#[test]
fn ppr_nan_guard_regression() {
    let entry = |gpu: f64, mic: f64| PprEntry {
        benchmark: "lud".into(),
        version: "OpenACC (CAPS)".into(),
        gpu_seconds: gpu,
        mic_seconds: mic,
    };
    assert_eq!(entry(2.0, 5.0).ppr(), 2.5);
    for (gpu, mic) in [
        (0.0, 5.0),
        (-1.0, 5.0),
        (f64::NAN, 5.0),
        (f64::INFINITY, 5.0),
        (2.0, 0.0),
        (2.0, -3.0),
        (2.0, f64::NAN),
        (2.0, f64::INFINITY),
    ] {
        let e = entry(gpu, mic);
        assert!(!e.is_valid(), "({gpu}, {mic}) must be invalid");
        assert!(
            e.ppr().is_nan(),
            "({gpu}, {mic}) must yield NaN, got {}",
            e.ppr()
        );
    }
}
