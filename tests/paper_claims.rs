//! End-to-end assertions of the paper's headline claims, regenerated
//! through the full pipeline (IR → compile → simulate) at quick scale.
//!
//! Each test names the claim and the section/figure it comes from, so
//! a failure pinpoints which part of the reproduction drifted.

use paccport::core::experiments as exp;
use paccport::core::study::Scale;

fn scale() -> Scale {
    Scale::quick()
}

/// Section V-A1 / Fig. 3: "the baseline version compiled by CAPS …
/// is about 1000 times slower than the same version compiled by PGI
/// on GPU", and thread distribution bridges the gap.
#[test]
fn claim_lud_baseline_gap_and_fix() {
    let f = exp::fig3_lud(&scale());
    let caps_base = f.get("CAPS-CUDA-K40", "Base").unwrap().seconds;
    let pgi_base = f.get("PGI-K40", "Base").unwrap().seconds;
    let ratio = caps_base / pgi_base;
    assert!(
        (50.0..50000.0).contains(&ratio),
        "orders-of-magnitude gap expected, got {ratio:.0}x"
    );
    let caps_dist = f.get("CAPS-CUDA-K40", "ThreadDist").unwrap().seconds;
    assert!(
        caps_dist < pgi_base * 3.0,
        "gang mode must bridge the gap ({caps_dist} vs {pgi_base})"
    );
}

/// Fig. 3: "Neither the unrolling loops for both CAPS and PGI nor the
/// tiling for CAPS improves the performance."
#[test]
fn claim_lud_unroll_and_tile_do_not_help() {
    let f = exp::fig3_lud(&scale());
    let dist = f.get("CAPS-CUDA-K40", "ThreadDist").unwrap().seconds;
    for v in ["Unroll", "Tile"] {
        let t = f.get("CAPS-CUDA-K40", v).unwrap().seconds;
        assert!(
            t > dist * 0.7,
            "{v} must not improve on ThreadDist ({t} vs {dist})"
        );
    }
}

/// Section V-A2 / Fig. 4: the best GPU distribution has worker 16 and
/// gang ≥ 128; the best MIC distribution is (240, 1); the portable
/// pick is worker 16 with a large gang.
#[test]
fn claim_fig4_optima() {
    // A paper-sized matrix is needed for the memory-bound valley.
    let mut s = scale();
    s.lud_n = 2048;
    let maps = exp::fig4_heatmaps(&s);
    assert_eq!(maps.len(), 3);
    let (gg, gw, _) = maps[0].best(); // CAPS-K40
    assert!(gw <= 32, "GPU worker optimum small, got {gw}");
    assert!(gg >= 64, "GPU gang optimum large, got {gg}");
    let (mg, mw, _) = maps[2].best(); // CAPS-MIC
    assert_eq!((mg, mw), (240, 1), "MIC optimum is (240, 1)");
    let (pg, pw) = paccport::core::select_portable_distribution(&maps[0], &maps[2]);
    assert!(
        pg >= 128 && (8..=32).contains(&pw),
        "portable pick ({pg},{pw})"
    );
}

/// Section V-A3 / Fig. 6: PGI generates more PTX than CAPS; thread
/// distribution changes no PTX.
#[test]
fn claim_fig6_ptx_composition() {
    let f = exp::fig6_lud_ptx(&scale());
    let caps = |v: &str| {
        f.bars
            .iter()
            .find(|b| b.label == format!("CAPS-CUDA-K40 / {v}"))
            .unwrap()
    };
    let pgi = |v: &str| {
        f.bars
            .iter()
            .find(|b| b.label == format!("PGI-K40 / {v}"))
            .unwrap()
    };
    assert!(pgi("Base").counts.total() > caps("Base").counts.total());
    assert_eq!(caps("Base").counts, caps("ThreadDist").counts);
    assert_eq!(pgi("Base").counts, pgi("ThreadDist").counts);
    // CAPS unroll really grows the PTX; CAPS tile silently does not.
    assert!(caps("Unroll").counts.total() > caps("ThreadDist").counts.total());
    assert_eq!(caps("Tile").counts, caps("ThreadDist").counts);
    // PGI -Munroll leaves LUD unchanged (accumulation loop).
    assert_eq!(pgi("Unroll").counts, pgi("Base").counts);
}

/// Section V-B / Fig. 7: independent transforms GE on both devices;
/// the CAPS OpenACC version with exact ranges beats the constant-range
/// OpenCL baseline; the Fig.-8 advanced NDRange is the fastest.
#[test]
fn claim_ge_fig7() {
    let f = exp::fig7_ge(&scale());
    let caps_base = f.get("CAPS-CUDA-K40", "Base").unwrap().seconds;
    let caps_indep = f.get("CAPS-CUDA-K40", "Indep").unwrap().seconds;
    assert!(caps_indep < caps_base / 20.0);
    let ocl_base = f.get("OCL-K40", "OCL-Base").unwrap().seconds;
    let ocl_adv = f.get("OCL-K40", "OCL-Advanced").unwrap().seconds;
    assert!(
        caps_indep < ocl_base,
        "optimized OpenACC ({caps_indep}) must beat constant-range OpenCL ({ocl_base})"
    );
    assert!(ocl_adv < ocl_base, "Fig. 8 advanced config wins");
    // Baseline "has the similar performance on GPU and MIC".
    let mic_base = f.get("CAPS-OCL-5110P", "Base").unwrap().seconds;
    let r = caps_base / mic_base;
    assert!((0.2..20.0).contains(&r), "similar order, got {r}");
}

/// Fig. 9: baseline launches 3 kernels per outer iteration (3N), the
/// reorganized/OpenCL structure launches 2 (2N); PGI's baseline
/// thread row is 1x1, becoming 128x1 with independent.
#[test]
fn claim_ge_fig9_launches_and_threads() {
    let f = exp::fig9_ge_ptx(&scale());
    let bar = |label: &str| f.bars.iter().find(|b| b.label == label).unwrap();
    let n = scale().ge_n as u64 - 1;
    assert_eq!(bar("CAPS-CUDA-K40 / Base").launches, 3 * n);
    assert_eq!(bar("CAPS-CUDA-K40 / Reorg").launches, 2 * n);
    assert_eq!(bar("OCL-K40 / Base").launches, 2 * n);
    assert_eq!(bar("PGI-K40 / Base").config, "1x1");
    assert_eq!(bar("PGI-K40 / Indep").config, "128x1");
    assert_eq!(bar("CAPS-CUDA-K40 / Indep").config, "32x4");
    // PGI -Munroll nearly doubles arithmetic (Section V-B3).
    let a_base = bar("PGI-K40 / Reorg")
        .counts
        .get(paccport::ptx::Category::Arithmetic);
    let a_unroll = bar("PGI-K40 / Unroll")
        .counts
        .get(paccport::ptx::Category::Arithmetic);
    assert!(a_unroll as f64 / a_base as f64 > 1.5);
    // CAPS unroll is a fake success.
    assert_eq!(
        bar("CAPS-CUDA-K40 / Reorg").counts,
        bar("CAPS-CUDA-K40 / Unroll").counts
    );
}

/// Section V-C / Fig. 10: the CAPS baseline runs faster on MIC than
/// GPU; independent gives large speedups on both.
#[test]
fn claim_bfs_fig10() {
    let f = exp::fig10_bfs(&scale());
    let caps_gpu_base = f.get("CAPS-CUDA-K40", "Base").unwrap();
    let caps_mic_base = f.get("CAPS-OCL-5110P", "Base").unwrap();
    assert!(
        caps_mic_base.seconds < caps_gpu_base.seconds,
        "sequential BFS faster on MIC"
    );
    let caps_gpu_indep = f.get("CAPS-CUDA-K40", "Indep").unwrap();
    let caps_mic_indep = f.get("CAPS-OCL-5110P", "Indep").unwrap();
    let sp_gpu = caps_gpu_base.kernel_seconds / caps_gpu_indep.kernel_seconds;
    let sp_mic = caps_mic_base.kernel_seconds / caps_mic_indep.kernel_seconds;
    assert!(sp_gpu > 50.0, "GPU speedup {sp_gpu}");
    assert!(sp_mic > 5.0, "MIC speedup {sp_mic}");
    assert!(
        sp_gpu > sp_mic,
        "GPU gains more ({sp_gpu:.0}x vs {sp_mic:.0}x), as in the paper's 400x vs 30x"
    );
}

/// Section V-C1 / Fig. 11 / Table VII: PGI never offloads BFS (tiny
/// PTX stubs, host execution) and transfers 4 times in total; CAPS
/// transfers 3 times per frontier iteration.
#[test]
fn claim_bfs_pgi_discovery_and_tab7() {
    let f = exp::fig11_bfs_ptx(&scale());
    let pgi = f
        .bars
        .iter()
        .find(|b| b.label == "PGI-K40 / Indep")
        .unwrap();
    let caps = f
        .bars
        .iter()
        .find(|b| b.label == "CAPS-CUDA-K40 / Indep")
        .unwrap();
    assert!(
        pgi.counts.total() < caps.counts.total() / 4,
        "PGI's stub PTX is tiny ({} vs {})",
        pgi.counts.total(),
        caps.counts.total()
    );
    // CAPS generates fewer global-memory instructions than OpenCL.
    let ocl = f.bars.iter().find(|b| b.label == "OCL-K40 / OCL").unwrap();
    assert!(
        caps.counts.get(paccport::ptx::Category::GlobalMemory)
            < ocl.counts.get(paccport::ptx::Category::GlobalMemory),
        "CAPS CSE reduces global instructions"
    );

    let rows = exp::tab7_bfs(&scale());
    assert_eq!(rows[0].compiler, "CAPS");
    assert!(rows[0].data_transfers.contains("3 times in each iteration"));
    assert_eq!(rows[0].with_independent_mode, "Parallel mode");
    assert_eq!(rows[1].compiler, "PGI");
    assert!(rows[1].data_transfers.contains("4 times in total"));
    assert_eq!(rows[1].with_independent_mode, "Host (sequential)");
}

/// Section V-D / Figs. 12-14: BP's reduction emits shared memory for
/// both compilers; CAPS gains nothing; unroll after reduction changes
/// no PTX; the OpenCL version is fastest on the GPU.
#[test]
fn claim_bp_reduction_story() {
    let f = exp::fig14_bp_ptx(&scale());
    let bar = |label: &str| f.bars.iter().find(|b| b.label == label).unwrap();
    use paccport::ptx::Category;
    for series in ["CAPS-CUDA-K40", "PGI-K40"] {
        assert_eq!(
            bar(&format!("{series} / Indep"))
                .counts
                .get(Category::SharedMemory),
            0
        );
        assert!(
            bar(&format!("{series} / Reduction"))
                .counts
                .get(Category::SharedMemory)
                > 0,
            "{series} reduction must emit st.shared/ld.shared"
        );
        assert_eq!(
            bar(&format!("{series} / Reduction")).counts,
            bar(&format!("{series} / Unroll")).counts,
            "{series}: unroll after reduction changes nothing"
        );
    }
    // PGI ignores independent (Base and Indep bars identical).
    assert_eq!(bar("PGI-K40 / Base").counts, bar("PGI-K40 / Indep").counts);

    let e = exp::fig12_bp(&scale());
    let ocl = e.get("OCL-K40", "OCL").unwrap().seconds;
    let acc = e.get("CAPS-CUDA-K40", "Indep").unwrap().seconds;
    assert!(
        ocl < acc,
        "OpenCL (shared memory) beats OpenACC: {ocl} vs {acc}"
    );
    let caps_red = e.get("CAPS-CUDA-K40", "Reduction").unwrap().kernel_seconds;
    let caps_ind = e.get("CAPS-CUDA-K40", "Indep").unwrap().kernel_seconds;
    assert!(caps_red > caps_ind * 0.8, "CAPS reduction gives no speedup");
}

/// Section V-E / Fig. 15: optimization transforms Hydro on both
/// devices; ICC beats GCC; optimized GPU beats optimized MIC.
#[test]
fn claim_hydro_fig15() {
    let f = exp::fig15_hydro(&scale());
    let bg = f.get("ACC-K40 (GCC)", "Base").unwrap().seconds;
    let og = f.get("ACC-K40 (GCC)", "Indep+Dist").unwrap().seconds;
    let om = f.get("ACC-5110P (GCC)", "Indep+Dist").unwrap().seconds;
    assert!(og < bg / 10.0);
    assert!(og < om, "optimized GPU beats optimized MIC");
    let og_icc = f.get("ACC-K40 (ICC)", "Indep+Dist").unwrap().seconds;
    assert!(og_icc < og, "Intel host compiler helps");
    let ocl = f.get("OCL-K40", "OCL").unwrap().seconds;
    assert!(ocl < bg, "OpenCL beats the unoptimized OpenACC");
}

/// Section V-F / Fig. 16: every PPR is > 1 (the K40 always wins), and
/// the optimized OpenACC versions achieve a better PPR than OpenCL in
/// some cases.
#[test]
fn claim_fig16_ppr() {
    let rows = exp::fig16_ppr(&scale());
    assert_eq!(rows.len(), 4);
    for c in &rows {
        assert!(
            c.both_favor_gpu(),
            "{}: OpenACC {:.2}, OpenCL {:.2}",
            c.openacc.benchmark,
            c.openacc.ppr(),
            c.opencl.ppr()
        );
    }
    let better = rows.iter().filter(|c| c.openacc_is_more_portable()).count();
    assert!(
        better >= 2,
        "OpenACC more portable in some cases ({better}/4)"
    );
}

/// Table II and Fig. 1, as data.
#[test]
fn claim_tab2_fig1() {
    assert_eq!(exp::tab2_dependence_demo(), (true, true));
    let (cuda_shared, acc_shared) = exp::fig1_tiling_shared_ops();
    assert!(cuda_shared > 0);
    assert_eq!(acc_shared, 0, "OpenACC tiling never touches shared memory");
}
