//! One test per modeled compiler quirk: toggling the quirk off must
//! make its specific paper observation disappear (and nothing else —
//! the full suite still passes with every quirk on). This is the
//! "quirks as data" design decision of DESIGN.md §4, verified.

use paccport::compilers::{
    compile, Backend, CompileOptions, CompilerId, Correctness, DistSpec, ExecStrategy, QuirkSet,
};
use paccport::devsim::{run, RunConfig};
use paccport::hydro::{self, HydroVariant};
use paccport::kernels::{backprop, bfs, gaussian, lud, VariantCfg};
use paccport::ptx::Category;

fn gpu_with(f: impl FnOnce(&mut QuirkSet)) -> CompileOptions {
    let mut o = CompileOptions::gpu();
    f(&mut o.quirks);
    o
}

fn mic_with(f: impl FnOnce(&mut QuirkSet)) -> CompileOptions {
    let mut o = CompileOptions::mic();
    f(&mut o.quirks);
    o
}

/// `caps_default_gang1`: off ⇒ the LUD baseline runs parallel at the
/// advertised 192×256 and the Fig.-3 gap evaporates.
#[test]
fn quirk_caps_default_gang1() {
    let p = lud::program(&VariantCfg::baseline());
    let on = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    assert_eq!(
        on.plan("lud_row").unwrap().exec,
        ExecStrategy::DeviceSequential
    );
    let off = compile(
        CompilerId::Caps,
        &p,
        &gpu_with(|q| q.caps_default_gang1 = false),
    )
    .unwrap();
    let plan = off.plan("lud_row").unwrap();
    assert_eq!(plan.exec, ExecStrategy::DeviceParallel);
    assert_eq!(
        plan.dist,
        DistSpec::GangWorker {
            gang: 192,
            worker: 256
        }
    );
}

/// `caps_fake_unroll_success`: off ⇒ the log admits the unroll did not
/// apply on GE's flat kernels, instead of lying.
#[test]
fn quirk_caps_fake_unroll_success() {
    let mut vc = VariantCfg::independent();
    vc.reorganized = true;
    vc.unroll = Some(8);
    let p = gaussian::program(&vc);
    let lying = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    assert!(lying
        .diagnostics
        .iter()
        .any(|d| d.message.contains("unrolled by 8 and jammed")));
    let honest = compile(
        CompilerId::Caps,
        &p,
        &gpu_with(|q| q.caps_fake_unroll_success = false),
    )
    .unwrap();
    assert!(honest
        .diagnostics
        .iter()
        .any(|d| d.message.contains("not applicable")));
    // Either way the PTX is the same (nothing was unrollable).
    assert_eq!(lying.module.counts(), honest.module.counts());
}

/// `caps_cuda_unroll_fails_on_accum`: off ⇒ the CUDA back end unrolls
/// the reduction body like the OpenCL back end did, growing the PTX.
#[test]
fn quirk_caps_cuda_unroll_on_reduction() {
    let mut vc = VariantCfg::independent();
    vc.reduction = true;
    vc.unroll = Some(4);
    let p = backprop::program(&vc);
    let on = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    let off = compile(
        CompilerId::Caps,
        &p,
        &gpu_with(|q| q.caps_cuda_unroll_fails_on_accum = false),
    )
    .unwrap();
    assert!(
        off.module.kernel("layer_forward_kernel").unwrap().len()
            > on.module.kernel("layer_forward_kernel").unwrap().len(),
        "unrolled grouped body must be larger"
    );
    // The OpenCL back end already unrolls with the quirk on.
    let mut ocl = CompileOptions::gpu();
    ocl.backend = Backend::OpenCl;
    let via_ocl = compile(CompilerId::Caps, &p, &ocl).unwrap();
    assert_eq!(
        via_ocl.module.kernel("layer_forward_kernel").unwrap().len(),
        off.module.kernel("layer_forward_kernel").unwrap().len()
    );
}

/// `caps_tile_silent_on_nested`: off ⇒ LUD's tile(32) really
/// strip-mines (rank 1 → 2, PTX changes) instead of silently no-oping.
#[test]
fn quirk_caps_tile_silent() {
    let mut vc = VariantCfg::thread_dist(256, 16);
    vc.tile = Some(32);
    let p = lud::program(&vc);
    let on = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    assert_eq!(on.program.kernel("lud_row").unwrap().rank(), 1);
    let off = compile(
        CompilerId::Caps,
        &p,
        &gpu_with(|q| q.caps_tile_silent_on_nested = false),
    )
    .unwrap();
    assert_eq!(off.program.kernel("lud_row").unwrap().rank(), 2);
    assert_ne!(off.module.counts(), on.module.counts());
    // Still no shared memory — that is inherent to OpenACC tiling,
    // not a quirk (Fig. 1).
    assert_eq!(off.module.counts().get(Category::SharedMemory), 0);
}

/// `caps_reduction_perf_bug`: off ⇒ the GPU reduction actually helps.
#[test]
fn quirk_caps_reduction_perf() {
    let mut vc = VariantCfg::independent();
    vc.reduction = true;
    let p = backprop::program(&vc);
    let rc = RunConfig::timing(
        vec![("n_in".into(), 2_000_000.0), ("n_hid".into(), 16.0)],
        1,
    );
    let t = |o: &CompileOptions| {
        run(&compile(CompilerId::Caps, &p, o).unwrap(), &rc)
            .unwrap()
            .kernel_time
    };
    let buggy = t(&CompileOptions::gpu());
    let fixed = t(&gpu_with(|q| q.caps_reduction_perf_bug = false));
    assert!(
        fixed < buggy / 10.0,
        "without the bug the tree reduction flies: {fixed} vs {buggy}"
    );
}

/// `caps_reduction_wrong_on_mic`: off ⇒ the MIC reduction validates.
#[test]
fn quirk_caps_reduction_mic_correctness() {
    let mut vc = VariantCfg::independent();
    vc.reduction = true;
    let p = backprop::program(&vc);
    let on = compile(CompilerId::Caps, &p, &CompileOptions::mic()).unwrap();
    assert!(matches!(
        on.plan("layer_forward").unwrap().correctness,
        Correctness::Wrong { .. }
    ));
    let off = compile(
        CompilerId::Caps,
        &p,
        &mic_with(|q| q.caps_reduction_wrong_on_mic = false),
    )
    .unwrap();
    assert_eq!(
        off.plan("layer_forward").unwrap().correctness,
        Correctness::Correct
    );
}

/// `caps_retransfer_in_dynamic_loops`: off ⇒ BFS drops to the two
/// explicit stop-flag updates per frontier iteration.
#[test]
fn quirk_caps_retransfer() {
    let g = bfs::Graph::random(100, 3, 13);
    let p = bfs::program(&VariantCfg::independent());
    let mut mask = vec![0i32; g.n];
    mask[0] = 1;
    let mk_cfg = || {
        RunConfig::functional(vec![
            ("n".into(), g.n as f64),
            ("nedges".into(), g.edges.len() as f64),
            ("source".into(), 0.0),
        ])
        .with_input("nodes", paccport::devsim::Buffer::I32(g.nodes.clone()))
        .with_input("edges", paccport::devsim::Buffer::I32(g.edges.clone()))
        .with_input("mask", paccport::devsim::Buffer::I32(mask.clone()))
    };
    let on = run(
        &compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap(),
        &mk_cfg(),
    )
    .unwrap();
    assert!((on.transfers_per_while_iter - 3.0).abs() < 0.5);
    let off = run(
        &compile(
            CompilerId::Caps,
            &p,
            &gpu_with(|q| q.caps_retransfer_in_dynamic_loops = false),
        )
        .unwrap(),
        &mk_cfg(),
    )
    .unwrap();
    assert!((off.transfers_per_while_iter - 2.0).abs() < 0.5);
}

/// `pgi_conservative_indirection`: off ⇒ PGI offloads BFS after all.
#[test]
fn quirk_pgi_conservative_indirection() {
    let p = bfs::program(&VariantCfg::independent());
    let on = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap();
    assert_eq!(
        on.plan("bfs_kernel1").unwrap().exec,
        ExecStrategy::HostSequential
    );
    let off = compile(
        CompilerId::Pgi,
        &p,
        &gpu_with(|q| q.pgi_conservative_indirection = false),
    )
    .unwrap();
    assert_eq!(
        off.plan("bfs_kernel1").unwrap().exec,
        ExecStrategy::DeviceParallel
    );
}

/// `pgi_locks_distribution`: off ⇒ explicit clauses are honoured even
/// with `independent` present.
#[test]
fn quirk_pgi_locks_distribution() {
    // LUD's loops would refuse independent; use GE's fan1 shape via a
    // direct program: reuse gaussian with forced clauses.
    let mut p = gaussian::program(&VariantCfg::independent());
    p.map_kernel("fan1", |k| {
        k.loops[0].clauses.gang = Some(300);
        k.loops[0].clauses.worker = Some(8);
    });
    let on = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap();
    assert_eq!(on.plan("fan1").unwrap().config_label, "128x1");
    let off = compile(
        CompilerId::Pgi,
        &p,
        &gpu_with(|q| q.pgi_locks_distribution = false),
    )
    .unwrap();
    assert_eq!(off.plan("fan1").unwrap().config_label, "300x8");
}

/// `pgi_pointer_alias_sensitivity`: off ⇒ Hydro compiles under PGI
/// (and runs on the GPU — it has no MIC target either way).
#[test]
fn quirk_pgi_pointer_alias() {
    let p = hydro::program(HydroVariant::Optimized);
    assert!(compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).is_err());
    let c = compile(
        CompilerId::Pgi,
        &p,
        &gpu_with(|q| q.pgi_pointer_alias_sensitivity = false),
    )
    .unwrap();
    let r = run(&c, &hydro::sod_run_config(32, 8, 5)).unwrap();
    let v = hydro::validate_against_reference(&r, &c, 32, 8, 5, 1e-4);
    assert!(v.passed, "a fixed PGI runs Hydro correctly: {}", v.detail);
}
