//! End-to-end soundness of the static dependence analysis against the
//! device simulator's dynamic race detector: every benchmark variant ×
//! target of the evaluation runs functionally under shadow access
//! logging, and the detector's findings must agree with
//! `analyze_loop`'s verdicts (what `reproduce --check` automates).

use paccport::core::experiments::{check_soundness, soundness_cells};
use paccport::core::report::render_soundness;
use paccport::core::study::Scale;

#[test]
fn benchmark_matrix_upholds_the_soundness_invariant() {
    let rep = check_soundness(&Scale::smoke());

    // Every cell compiled and ran.
    assert!(rep.failures.is_empty(), "{:?}", rep.failures);
    assert_eq!(rep.cells, soundness_cells(&Scale::smoke()).len());
    assert!(
        rep.accesses > 100_000,
        "the detector must actually have watched the runs ({} accesses)",
        rep.accesses
    );

    // Static-independent => race-free, on every benchmark input.
    assert_eq!(
        rep.races_on_proven_independent(),
        0,
        "{:?}",
        rep.violations()
    );

    // Detector race => static must not have proven independence.
    for row in &rep.rows {
        if row.races > 0 && !row.lost_update_demo {
            assert!(
                !row.proven_independent,
                "race on a proven-independent loop: {row:?}"
            );
        }
    }
    assert!(rep.all_consistent(), "{:?}", rep.violations());

    // The matrix must include loops on both sides of the invariant:
    // proven-independent race-free ones, and refused ones where the
    // detector confirms a real conflict (BFS's stop flag).
    assert!(rep
        .rows
        .iter()
        .any(|r| r.proven_independent && r.races == 0));
    assert!(rep
        .rows
        .iter()
        .any(|r| !r.proven_independent && r.races > 0 && !r.lost_update_demo));

    // The BFS stop-flag store — the lone loop-invariant write the
    // detector exposed — must be refused statically AND flagged
    // dynamically, in agreement.
    let k2 = rep
        .rows
        .iter()
        .find(|r| r.kernel == "bfs_kernel2" && r.races > 0)
        .expect("bfs_kernel2 must show its stop-flag conflict");
    assert!(!k2.proven_independent);
    assert!(k2.verdict.contains("carried dependence"), "{}", k2.verdict);
    assert!(
        k2.race_note.contains("race on `stop`[0]"),
        "{}",
        k2.race_note
    );
}

#[test]
fn caps_lost_update_on_mic_is_caught_as_a_write_write_race() {
    let rep = check_soundness(&Scale::smoke());
    assert!(rep.lost_update_caught());

    let demos: Vec<_> = rep.rows.iter().filter(|r| r.lost_update_demo).collect();
    // Both CAPS-on-MIC reduction plans (Reduction, and Unroll on top
    // of it) are known-wrong and must be demonstrated.
    assert!(demos.len() >= 2, "{demos:?}");
    for d in &demos {
        assert!(d.miscompiled);
        assert!(d.consistent);
        assert_eq!(d.series, "CAPS-OCL-5110P");
        // The diagnostic names the reduction array and two distinct
        // iterations.
        assert!(d.race_note.contains("write-write race"), "{}", d.race_note);
        assert!(d.race_note.contains("`hidden`[0]"), "{}", d.race_note);
        assert!(
            d.race_note.contains("iteration (0)") && d.race_note.contains("iteration (1)"),
            "{}",
            d.race_note
        );
    }
    // No GPU plan is wrong: every demo row is a MIC cell.
    assert!(rep
        .rows
        .iter()
        .filter(|r| r.miscompiled)
        .all(|r| r.series == "CAPS-OCL-5110P"));

    // The rendered table reports the verdict the exit code is based on.
    let table = render_soundness(&rep);
    assert!(table.contains("soundness invariant holds"), "{table}");
    assert!(table.contains("write-write race on `hidden`[0]"), "{table}");
    assert!(!table.contains("VIOLATION"), "{table}");
}
