//! Property-based tests over the core invariants of the stack:
//! transform semantics preservation, dependence-analysis soundness,
//! launch-shape coverage, and evaluator consistency.

use paccport::compilers::transforms::{
    reduction_to_grouped, serialize_inner_loops, strip_mine, unroll_inner_loops, VarAlloc,
};
use paccport::compilers::DistSpec;
use paccport::devsim::{exec_kernel, fresh_vars, Buffer, KernelFidelity, V};
use paccport::ir::{
    analyze_block, assign, for_, ld, let_, st, Block, Expr, HostStmt, Intent, Kernel, KindEnv,
    ParallelLoop, Program, ProgramBuilder, Scalar, E,
};
use proptest::prelude::*;

// -------------------------------------------------------------------
// Helpers
// -------------------------------------------------------------------

/// An accumulation kernel `out[j] = Σ_{k<m} in[k] * (j+1)` over
/// `j < n` — the shape all four loop transforms operate on.
fn accum_program() -> (Program, Kernel) {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let m = b.iparam("m");
    let input = b.array("in", Scalar::F32, m, Intent::In);
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let j = b.var("j");
    let kv = b.var("k");
    let s = b.var("s");
    let k = Kernel::simple(
        "acc",
        vec![ParallelLoop::new(j, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(s, Scalar::F32, 0.0),
            for_(
                kv,
                0i64,
                E::from(m),
                vec![assign(
                    s,
                    E::from(s) + ld(input, kv) * (E::from(j).cast(Scalar::F32) + 1.0),
                )],
            ),
            st(out, j, E::from(s)),
        ]),
    );
    let p = b.finish(vec![HostStmt::Launch(k.clone())]);
    (p, k)
}

/// Flat kernel `a[i] = a[i] * 2 + i` over `i < n`.
fn flat_program() -> (Program, Kernel) {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let k = Kernel::simple(
        "flat",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![st(
            a,
            i,
            ld(a, i) * 2.0 + E::from(i).cast(Scalar::F32),
        )]),
    );
    let p = b.finish(vec![HostStmt::Launch(k.clone())]);
    (p, k)
}

fn run_kernel(p: &Program, k: &Kernel, params: &[V], bufs: &mut [Buffer]) {
    let mut vars = fresh_vars(p);
    exec_kernel(p, params, k, &mut vars, bufs, KernelFidelity::Exact);
}

// -------------------------------------------------------------------
// Transform semantics preservation
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unrolling an inner loop by any factor preserves results exactly
    /// (same f32 operation order per accumulator chain).
    #[test]
    fn unroll_preserves_semantics(
        n in 1usize..24,
        m in 0usize..40,
        factor in 2u32..9,
        seed in 0u64..1000,
    ) {
        let (p, k) = accum_program();
        let input = paccport::kernels::random_vec(m, seed);
        let params = [V::I(n as i64), V::I(m as i64)];

        let mut bufs_a = vec![Buffer::F32(input.clone()), Buffer::zeroed(Scalar::F32, n)];
        run_kernel(&p, &k, &params, &mut bufs_a);

        let mut k2 = k.clone();
        prop_assert!(unroll_inner_loops(&mut k2, factor, &KindEnv::for_program(&p)));
        let mut bufs_b = vec![Buffer::F32(input), Buffer::zeroed(Scalar::F32, n)];
        run_kernel(&p, &k2, &params, &mut bufs_b);

        // Unrolling re-associates nothing (single accumulator chain in
        // program order), so results are close to bitwise.
        for (x, y) in bufs_a[1].as_f32().iter().zip(bufs_b[1].as_f32()) {
            prop_assert!((x - y).abs() <= 1e-5 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    /// Strip-mining (CAPS tiling) preserves results for every tile
    /// size, including non-dividing ones (the guard must be right).
    #[test]
    fn strip_mine_preserves_semantics(
        n in 1usize..100,
        tile in 1u32..40,
        seed in 0u64..1000,
    ) {
        let (mut p, k) = flat_program();
        let input = paccport::kernels::random_vec(n, seed);
        let params = [V::I(n as i64)];

        let mut bufs_a = vec![Buffer::F32(input.clone())];
        run_kernel(&p, &k, &params, &mut bufs_a);

        let mut k2 = k.clone();
        let kinds = KindEnv::for_program(&p);
        let mut names = std::mem::take(&mut p.var_names);
        {
            let mut va = VarAlloc::new(&mut names);
            prop_assert!(strip_mine(&mut k2, tile, &mut va, &kinds));
        }
        p.var_names = names;
        let mut bufs_b = vec![Buffer::F32(input)];
        run_kernel(&p, &k2, &params, &mut bufs_b);

        prop_assert_eq!(bufs_a[0].as_f32(), bufs_b[0].as_f32());
    }

    /// The shared-memory tree reduction computes the same sums as the
    /// sequential loop (up to f32 reassociation) for every
    /// power-of-two group size.
    #[test]
    fn reduction_tree_preserves_sums(
        n in 1usize..8,
        m in 0usize..200,
        log_g in 1u32..8,
        seed in 0u64..1000,
    ) {
        let g = 1u32 << log_g;
        let (mut p, k) = accum_program();
        let input = paccport::kernels::random_vec(m, seed);
        let params = [V::I(n as i64), V::I(m as i64)];

        let mut bufs_a = vec![Buffer::F32(input.clone()), Buffer::zeroed(Scalar::F32, n)];
        run_kernel(&p, &k, &params, &mut bufs_a);

        let mut k2 = k.clone();
        let mut names = std::mem::take(&mut p.var_names);
        {
            let mut va = VarAlloc::new(&mut names);
            prop_assert!(reduction_to_grouped(&mut k2, g, &mut va));
        }
        p.var_names = names;
        let mut bufs_b = vec![Buffer::F32(input), Buffer::zeroed(Scalar::F32, n)];
        run_kernel(&p, &k2, &params, &mut bufs_b);

        // Tree reassociates the f32 sum: allow a relative tolerance.
        for (x, y) in bufs_a[1].as_f32().iter().zip(bufs_b[1].as_f32()) {
            prop_assert!(
                (x - y).abs() <= 1e-3 * (1.0 + x.abs()),
                "sequential {x} vs tree {y} (g = {g})"
            );
        }
    }

    /// PGI-style serialization of inner parallel loops is a pure
    /// scheduling change: results are identical.
    #[test]
    fn serialize_preserves_semantics(
        n in 1usize..16,
        m in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut b = ProgramBuilder::new("p");
        let np = b.iparam("n");
        let mp = b.iparam("m");
        let a = b.array("a", Scalar::F32, E::from(np) * mp, Intent::InOut);
        let i = b.var("i");
        let j = b.var("j");
        let k = Kernel::simple(
            "k2d",
            vec![
                ParallelLoop::new(i, Expr::iconst(0), Expr::param(np)),
                ParallelLoop::new(j, Expr::iconst(0), Expr::param(mp)),
            ],
            Block::new(vec![st(
                a,
                E::from(i) * mp + j,
                ld(a, E::from(i) * mp + j) + 1.0,
            )]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let input = paccport::kernels::random_vec(n * m, seed);
        let params = [V::I(n as i64), V::I(m as i64)];

        let mut bufs_a = vec![Buffer::F32(input.clone())];
        run_kernel(&p, &k, &params, &mut bufs_a);

        let mut k2 = k.clone();
        prop_assert!(serialize_inner_loops(&mut k2, 1));
        prop_assert_eq!(k2.rank(), 1);
        let mut bufs_b = vec![Buffer::F32(input)];
        run_kernel(&p, &k2, &params, &mut bufs_b);
        prop_assert_eq!(bufs_a[0].as_f32(), bufs_b[0].as_f32());
    }
}

// -------------------------------------------------------------------
// Dependence-analysis soundness
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If the analysis declares a loop independent, executing its
    /// iterations in reverse order must produce the same result.
    /// (Soundness of Step 1: a wrong `independent` would let the
    /// simulated compilers parallelize a dependent loop.)
    #[test]
    fn independent_verdicts_are_sound(
        n in 4usize..32,
        store_off in -2i64..3,
        load_off in -2i64..3,
        seed in 0u64..1000,
    ) {
        // Body: a[i + store_off] = a[i + load_off] + 1, guarded
        // in-range. (Offsets make it dependent or not.)
        let mut b = ProgramBuilder::new("p");
        let np = b.iparam("n");
        let a = b.array("a", Scalar::F32, E::from(np) + 8i64, Intent::InOut);
        let i = b.var("i");
        let body = Block::new(vec![st(
            a,
            E::from(i) + (store_off + 4),
            ld(a, E::from(i) + (load_off + 4)) + 1.0,
        )]);
        let rep = analyze_block(i, &body);
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(np))],
            body,
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);

        if rep.is_independent() {
            let input = paccport::kernels::random_vec(n + 8, seed);
            // Forward execution.
            let params = [V::I(n as i64)];
            let mut fwd = vec![Buffer::F32(input.clone())];
            run_kernel(&p, &k, &params, &mut fwd);
            // Reverse execution, by hand.
            let mut rev = vec![Buffer::F32(input)];
            let mut vars = fresh_vars(&p);
            for it in (0..n as i64).rev() {
                vars[i.0 as usize] = Some(V::I(it));
                let mut scope = paccport::devsim::interp::Scope {
                    vars: &mut vars,
                    bufs: &mut rev,
                    locals: None,
                    group: Default::default(),
                    tracker: None,
                };
                paccport::devsim::interp::exec_block(
                    &p,
                    &params,
                    k.simple_body().unwrap(),
                    &mut scope,
                );
            }
            prop_assert_eq!(
                fwd[0].as_f32(),
                rev[0].as_f32(),
                "analysis said independent (store_off {}, load_off {}) but order matters",
                store_off,
                load_off
            );
        }
    }
}

// -------------------------------------------------------------------
// Launch-shape coverage
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every parallel distribution must supply at least as many global
    /// threads (or strided slots) as needed to cover the iteration
    /// space.
    #[test]
    fn launch_dims_cover_the_extent(
        e0 in 0u64..100_000,
        e1 in 1u64..1000,
        bx in 1u32..64,
        by in 1u32..16,
    ) {
        for dist in [
            DistSpec::Gridify1D { bx, by },
            DistSpec::PgiAuto { vector: bx * by },
            DistSpec::Grouped { group_size: bx * by },
        ] {
            let dims = dist.launch_dims(&[e0, e1]);
            prop_assert!(
                dims.total_threads() >= e0,
                "{dist:?} covers only {} of {e0}",
                dims.total_threads()
            );
            // …but never by more than one block's worth.
            let tpb = dims.threads_per_block() as u64;
            prop_assert!(dims.total_threads() < e0 + tpb.max(1) * 2);
        }
        // Gridify 2D covers both dimensions.
        let d = DistSpec::Gridify2D { bx, by };
        let dims = d.launch_dims(&[e0.min(4096), e1]);
        let cover_x = dims.grid[0] as u64 * dims.block[0] as u64;
        let cover_y = dims.grid[1] as u64 * dims.block[1] as u64;
        prop_assert!(cover_x >= e1 && cover_y >= e0.min(4096));
    }

    /// Buffer round trip: set-then-get returns the stored value for
    /// every element type (with the type's own rounding).
    #[test]
    fn buffer_round_trip(v in -1e6f64..1e6, idx in 0usize..64) {
        for elem in [Scalar::F32, Scalar::F64, Scalar::I32, Scalar::U32] {
            let mut b = Buffer::zeroed(elem, 64);
            b.set(idx, v);
            let got = b.get(idx);
            match elem {
                Scalar::F64 => prop_assert_eq!(got, v),
                Scalar::F32 => prop_assert_eq!(got, v as f32 as f64),
                Scalar::I32 => prop_assert_eq!(got, v as i32 as f64),
                Scalar::U32 => prop_assert_eq!(got, v as u32 as f64),
                Scalar::Bool => unreachable!(),
            }
        }
    }
}

// -------------------------------------------------------------------
// Static counts and cost-tree invariants
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any flat kernel and any compiler style, the cost tree's
    /// static total plus the prologue equals the full kernel's static
    /// PTX count minus the trailing `ret` — the "single source of
    /// truth" guarantee between the static and dynamic analyses.
    #[test]
    fn cost_tree_matches_static_ptx(scale in 1i64..50) {
        let (p, mut k) = flat_program();
        // Perturb the body a little so trees differ across cases.
        if scale % 2 == 0 {
            if let paccport::ir::KernelBody::Simple(b) = &mut k.body {
                let a = p.array_id("a").unwrap();
                let i = k.loops[0].var;
                b.0.push(st(a, i, ld(a, i) + E::from(scale as f64)));
            }
        }
        for style in [
            paccport::compilers::LoweringStyle::caps(),
            paccport::compilers::LoweringStyle::pgi(),
        ] {
            let lk = paccport::compilers::lower_kernel(&p, &k, 1, &style);
            let mut total = lk.prologue;
            total += lk.cost.static_counts();
            let mut full = lk.ptx.counts();
            // Remove the trailing ret (Sync category).
            full.set(paccport::ptx::Category::Sync, full.get(paccport::ptx::Category::Sync) - 1);
            prop_assert_eq!(total, full);
        }
    }
}
