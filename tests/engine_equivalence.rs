//! Serial-vs-parallel equivalence: every figure generated through a
//! multi-worker [`Engine`] must render byte-identically to the serial
//! reference path. The engine only reorders *execution*; results come
//! back in submission order, and the timing model is analytic, so any
//! divergence here is a scheduling bug leaking into results.

use paccport::core::engine::Engine;
use paccport::core::{experiments as exp, report, Scale};

fn scale() -> Scale {
    Scale::quick()
}

const JOBS: usize = 8;

#[test]
fn elapsed_figures_render_identically() {
    let s = scale();
    let serial = Engine::serial();
    let parallel = Engine::new(JOBS);
    for (name, f) in [
        ("fig3", exp::fig3_lud_on as fn(&Engine, &Scale) -> _),
        ("fig7", exp::fig7_ge_on),
        ("fig10", exp::fig10_bfs_on),
        ("fig12", exp::fig12_bp_on),
        ("fig15", exp::fig15_hydro_on),
    ] {
        let a = report::render_elapsed(&f(&serial, &s));
        let b = report::render_elapsed(&f(&parallel, &s));
        assert_eq!(a, b, "{name}: parallel output diverged from serial");
    }
}

#[test]
fn ptx_figures_render_identically() {
    let s = scale();
    let serial = Engine::serial();
    let parallel = Engine::new(JOBS);
    for (name, f) in [
        ("fig6", exp::fig6_lud_ptx_on as fn(&Engine, &Scale) -> _),
        ("fig9", exp::fig9_ge_ptx_on),
        ("fig11", exp::fig11_bfs_ptx_on),
        ("fig14", exp::fig14_bp_ptx_on),
    ] {
        let a = report::render_ptx(&f(&serial, &s));
        let b = report::render_ptx(&f(&parallel, &s));
        assert_eq!(a, b, "{name}: parallel output diverged from serial");
    }
}

#[test]
fn tables_pprs_and_extensions_agree() {
    let s = scale();
    let serial = Engine::serial();
    let parallel = Engine::new(JOBS);

    assert_eq!(
        report::render_tab7(&exp::tab7_bfs_on(&serial, &s)),
        report::render_tab7(&exp::tab7_bfs_on(&parallel, &s)),
        "tab7"
    );
    assert_eq!(
        report::render_ppr(&exp::fig16_ppr_on(&serial, &s)),
        report::render_ppr(&exp::fig16_ppr_on(&parallel, &s)),
        "fig16"
    );
    assert_eq!(
        exp::ext1_autotune_vs_hand_on(&serial, &s),
        exp::ext1_autotune_vs_hand_on(&parallel, &s),
        "ext1"
    );
    assert_eq!(
        exp::ext2_data_regions_on(&serial, &s),
        exp::ext2_data_regions_on(&parallel, &s),
        "ext2"
    );
}

#[test]
fn heatmap_sweeps_agree() {
    let s = scale();
    let a = exp::fig4_heatmaps_on(&Engine::serial(), &s);
    let b = exp::fig4_heatmaps_on(&Engine::new(JOBS), &s);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.render(), y.render());
    }
}

#[test]
fn cached_listing_matches_direct_compile() {
    assert_eq!(
        exp::fig13_reduction_listing_on(&Engine::new(JOBS)),
        exp::fig13_reduction_listing(),
    );
    assert_eq!(
        exp::fig1_tiling_shared_ops_on(&Engine::new(JOBS)),
        exp::fig1_tiling_shared_ops(),
    );
}
