//! End-to-end tests of the OpenACC 2.0 features the paper's
//! Section II-B enumerates: the `device_type` clause (feature 4),
//! unstructured data regions (feature 2), and the atomics directive
//! (feature 3). (Feature 5, tiling, is exercised throughout the main
//! suite; feature 1, routine directives, is out of scope — the IR has
//! no function calls — and recorded as such in EXPERIMENTS.md.)

use paccport::compilers::{compile, CompileOptions, CompilerId, DistSpec, ExecStrategy};
use paccport::devsim::{run, Buffer, RunConfig};
use paccport::ir::{
    ld, st, AccDeviceType, Block, DeviceTypeClause, Expr, HostStmt, Intent, Kernel, ParallelLoop,
    ProgramBuilder, ReduceOp, Scalar, Stmt, E,
};

/// One source, three devices: `device_type` picks a different
/// gang/worker per target, exactly the use case the spec (and the
/// paper's Section II-B) describes.
#[test]
fn device_type_clause_selects_per_target_distributions() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
    // Base: NVIDIA-tuned; overrides for AMD (64-wide wavefronts) and
    // the MIC (one worker per core).
    lp.clauses.gang = Some(256);
    lp.clauses.worker = Some(16);
    lp.clauses.device_overrides = vec![
        DeviceTypeClause {
            device: AccDeviceType::Radeon,
            gang: Some(256),
            worker: Some(64),
            vector: None,
        },
        DeviceTypeClause {
            device: AccDeviceType::XeonPhi,
            gang: Some(240),
            worker: Some(1),
            vector: None,
        },
    ];
    let k = Kernel::simple("k", vec![lp], Block::new(vec![st(a, i, ld(a, i) + 1.0)]));
    let p = b.finish(vec![HostStmt::Launch(k)]);

    let expect = [
        (CompileOptions::gpu(), 256u32, 16u32),
        (CompileOptions::amd(), 256, 64),
        (CompileOptions::mic(), 240, 1),
    ];
    for (opts, gang, worker) in expect {
        let c = compile(CompilerId::Caps, &p, &opts).unwrap();
        assert_eq!(
            c.plan("k").unwrap().dist,
            DistSpec::GangWorker { gang, worker },
            "{:?}",
            opts.target
        );
        // And every target computes the same (correct) thing.
        let rc = RunConfig::functional(vec![("n".into(), 64.0)])
            .with_input("a", Buffer::F32(vec![1.0; 64]));
        let r = run(&c, &rc).unwrap();
        assert!(r
            .buffer(&c, "a")
            .unwrap()
            .as_f32()
            .iter()
            .all(|v| *v == 2.0));
    }
}

/// The AMD device model penalizes half-filled 64-wide wavefronts, so
/// the `device_type` override genuinely matters for performance.
#[test]
fn amd_wavefronts_reward_the_radeon_override() {
    let spec = paccport::devsim::amd_firepro();
    let d16 = DistSpec::GangWorker {
        gang: 256,
        worker: 16,
    }
    .launch_dims(&[1 << 20]);
    let d64 = DistSpec::GangWorker {
        gang: 256,
        worker: 64,
    }
    .launch_dims(&[1 << 20]);
    let e16 = paccport::devsim::warp_efficiency(&spec, &d16);
    let e64 = paccport::devsim::warp_efficiency(&spec, &d64);
    assert!(e16 <= 0.25 && e64 == 1.0, "{e16} vs {e64}");
}

/// Unstructured data lifetimes: `enter data` before a host loop in
/// one "scope", `exit data` after it — and only two transfers happen.
#[test]
fn enter_exit_data_keeps_arrays_resident() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let steps = b.iparam("steps");
    let a = b.array("a", Scalar::F32, n, Intent::InOut);
    let t = b.var("t");
    let i = b.var("i");
    let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
    lp.clauses.independent = true;
    let k = Kernel::simple("incr", vec![lp], Block::new(vec![st(a, i, ld(a, i) + 1.0)]));
    let body = vec![
        HostStmt::EnterData { arrays: vec![a] },
        HostStmt::HostLoop {
            var: t,
            lo: Expr::iconst(0),
            hi: Expr::param(steps),
            body: vec![HostStmt::Launch(k)],
        },
        HostStmt::ExitData { arrays: vec![a] },
    ];
    let p = b.finish(body);
    paccport::ir::validate(&p).expect("well-formed");
    let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    let rc = RunConfig::functional(vec![("n".into(), 32.0), ("steps".into(), 10.0)])
        .with_input("a", Buffer::F32(vec![0.0; 32]));
    let r = run(&c, &rc).unwrap();
    assert!(r
        .buffer(&c, "a")
        .unwrap()
        .as_f32()
        .iter()
        .all(|v| *v == 10.0));
    // Exactly one copy-in and one copy-out despite 10 launches.
    assert_eq!(r.transfers.h2d_count, 1);
    assert_eq!(r.transfers.d2h_count, 1);
    // The rendered source carries the new pragmas.
    let src = paccport::ir::program_to_string(&p);
    assert!(src.contains("#pragma acc enter data copyin(a)"));
    assert!(src.contains("#pragma acc exit data copyout(a)"));
}

/// A mismatched `exit data` is a runtime error, not silent nonsense.
#[test]
fn unmatched_exit_data_is_reported() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, n, Intent::InOut);
    let p = b.finish(vec![HostStmt::ExitData { arrays: vec![a] }]);
    let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    let e = run(&c, &RunConfig::functional(vec![("n".into(), 4.0)])).unwrap_err();
    assert!(e.contains("without a matching enter data"), "{e}");
}

/// The atomics directive: a histogram kernel whose bins are written
/// by many iterations. Without atomics the dependence analysis (and
/// PGI's conservatism) refuse it; with them it parallelizes, computes
/// exactly, and the PTX carries `atom.global.add`.
#[test]
fn atomics_unlock_histogram_parallelization() {
    let build = |atomic: bool| {
        let mut b = ProgramBuilder::new(if atomic { "hist_atomic" } else { "hist" });
        let n = b.iparam("n");
        let data = b.array("data", Scalar::I32, n, Intent::In);
        let bins = b.array("bins", Scalar::I32, 16i64, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let bin_idx = (ld(data, i) % 16i64).expr();
        let body = if atomic {
            vec![Stmt::Atomic {
                op: ReduceOp::Add,
                array: bins,
                index: bin_idx,
                value: Expr::iconst(1),
            }]
        } else {
            vec![st(bins, E(bin_idx.clone()), ld(bins, E(bin_idx)) + 1i64)]
        };
        let k = Kernel::simple("hist", vec![lp], Block::new(body));
        b.finish(vec![HostStmt::Launch(k)])
    };

    // Without atomics: the analysis refuses, PGI keeps it on the host.
    let plain = build(false);
    let rep = paccport::ir::analyze_loop(plain.kernel("hist").unwrap(), 0);
    assert!(!rep.is_independent());
    let c_plain = compile(CompilerId::Pgi, &plain, &CompileOptions::gpu()).unwrap();
    assert_eq!(
        c_plain.plan("hist").unwrap().exec,
        ExecStrategy::HostSequential
    );

    // With atomics: safely parallel, offloaded, exact.
    let atomic = build(true);
    let rep = paccport::ir::analyze_loop(atomic.kernel("hist").unwrap(), 0);
    assert!(rep.is_independent(), "atomics remove the hazard: {rep:?}");
    for compiler in [CompilerId::Caps, CompilerId::Pgi, CompilerId::OpenArc] {
        let c = compile(compiler, &atomic, &CompileOptions::gpu()).unwrap();
        assert_eq!(
            c.plan("hist").unwrap().exec,
            ExecStrategy::DeviceParallel,
            "{compiler:?}"
        );
        let data: Vec<i32> = (0..997).map(|v| (v * 7) % 1000).collect();
        let mut want = [0i32; 16];
        for d in &data {
            want[(*d % 16) as usize] += 1;
        }
        let rc =
            RunConfig::functional(vec![("n".into(), 997.0)]).with_input("data", Buffer::I32(data));
        let r = run(&c, &rc).unwrap();
        assert_eq!(r.buffer(&c, "bins").unwrap().as_i32(), &want[..]);
        // The PTX carries the atomic (a Global Memory instruction).
        let text = paccport::ptx::format_module(&c.module);
        assert!(text.contains("atom.global.add"), "{compiler:?}");
        // …and round-trips through the parser.
        let back = paccport::ptx::parse_module(&text).unwrap();
        assert_eq!(back.counts(), c.module.counts());
    }
}
