//! End-to-end runs of the systematic optimization method: start from
//! each benchmark's unannotated baseline, let the method transform it,
//! compile with both OpenACC personalities, execute functionally on
//! the simulated devices, and validate the numerical results.

use paccport::compilers::{compile, CompileOptions, CompilerId};
use paccport::core::method::{apply_method, MethodOptions};
use paccport::devsim::{run, Buffer, RunConfig};
use paccport::kernels::{bfs, compare_f32, compare_i32, gaussian, lud, VariantCfg};

/// The method on GE: step 1 adds `independent` where legal; the
/// optimized program must still solve the system, faster.
#[test]
fn method_on_gaussian_elimination() {
    let baseline = gaussian::program(&VariantCfg::baseline());
    // Step 1 alone only accepts fan1; the programmer (as in the
    // paper) reviews the refusals and vouches for the update kernels.
    let auto = apply_method(&baseline, &MethodOptions::default());
    assert!(auto.any_independent_added());
    let opts = MethodOptions {
        programmer_asserts: vec!["fan2a".into(), "fan2b".into()],
        ..Default::default()
    };
    let out = apply_method(&baseline, &opts);

    let n = 32usize;
    let a0 = paccport::kernels::diag_dominant_matrix(n, 5);
    let b0 = paccport::kernels::random_vec(n, 6);
    let mk_cfg = || {
        RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(a0.clone()))
            .with_input("b", Buffer::F32(b0.clone()))
    };

    for compiler in [CompilerId::Caps, CompilerId::Pgi] {
        let c_base = compile(compiler, &baseline, &CompileOptions::gpu()).unwrap();
        let c_opt = compile(compiler, &out.program, &CompileOptions::gpu()).unwrap();
        let r_base = run(&c_base, &mk_cfg()).unwrap();
        let r_opt = run(&c_opt, &mk_cfg()).unwrap();
        // Both correct…
        for (r, c) in [(&r_base, &c_base), (&r_opt, &c_opt)] {
            let x = gaussian::back_substitute(
                r.buffer(c, "a").unwrap().as_f32(),
                r.buffer(c, "b").unwrap().as_f32(),
                n,
            );
            assert!(gaussian::residual(&a0, &b0, &x, n) < 1e-2);
        }
        // …and the optimized one faster.
        assert!(
            r_opt.elapsed < r_base.elapsed,
            "{compiler:?}: optimized {} vs baseline {}",
            r_opt.elapsed,
            r_base.elapsed
        );
    }
}

/// The method on LUD: step 1 refuses (the paper's finding), so step 2
/// must carry the optimization via explicit clauses — and the results
/// stay correct.
#[test]
fn method_on_lud_uses_step2() {
    let baseline = lud::program(&VariantCfg::baseline());
    let opts = MethodOptions {
        distribution: Some((256, 16)),
        ..Default::default()
    };
    let out = apply_method(&baseline, &opts);
    assert!(
        !out.any_independent_added(),
        "LUD must be refused by step 1"
    );
    let k = out.program.kernel("lud_row").unwrap();
    assert_eq!(k.loops[0].clauses.gang, Some(256));

    let n = 32usize;
    let a0 = paccport::kernels::diag_dominant_matrix(n, 9);
    let c = compile(CompilerId::Caps, &out.program, &CompileOptions::gpu()).unwrap();
    let rc = RunConfig::functional(vec![("n".into(), n as f64)])
        .with_input("a", Buffer::F32(a0.clone()));
    let r = run(&c, &rc).unwrap();
    assert_eq!(r.kernel_stats[0].config_label, "256x16");
    let mut want = a0;
    lud::reference(&mut want, n);
    let v = compare_f32(r.buffer(&c, "a").unwrap().as_f32(), &want, 1e-3);
    assert!(v.passed, "{}", v.detail);
}

/// The method on BFS: step 1 *does* add `independent` to the simple
/// mask-update loop but the conservative analysis refuses the
/// indirect frontier expansion; with CAPS the program still computes
/// correct levels.
#[test]
fn method_on_bfs_is_partially_conservative() {
    let baseline = bfs::program(&VariantCfg::baseline());
    let out = apply_method(&baseline, &MethodOptions::default());
    // The indirect kernel must be refused.
    assert!(out.refusals().iter().any(|a| {
        matches!(a, paccport::core::StepAction::RefusedIndependent { kernel, .. }
                 if kernel == "bfs_kernel1")
    }));

    let g = bfs::Graph::random(120, 3, 17);
    let mut mask = vec![0i32; g.n];
    mask[0] = 1;
    let c = compile(CompilerId::Caps, &out.program, &CompileOptions::gpu()).unwrap();
    let rc = RunConfig::functional(vec![
        ("n".into(), g.n as f64),
        ("nedges".into(), g.edges.len() as f64),
        ("source".into(), 0.0),
    ])
    .with_input("nodes", Buffer::I32(g.nodes.clone()))
    .with_input("edges", Buffer::I32(g.edges.clone()))
    .with_input("mask", Buffer::I32(mask));
    let r = run(&c, &rc).unwrap();
    let v = compare_i32(
        r.buffer(&c, "cost").unwrap().as_i32(),
        &bfs::reference(&g, 0),
    );
    assert!(v.passed, "{}", v.detail);
}

/// Full cross-product smoke: every benchmark variant × compiler ×
/// device that is expected to be correct, validated functionally.
#[test]
fn cross_product_functional_matrix() {
    let n = 24usize;
    let a0 = paccport::kernels::diag_dominant_matrix(n, 21);
    let mut want = a0.clone();
    lud::reference(&mut want, n);

    let variants = [
        VariantCfg::baseline(),
        VariantCfg::thread_dist(256, 16),
        VariantCfg::thread_dist(240, 1),
        {
            let mut v = VariantCfg::thread_dist(128, 32);
            v.unroll = Some(4);
            v
        },
    ];
    let targets = [
        (CompilerId::Caps, CompileOptions::gpu()),
        (CompilerId::Caps, CompileOptions::mic()),
        (CompilerId::Pgi, CompileOptions::gpu()),
        (CompilerId::OpenClHand, CompileOptions::gpu()),
        (CompilerId::OpenClHand, CompileOptions::mic()),
    ];
    for vc in &variants {
        let p = lud::program(vc);
        for (compiler, opts) in &targets {
            let c = compile(*compiler, &p, opts).unwrap();
            let rc = RunConfig::functional(vec![("n".into(), n as f64)])
                .with_input("a", Buffer::F32(a0.clone()));
            let r = run(&c, &rc).unwrap();
            let v = compare_f32(r.buffer(&c, "a").unwrap().as_f32(), &want, 1e-3);
            assert!(
                v.passed,
                "{:?} on {:?} with {:?}: {}",
                compiler, opts.target, vc, v.detail
            );
        }
    }
}
