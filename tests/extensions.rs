//! Tests for the paper's future-work directions, implemented as
//! extensions: OpenARC-style auto-tuning (Section VII) and Step 5's
//! automatic data-region insertion.

use paccport::compilers::{compile, CompileOptions, CompilerId};
use paccport::core::experiments::{ext1_autotune_vs_hand, ext2_data_regions};
use paccport::core::study::Scale;
use paccport::core::{insert_data_regions, strip_data_regions};
use paccport::devsim::{run, Buffer, RunConfig};
use paccport::kernels::{compare_f32, lud, VariantCfg};

/// The auto-tuner must independently rediscover the paper's manual
/// conclusions: worker 16 on the GPU, (240, 1) on the MIC.
#[test]
fn autotune_rediscovers_the_papers_configurations() {
    let mut s = Scale::quick();
    s.lud_n = 1024;
    let rows = ext1_autotune_vs_hand(&s);
    assert_eq!(rows.len(), 2);
    let gpu = &rows[0];
    assert_eq!(gpu.device, "K40");
    assert!(
        gpu.tuned_seconds <= gpu.hand_seconds * 1.05,
        "tuning must match or beat the hand pick"
    );
    for (_, gang, worker) in &gpu.tuned_configs {
        assert!(
            *gang >= 128 && *worker >= 8 && *worker <= 64,
            "({gang},{worker})"
        );
    }
    let mic = &rows[1];
    assert_eq!(mic.device, "5110P");
    for (_, gang, worker) in &mic.tuned_configs {
        assert_eq!((*gang, *worker), (240, 1), "the MIC optimum");
    }
}

/// Step 5 collapses per-launch synchronization to two transfers and
/// preserves results.
#[test]
fn step5_data_region_insertion() {
    let rows = ext2_data_regions(&Scale::quick());
    assert_eq!(rows.len(), 2);
    assert!(
        rows[0].transfers > 100,
        "naive port re-transfers per launch"
    );
    assert_eq!(rows[1].transfers, 2, "one copy-in + one copy-out");
    assert!(rows[1].seconds < rows[0].seconds / 5.0);
}

/// The OpenARC personality compiles every benchmark for both devices
/// and computes correct results (it is the quirk-free baseline the
/// ablations compare against).
#[test]
fn openarc_runs_lud_correctly_everywhere() {
    let n = 32usize;
    let a0 = paccport::kernels::diag_dominant_matrix(n, 77);
    let mut want = a0.clone();
    lud::reference(&mut want, n);
    let p = lud::program(&VariantCfg::baseline());
    for opts in [CompileOptions::gpu(), CompileOptions::mic()] {
        let c = compile(CompilerId::OpenArc, &p, &opts).unwrap();
        // No gang(1) bug: the baseline is parallel.
        assert!(c
            .plans
            .iter()
            .all(|pl| pl.exec == paccport::compilers::ExecStrategy::DeviceParallel));
        let rc = RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(a0.clone()));
        let r = run(&c, &rc).unwrap();
        let v = compare_f32(r.buffer(&c, "a").unwrap().as_f32(), &want, 1e-3);
        assert!(v.passed, "{:?}: {}", opts.target, v.detail);
    }
}

/// Round-trip property of strip/insert at the program level, on a
/// second benchmark (GE) for coverage.
#[test]
fn strip_insert_round_trip_on_ge() {
    use paccport::kernels::gaussian;
    let p = gaussian::program(&VariantCfg::independent());
    let stripped = strip_data_regions(&p);
    assert!(!stripped.has_data_region());
    let mut restored = stripped.clone();
    let covered = insert_data_regions(&mut restored);
    // a, b, m all covered.
    assert_eq!(covered.len(), 3);
    paccport::ir::validate(&restored).expect("restored program is well-formed");
}
