//! Property tests over the conformance generator itself.
//!
//! The generator is the foundation the differential harness stands
//! on: every program it emits must pass the IR validator (otherwise
//! "conformance failures" would just be malformed inputs), and
//! generation must be a pure function of `(seed, index)` (otherwise
//! counterexamples would not reproduce and CI runs would not be
//! comparable). These run through the `proptest` shim so seeds are
//! drawn adversarially rather than hand-picked.

use paccport::conformance::generate;
use paccport::ir::{program_to_string, validate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every generated program is well-formed per the validator, and
    /// carries the inputs/params its arrays and params demand.
    #[test]
    fn generated_programs_validate(seed in 0u64..1_000_000, index in 0u64..32) {
        let case = generate(seed, index);
        prop_assert!(
            validate(&case.program).is_ok(),
            "seed {} index {} generated an invalid program:\n{}",
            seed,
            index,
            program_to_string(&case.program)
        );
        // Every In/InOut array has a same-length input buffer.
        for a in &case.program.arrays {
            use paccport::ir::Intent;
            if matches!(a.intent, Intent::In | Intent::InOut) {
                let buf = case.inputs.iter().find(|(n, _)| *n == a.name);
                prop_assert!(
                    buf.is_some(),
                    "seed {seed} index {index}: array `{}` has no input buffer",
                    a.name
                );
            }
        }
        // Every program parameter is bound.
        for p in &case.program.params {
            prop_assert!(
                case.params.iter().any(|(n, _)| *n == p.name),
                "seed {seed} index {index}: param `{}` is unbound",
                p.name
            );
        }
    }

    /// Generation is deterministic: the same (seed, index) always
    /// yields the same program, params and input bits.
    #[test]
    fn generation_is_deterministic(seed in 0u64..1_000_000, index in 0u64..32) {
        let a = generate(seed, index);
        let b = generate(seed, index);
        prop_assert_eq!(
            program_to_string(&a.program),
            program_to_string(&b.program)
        );
        prop_assert_eq!(&a.params, &b.params);
        prop_assert_eq!(a.inputs.len(), b.inputs.len());
        for ((na, ba), (nb, bb)) in a.inputs.iter().zip(&b.inputs) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(ba.bits(), bb.bits());
        }
    }

    /// Distinct seeds explore distinct programs (not a constant
    /// generator): over any 8 consecutive seeds at least two programs
    /// differ.
    #[test]
    fn seeds_actually_vary_programs(base in 0u64..1_000_000) {
        let texts: Vec<String> = (0..8)
            .map(|s| program_to_string(&generate(base + s, 0).program))
            .collect();
        prop_assert!(
            texts.iter().any(|t| *t != texts[0]),
            "8 consecutive seeds from {base} all generated the same program"
        );
    }
}
