//! The paper's PTX methodology, hands-on: compile one benchmark with
//! both OpenACC personalities, print the generated PTX side
//! information, the Table-V category counts, and the step-to-step
//! verdicts that exposed the fake unroll success and the silent
//! tiling no-op.
//!
//! ```sh
//! cargo run --example ptx_inspector --release [-- lud|ge|bp]
//! ```

use paccport::compilers::{compile, CompileOptions, CompilerId, Flag};
use paccport::core::ptxcmp::{compare_steps, composition_line, StepVerdict};
use paccport::kernels::{backprop, gaussian, lud, VariantCfg};
use paccport::ptx::format_kernel;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "lud".into());
    match which.as_str() {
        "ge" => inspect_ge(),
        "bp" => inspect_bp(),
        _ => inspect_lud(),
    }
}

fn inspect_lud() {
    println!("=== LUD under CAPS and PGI (the Fig. 6 analysis) ===\n");
    let dist = VariantCfg::thread_dist(256, 16);
    let mut unroll = dist;
    unroll.unroll = Some(8);
    let mut tile = dist;
    tile.tile = Some(32);

    for (name, id) in [
        ("CAPS 3.4.1", CompilerId::Caps),
        ("PGI 14.9", CompilerId::Pgi),
    ] {
        println!("--- {name} ---");
        let counts = |cfg: &VariantCfg, flags: &[Flag]| {
            let mut o = CompileOptions::gpu();
            for f in flags {
                o = o.with_flag(*f);
            }
            compile(id, &lud::program(cfg), &o).unwrap().module.counts()
        };
        let base = counts(&dist, &[]);
        println!("  ThreadDist: {}", composition_line(&base));
        let (u, label) = if id == CompilerId::Pgi {
            (counts(&dist, &[Flag::Munroll]), "-Munroll   ")
        } else {
            (counts(&unroll, &[]), "unroll,jam ")
        };
        println!("  {label}: {}", composition_line(&u));
        match compare_steps(&base, &u) {
            StepVerdict::Unchanged => {
                println!("    -> PTX UNCHANGED: the \"optimization\" did nothing")
            }
            StepVerdict::Changed(d) => println!("    -> changed: {d:?}"),
        }
        if id == CompilerId::Caps {
            let t = counts(&tile, &[]);
            println!("  tile(32)   : {}", composition_line(&t));
            match compare_steps(&base, &t) {
                StepVerdict::Unchanged => {
                    println!("    -> PTX UNCHANGED: CAPS silently skipped tiling (nested body)")
                }
                StepVerdict::Changed(d) => println!("    -> changed: {d:?}"),
            }
        }
        println!();
    }

    // Show actual PTX for the row kernel.
    let c = compile(
        CompilerId::Caps,
        &lud::program(&dist),
        &CompileOptions::gpu(),
    )
    .unwrap();
    println!("--- CAPS PTX for lud_row (first 30 lines) ---");
    let text = format_kernel(c.module.kernel("lud_row_kernel").unwrap());
    for l in text.lines().take(30) {
        println!("{l}");
    }
    println!("...");
}

fn inspect_ge() {
    println!("=== GE: the fake unroll success (Section V-B3) ===\n");
    let mut reorg = VariantCfg::independent();
    reorg.reorganized = true;
    let mut unroll = reorg;
    unroll.unroll = Some(8);
    let o = CompileOptions::gpu();

    let caps_base = compile(CompilerId::Caps, &gaussian::program(&reorg), &o).unwrap();
    let caps_unroll = compile(CompilerId::Caps, &gaussian::program(&unroll), &o).unwrap();
    println!(
        "CAPS reorg  : {}",
        composition_line(&caps_base.module.counts())
    );
    println!(
        "CAPS unroll : {}",
        composition_line(&caps_unroll.module.counts())
    );
    println!(
        "  verdict: {:?} (the compiler reported success anyway — \"fake successful message\")\n",
        compare_steps(&caps_base.module.counts(), &caps_unroll.module.counts())
    );

    let pgi_base = compile(CompilerId::Pgi, &gaussian::program(&reorg), &o).unwrap();
    let pgi_unroll = compile(
        CompilerId::Pgi,
        &gaussian::program(&reorg),
        &o.clone().with_flag(Flag::Munroll),
    )
    .unwrap();
    println!(
        "PGI reorg   : {}",
        composition_line(&pgi_base.module.counts())
    );
    println!(
        "PGI -Munroll: {}",
        composition_line(&pgi_unroll.module.counts())
    );
    println!(
        "  verdict: {:?} (really unrolled — arithmetic and data movement nearly double — \
         yet no speedup)",
        compare_steps(&pgi_base.module.counts(), &pgi_unroll.module.counts())
    );
}

fn inspect_bp() {
    println!("=== BP: the reduction directive's shared memory (Fig. 13/14) ===\n");
    let indep = VariantCfg::independent();
    let mut red = indep;
    red.reduction = true;
    let o = CompileOptions::gpu();
    for (name, id) in [("CAPS", CompilerId::Caps), ("PGI", CompilerId::Pgi)] {
        let a = compile(id, &backprop::program(&indep), &o).unwrap();
        let b = compile(id, &backprop::program(&red), &o).unwrap();
        let shared_before = a.module.counts().get(paccport::ptx::Category::SharedMemory);
        let shared_after = b.module.counts().get(paccport::ptx::Category::SharedMemory);
        println!(
            "{name}: shared-memory instructions {shared_before} -> {shared_after} \
             (st.shared/ld.shared appear with the reduction directive)"
        );
    }
    println!("\nThe lowered tree (what both compilers generate):\n");
    let c = compile(CompilerId::Caps, &backprop::program(&red), &o).unwrap();
    let k = c.program.kernel("layer_forward").unwrap();
    println!("{}", paccport::ir::kernel_to_string(&c.program, k));
}
