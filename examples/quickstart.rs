//! Quickstart: write a directive-annotated kernel, compile it with the
//! two simulated OpenACC compilers, run it on the simulated K40 and
//! MIC, and inspect the generated PTX — the whole pipeline of the
//! reproduction in ~80 lines.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use paccport::compilers::{compile, CompileOptions, CompilerId};
use paccport::devsim::{run, Buffer, RunConfig};
use paccport::ir::{
    ld, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
};
use paccport::ptx::format_module;

fn main() {
    // 1. Write "OpenACC source": y[i] = a*x[i] + y[i] with the
    //    independent directive (Step 1 of the paper's method).
    let mut b = ProgramBuilder::new("saxpy");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
    lp.clauses.independent = true;
    let kernel = Kernel::simple(
        "saxpy",
        vec![lp],
        Block::new(vec![st(y, i, E::from(2.5) * ld(x, i) + ld(y, i))]),
    );
    let program = b.finish(vec![HostStmt::Launch(kernel)]);
    println!(
        "--- source ---\n{}",
        paccport::ir::program_to_string(&program)
    );

    // 2. Compile with both personalities and compare their PTX.
    for compiler in [CompilerId::Caps, CompilerId::Pgi] {
        let compiled = compile(compiler, &program, &CompileOptions::gpu()).expect("compile");
        let plan = compiled.plan("saxpy").expect("plan");
        println!(
            "--- {} --- distribution {:?} ({} PTX instructions)",
            compiled.module.producer,
            plan.dist,
            compiled.module.len(),
        );
        for d in &compiled.diagnostics {
            println!("  log: {}", d.message);
        }
    }

    // 3. Run functionally on the simulated GPU and validate.
    let compiled = compile(CompilerId::Caps, &program, &CompileOptions::gpu()).unwrap();
    let n_val = 1024usize;
    let xs: Vec<f32> = (0..n_val).map(|v| v as f32).collect();
    let cfg = RunConfig::functional(vec![("n".into(), n_val as f64)])
        .with_input("x", Buffer::F32(xs.clone()))
        .with_input("y", Buffer::F32(vec![1.0; n_val]));
    let result = run(&compiled, &cfg).expect("run");
    let got = result.buffer(&compiled, "y").unwrap().as_f32();
    assert!(got
        .iter()
        .enumerate()
        .all(|(i, v)| (*v - (2.5 * i as f32 + 1.0)).abs() < 1e-4));
    println!(
        "\nfunctional run ok: {} elements validated; modeled time {:.3} ms \
         ({} H2D / {} D2H transfers)",
        n_val,
        result.elapsed * 1e3,
        result.transfers.h2d_count,
        result.transfers.d2h_count
    );

    // 4. Time the same kernel at a much larger size on GPU vs MIC.
    let big = RunConfig::timing(vec![("n".into(), 64e6)], 1);
    let t_gpu = run(&compiled, &big).unwrap().elapsed;
    let mic = compile(CompilerId::Caps, &program, &CompileOptions::mic()).unwrap();
    let t_mic = run(&mic, &big).unwrap().elapsed;
    println!(
        "64M elements: K40 {:.1} ms vs 5110P {:.1} ms  => PPR = {:.2}",
        t_gpu * 1e3,
        t_mic * 1e3,
        t_mic / t_gpu
    );

    // 5. Peek at the PTX itself.
    println!("\n--- generated PTX (CAPS) ---");
    let text = format_module(&compiled.module);
    for line in text.lines().take(24) {
        println!("{line}");
    }
    println!("...");
}
