//! STREAM bandwidth study on the simulated devices — the kind of
//! microbenchmark sweep the paper's authors ran in their previous
//! work (reference [11]: SHOC, STREAM and EPCC under CAPS) — plus the
//! nvprof-style per-kernel profile for one run.
//!
//! ```sh
//! cargo run --example stream_bandwidth --release
//! ```

use paccport::compilers::{compile, CompileOptions, CompilerId};
use paccport::devsim::{k40, phi5110p, render_profile, run, RunConfig};
use paccport::kernels::stream::{self, StreamOp};
use paccport::kernels::VariantCfg;

fn main() {
    let n: u64 = 1 << 26; // 64M elements per array
    println!("STREAM on the simulated test bed, n = {n} (f32)\n");
    println!(
        "{:<8}{:>16}{:>16}{:>18}",
        "kernel", "K40 GB/s", "5110P GB/s", "K40 1-thread GB/s"
    );
    for _ in 0..58 {
        print!("-");
    }
    println!();

    let rc = RunConfig::timing(vec![("n".into(), n as f64)], 1);
    for op in stream::ALL {
        let bw = |opts: &CompileOptions, cfg: &VariantCfg| -> f64 {
            let p = stream::program(op, cfg);
            let c = compile(CompilerId::Caps, &p, opts).unwrap();
            let r = run(&c, &rc).unwrap();
            stream::measured_bandwidth(op, n, r.kernel_time)
        };
        let gpu = bw(&CompileOptions::gpu(), &VariantCfg::independent());
        let mic = bw(&CompileOptions::mic(), &VariantCfg::independent());
        let seq = bw(&CompileOptions::gpu(), &VariantCfg::baseline());
        println!(
            "{:<8}{:>16.1}{:>16.1}{:>18.3}",
            op.label(),
            gpu / 1e9,
            mic / 1e9,
            seq / 1e9
        );
    }
    println!(
        "\nmodeled peaks: K40 {:.0} GB/s, 5110P {:.0} GB/s — achieved fractions are the\n\
         roofline's saturation behaviour; the last column is the CAPS gang(1) bug.\n",
        k40().mem_bw / 1e9,
        phi5110p().mem_bw / 1e9
    );

    // An nvprof-style profile of one Triad run, with transfers.
    let p = stream::program(StreamOp::Triad, &VariantCfg::independent());
    let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    let r = run(&c, &RunConfig::timing(vec![("n".into(), 1e7)], 1)).unwrap();
    println!("--- profile: Triad, n = 10M, CAPS on K40 ---");
    print!("{}", render_profile(&r));
}
