//! The four-kernel Rodinia study, end to end: apply the paper's
//! systematic optimization method to each benchmark, run every
//! variant functionally (validating results against the native Rust
//! references), then re-run at paper scale through the timing model
//! and print the Fig. 3/7/10/12-style summaries.
//!
//! ```sh
//! cargo run --example rodinia_study --release
//! ```

use paccport::compilers::{compile, CompileOptions, CompilerId, Correctness};
use paccport::core::method::{apply_method, MethodOptions, StepAction};
use paccport::core::report::fmt_secs;
use paccport::devsim::{run, Buffer, RunConfig};
use paccport::kernels::{backprop, bfs, compare_f32, compare_i32, gaussian, lud, VariantCfg};

fn main() {
    step1_demo();
    lud_study();
    ge_study();
    bfs_study();
    bp_study();
}

/// Step 1 of the method on all four benchmarks: where `independent`
/// is legal and where the analysis refuses.
fn step1_demo() {
    println!("=== Step 1: adding independent directives ===");
    for (name, p) in [
        ("LUD", lud::program(&VariantCfg::baseline())),
        ("GE", gaussian::program(&VariantCfg::baseline())),
        ("BFS", bfs::program(&VariantCfg::baseline())),
        ("BP", backprop::program(&VariantCfg::baseline())),
    ] {
        let out = apply_method(&p, &MethodOptions::default());
        let added = out
            .actions
            .iter()
            .filter(|a| matches!(a, StepAction::AddedIndependent { .. }))
            .count();
        let refused = out.refusals().len();
        println!("  {name:<4} -> {added} loops marked independent, {refused} refused");
        for r in out.refusals().iter().take(2) {
            if let StepAction::RefusedIndependent { kernel, reason, .. } = r {
                println!("        refused `{kernel}`: {reason}");
            }
        }
    }
    println!();
}

fn lud_study() {
    println!("=== LUD (4K matrix) ===");
    // Functional validation at small scale.
    let n = 64usize;
    let a0 = paccport::kernels::diag_dominant_matrix(n, 7);
    let mut want = a0.clone();
    lud::reference(&mut want, n);
    for (label, cfg) in [
        ("baseline", VariantCfg::baseline()),
        ("gang(256)/worker(16)", VariantCfg::thread_dist(256, 16)),
    ] {
        let p = lud::program(&cfg);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let rc = RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(a0.clone()));
        let r = run(&c, &rc).unwrap();
        let v = compare_f32(r.buffer(&c, "a").unwrap().as_f32(), &want, 1e-3);
        println!(
            "  CAPS {label}: validation {} (max err {:.2e}), threads {}",
            if v.passed { "OK" } else { "FAILED" },
            v.max_abs_err,
            r.kernel_stats[0].config_label
        );
    }
    // Paper-scale timing.
    let rc = RunConfig::timing(vec![("n".into(), lud::PAPER_N as f64)], 1);
    let t = |cfg: &VariantCfg, id, o: &CompileOptions| {
        run(&compile(id, &lud::program(cfg), o).unwrap(), &rc)
            .unwrap()
            .elapsed
    };
    let base = t(
        &VariantCfg::baseline(),
        CompilerId::Caps,
        &CompileOptions::gpu(),
    );
    let dist = t(
        &VariantCfg::thread_dist(256, 16),
        CompilerId::Caps,
        &CompileOptions::gpu(),
    );
    let pgi = t(
        &VariantCfg::baseline(),
        CompilerId::Pgi,
        &CompileOptions::gpu(),
    );
    println!(
        "  K40: CAPS baseline {} (the gang(1) bug; {:.0}x PGI's {}), gang mode {}\n",
        fmt_secs(base),
        base / pgi,
        fmt_secs(pgi),
        fmt_secs(dist)
    );
}

fn ge_study() {
    println!("=== Gaussian Elimination (8K system) ===");
    let n = 48usize;
    let a0 = paccport::kernels::diag_dominant_matrix(n, 11);
    let b0 = paccport::kernels::random_vec(n, 12);
    let mut cfg = VariantCfg::independent();
    cfg.reorganized = true;
    let p = gaussian::program(&cfg);
    let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
    let rc = RunConfig::functional(vec![("n".into(), n as f64)])
        .with_input("a", Buffer::F32(a0.clone()))
        .with_input("b", Buffer::F32(b0.clone()));
    let r = run(&c, &rc).unwrap();
    let x = gaussian::back_substitute(
        r.buffer(&c, "a").unwrap().as_f32(),
        r.buffer(&c, "b").unwrap().as_f32(),
        n,
    );
    let res = gaussian::residual(&a0, &b0, &x, n);
    println!(
        "  CAPS reorganized+indep: solve residual {res:.2e}, {} launches (2N)",
        {
            let l: u64 = r.kernel_stats.iter().map(|s| s.launches).sum();
            l
        }
    );
    let rc = RunConfig::timing(vec![("n".into(), gaussian::PAPER_N as f64)], 1);
    for (label, id, prog) in [
        (
            "CAPS indep (gridify 32x4)",
            CompilerId::Caps,
            gaussian::program(&VariantCfg::independent()),
        ),
        (
            "OpenCL baseline",
            CompilerId::OpenClHand,
            gaussian::opencl_program(false),
        ),
        (
            "OpenCL advanced (Fig. 8)",
            CompilerId::OpenClHand,
            gaussian::opencl_program(true),
        ),
    ] {
        let t = run(&compile(id, &prog, &CompileOptions::gpu()).unwrap(), &rc)
            .unwrap()
            .elapsed;
        println!("  K40 {label}: {}", fmt_secs(t));
    }
    println!();
}

fn bfs_study() {
    println!("=== BFS (32M nodes) ===");
    let g = bfs::Graph::random(300, 4, 3);
    let p = bfs::program(&VariantCfg::independent());
    for (label, id) in [("CAPS", CompilerId::Caps), ("PGI", CompilerId::Pgi)] {
        let c = compile(id, &p, &CompileOptions::gpu()).unwrap();
        let mut mask = vec![0i32; g.n];
        mask[0] = 1;
        let rc = RunConfig::functional(vec![
            ("n".into(), g.n as f64),
            ("nedges".into(), g.edges.len() as f64),
            ("source".into(), 0.0),
        ])
        .with_input("nodes", Buffer::I32(g.nodes.clone()))
        .with_input("edges", Buffer::I32(g.edges.clone()))
        .with_input("mask", Buffer::I32(mask));
        let r = run(&c, &rc).unwrap();
        let v = compare_i32(
            r.buffer(&c, "cost").unwrap().as_i32(),
            &bfs::reference(&g, 0),
        );
        println!(
            "  {label}: validation {}, ran on device: {}, {} levels, \
             {:.1} transfers/iter, {} transfers total",
            if v.passed { "OK" } else { "FAILED" },
            r.kernel_stats.iter().all(|s| s.ran_on_device),
            r.while_iterations,
            r.transfers_per_while_iter,
            r.transfers.total_count(),
        );
    }
    println!();
}

fn bp_study() {
    println!("=== Back Propagation (20M-unit input layer) ===");
    let mut red = VariantCfg::independent();
    red.reduction = true;
    let p = backprop::program(&red);
    // The CAPS reduction is *wrong on MIC* — show the validation catch.
    let c = compile(CompilerId::Caps, &p, &CompileOptions::mic()).unwrap();
    let n_in = 255usize;
    let n_hid = 16usize;
    let input = paccport::kernels::random_vec(n_in + 1, 31);
    let w = paccport::kernels::random_vec((n_in + 1) * (n_hid + 1), 32);
    let rc = RunConfig::functional(vec![
        ("n_in".into(), n_in as f64),
        ("n_hid".into(), n_hid as f64),
    ])
    .with_input("input", Buffer::F32(input.clone()))
    .with_input("w", Buffer::F32(w.clone()))
    .with_input(
        "delta",
        Buffer::F32(paccport::kernels::random_vec(n_hid + 1, 33)),
    )
    .with_input(
        "oldw",
        Buffer::F32(paccport::kernels::random_vec((n_in + 1) * (n_hid + 1), 34)),
    );
    let r = run(&c, &rc).unwrap();
    let want = backprop::reference_forward(&input, &w, n_in, n_hid);
    let got = r.buffer(&c, "hidden").unwrap().as_f32();
    let v = compare_f32(&got[1..], &want[1..], 1e-4);
    let plan = c.plan("layer_forward").unwrap();
    println!(
        "  CAPS reduction on MIC: compiler says {:?}; validation passed = {} \
         (the paper's Section V-D2 bug, reproduced)",
        match &plan.correctness {
            Correctness::Correct => "correct".to_string(),
            Correctness::Wrong { reason } => format!("WRONG ({reason})"),
        },
        v.passed
    );
    // And the PGI reduction works and is fast.
    let cp = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap();
    let rp = run(&cp, &rc).unwrap();
    let gotp = rp.buffer(&cp, "hidden").unwrap().as_f32();
    let vp = compare_f32(&gotp[1..], &want[1..], 1e-4);
    println!("  PGI reduction on K40: validation passed = {}", vp.passed);
}
