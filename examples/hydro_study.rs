//! The Hydro mini-application study: solve a Sod shock tube with the
//! reference Rust solver, then run the directive-annotated version on
//! the simulated K40 and MIC, validate element-wise, and reproduce the
//! Fig. 15 comparison (OpenCL vs OpenACC, GCC vs ICC hosts).
//!
//! ```sh
//! cargo run --example hydro_study --release
//! ```

use paccport::compilers::{compile, CompileOptions, CompilerId, HostCompiler};
use paccport::core::report::fmt_secs;
use paccport::devsim::run;
use paccport::hydro::{self, HydroVariant};

fn main() {
    // ---------------- Reference physics ----------------
    let (nx, ny, steps) = (128usize, 16usize, 25usize);
    let mut state = hydro::State::sod(nx, ny);
    let m0 = state.total_mass();
    let t_end = hydro::run_reference(&mut state, steps);
    println!("=== Reference solver: Sod shock tube {nx}x{ny}, {steps} steps ===");
    println!("  simulated time    t = {t_end:.4}");
    println!(
        "  mass conservation: {:.3e} relative drift",
        ((state.total_mass() - m0) / m0).abs()
    );
    // A coarse density profile along the tube.
    let j = 2 + ny / 2;
    print!("  density profile:   ");
    for i in (0..nx).step_by(nx / 16) {
        print!("{:.2} ", state.rho[state.idx(2 + i, j)]);
    }
    println!("\n");

    // ---------------- Device runs, validated ----------------
    println!("=== Simulated-device runs (validated against the reference) ===");
    let vsteps = 10usize;
    for (label, variant, compiler, opts) in [
        (
            "CAPS optimized / K40 ",
            HydroVariant::Optimized,
            CompilerId::Caps,
            CompileOptions::gpu(),
        ),
        (
            "CAPS optimized / MIC ",
            HydroVariant::Optimized,
            CompilerId::Caps,
            CompileOptions::mic(),
        ),
        (
            "OpenCL           / K40 ",
            HydroVariant::OpenCl,
            CompilerId::OpenClHand,
            CompileOptions::gpu(),
        ),
    ] {
        let p = hydro::program(variant);
        let c = compile(compiler, &p, &opts).unwrap();
        let r = run(&c, &hydro::sod_run_config(64, 8, vsteps)).unwrap();
        let v = hydro::validate_against_reference(&r, &c, 64, 8, vsteps, 1e-4);
        println!(
            "  {label}: validation {} (max err {:.1e}), modeled {}",
            if v.passed { "OK" } else { "FAILED" },
            v.max_abs_err,
            fmt_secs(r.elapsed)
        );
    }
    // PGI cannot compile Hydro at all (Section V-E).
    let err = compile(
        CompilerId::Pgi,
        &hydro::program(HydroVariant::Optimized),
        &CompileOptions::gpu(),
    )
    .unwrap_err();
    println!("  PGI              : compile error — {}\n", err.message);

    // ---------------- Fig. 15 at scale ----------------
    println!("=== Fig. 15 shape at 1024x1024 ===");
    let cfg = hydro::timing_run_config(1024, 1024, 2);
    let t = |variant, id, o: &CompileOptions| {
        run(&compile(id, &hydro::program(variant), o).unwrap(), &cfg)
            .unwrap()
            .elapsed
    };
    let rows = [
        (
            "OpenACC base  / K40 / GCC",
            HydroVariant::Baseline,
            CompilerId::Caps,
            CompileOptions::gpu(),
        ),
        (
            "OpenACC opt   / K40 / GCC",
            HydroVariant::Optimized,
            CompilerId::Caps,
            CompileOptions::gpu(),
        ),
        (
            "OpenACC opt   / K40 / ICC",
            HydroVariant::Optimized,
            CompilerId::Caps,
            CompileOptions::gpu().with_host_compiler(HostCompiler::Intel),
        ),
        (
            "OpenACC base  / MIC / GCC",
            HydroVariant::Baseline,
            CompilerId::Caps,
            CompileOptions::mic(),
        ),
        (
            "OpenACC opt   / MIC / GCC",
            HydroVariant::Optimized,
            CompilerId::Caps,
            CompileOptions::mic(),
        ),
        (
            "OpenCL        / K40      ",
            HydroVariant::OpenCl,
            CompilerId::OpenClHand,
            CompileOptions::gpu(),
        ),
        (
            "OpenCL        / MIC      ",
            HydroVariant::OpenCl,
            CompilerId::OpenClHand,
            CompileOptions::mic(),
        ),
    ];
    for (label, v, id, o) in rows {
        println!("  {label}: {}", fmt_secs(t(v, id, &o)));
    }
    let og = t(
        HydroVariant::Optimized,
        CompilerId::Caps,
        &CompileOptions::gpu(),
    );
    let om = t(
        HydroVariant::Optimized,
        CompilerId::Caps,
        &CompileOptions::mic(),
    );
    println!("\n  optimized OpenACC PPR (Eq. 1) = {:.2}", om / og);
}
