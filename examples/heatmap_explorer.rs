//! Interactive-ish thread-distribution exploration (the Fig. 4 study
//! plus the paper's portability conclusion): sweep gang × worker for
//! LUD on CAPS-K40, PGI-K40 and CAPS-MIC, print the heat maps, and let
//! the method pick the best *portable* configuration across devices.
//!
//! ```sh
//! cargo run --example heatmap_explorer --release [-- <matrix order>]
//! ```

use paccport::compilers::{CompileOptions, CompilerId};
use paccport::core::method::select_portable_distribution;
use paccport::devsim::{sweep, RunConfig};
use paccport::kernels::{lud, VariantCfg};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2048);
    println!("LUD thread-distribution sweep, n = {n}\n");

    let gangs = [1u32, 32, 64, 128, 240, 256, 512, 1024];
    let workers = [1u32, 2, 4, 8, 16, 32, 64];
    let program = lud::program(&VariantCfg::baseline());
    let cfg = RunConfig::timing(vec![("n".into(), n as f64)], 1);
    let configure = |p: &mut paccport::ir::Program, g: u32, w: u32| {
        p.map_kernels(|k| {
            for lp in &mut k.loops {
                lp.clauses.gang = Some(g);
                lp.clauses.worker = Some(w);
            }
        });
    };

    let mut maps = Vec::new();
    for (title, compiler, opts) in [
        ("CAPS-K40", CompilerId::Caps, CompileOptions::gpu()),
        ("PGI-K40", CompilerId::Pgi, CompileOptions::gpu()),
        ("CAPS-MIC (5110P)", CompilerId::Caps, CompileOptions::mic()),
    ] {
        let hm = sweep(
            title, &program, compiler, &opts, &cfg, &gangs, &workers, configure,
        )
        .expect("sweep");
        println!("{}", hm.render());
        let (g, w, t) = hm.best();
        println!("  best: gang {g}, worker {w} -> {t:.3} s\n");
        maps.push(hm);
    }

    // The paper's portability conclusion: pick one configuration for
    // *both* devices (Section V-A2 ends at "(>256, 16)").
    let (g, w) = select_portable_distribution(&maps[0], &maps[2]);
    println!("portable configuration across K40 and 5110P: gang {g}, worker {w}");
    let slowdown = |hm: &paccport::devsim::HeatMap| {
        let (_, _, best) = hm.best();
        hm.at(g, w).unwrap() / best
    };
    println!(
        "  within {:.0}% of the K40 optimum and {:.0}% of the MIC optimum",
        (slowdown(&maps[0]) - 1.0) * 100.0,
        (slowdown(&maps[2]) - 1.0) * 100.0
    );
}
