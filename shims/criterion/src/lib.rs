//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter` — with a plain wall-clock
//! measurement loop (one warmup pass, then `sample_size` timed
//! samples) and a mean/min/max report line per benchmark. No
//! statistics, plots or baselines; good enough to smoke-run
//! `cargo bench` offline and eyeball regressions.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", &name.into(), 20, f);
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &name.into(), self.sample_size, f);
    }

    pub fn finish(self) {}
}

fn run_bench<F>(group: &str, name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        durations: Vec::with_capacity(samples),
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.durations.is_empty() {
        println!("bench {label:<40} (no measurements)");
        return;
    }
    let total: Duration = b.durations.iter().sum();
    let mean = total / b.durations.len() as u32;
    let min = b.durations.iter().min().unwrap();
    let max = b.durations.iter().max().unwrap();
    println!(
        "bench {label:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        b.durations.len()
    );
}

pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup pass (also primes caches the way criterion does).
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bench_runs_closure_expected_times() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("count", |b| {
            b.iter(|| calls.fetch_add(1, Ordering::Relaxed))
        });
        g.finish();
        // 1 warmup + 5 samples.
        assert_eq!(calls.load(Ordering::Relaxed), 6);
    }
}
