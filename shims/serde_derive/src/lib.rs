//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace only ever uses serde for its derive macros — nothing
//! calls `serde_json` or takes `T: Serialize` bounds — so in the
//! offline build the derives expand to nothing. If real serialization
//! is ever needed, swap `shims/serde` back for the crates.io packages
//! (see shims/README.md).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
