//! Offline stand-in for `rayon`, covering the
//! `slice.par_iter().map(f).collect()` shape this workspace uses.
//!
//! Unlike a serial polyfill, `map` really is parallel: items are
//! claimed off a shared atomic index by `available_parallelism()`
//! scoped threads, so the heat-map sweeps keep their speedup. The
//! result order is the input order regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Entry point: `.par_iter()` on slices (and anything that derefs to
/// a slice, e.g. `Vec`).
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Apply `f` to every item in parallel, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParMapped<R>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 {
            return ParMapped {
                items: self.items.iter().map(f).collect(),
            };
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&self.items[i]);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        });
        ParMapped {
            items: slots
                .into_iter()
                .map(|m| m.into_inner().unwrap().expect("parallel map slot unfilled"))
                .collect(),
        }
    }
}

/// The (already computed) results of a parallel map.
pub struct ParMapped<R> {
    items: Vec<R>,
}

impl<R> ParMapped<R> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..500).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let xs: Vec<u32> = (0..256).collect();
        let _: Vec<()> = xs
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Hold each item briefly so every worker gets to claim some.
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        assert!(distinct >= 1);
        if std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            > 1
        {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }
}
