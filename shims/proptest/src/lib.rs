//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))]
//!   #[test] fn name(x in lo..hi, ...) { ... } }`
//! * integer and float [`Range`]/[`RangeInclusive`] strategies,
//! * tuples of strategies and [`collection::vec`] for sequences,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Sampling is deterministic: the RNG is seeded from the test name,
//! so failures reproduce without a persistence file. There is no
//! shrinking — the case index and the assert message locate failures.
//!
//! That gap is deliberate. Real proptest shrinks by walking a value's
//! strategy tree ("try a smaller integer"), which works for the
//! scalar inputs these macros generate but is useless for the one
//! consumer that genuinely needs minimization: the differential
//! harness in `crates/conformance`, whose test inputs are whole IR
//! *programs*. Informative reductions there are structural — delete a
//! statement, unwrap a data region, pin a loop to one trip — so that
//! crate carries its own greedy delta-debugger (`conformance::shrink`)
//! instead of routing programs through a value-shrinking API that
//! cannot express those edits.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-block configuration; only `cases` is meaningful here.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 stream seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    type Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample_value(&self, rng: &mut TestRng) -> f32 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (self.start as f64 + u * (self.end as f64 - self.start as f64)) as f32
    }
}

/// Tuples of strategies sample componentwise, left to right.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3));

/// Sequence strategies, mirroring proptest's `collection` module.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy behind [`vec`]: a length drawn from `len`, then
    /// that many independent draws from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample_value(rng);
            (0..n).map(|_| self.elem.sample_value(rng)).collect()
        }
    }
}

/// Explicit value lists are occasionally handy as strategies.
impl<T: Clone> Strategy for Vec<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.is_empty(), "empty strategy vec");
        self[(rng.next_u64() as usize) % self.len()].clone()
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}\n  inputs: {}\n  {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            format!(
                                concat!($(stringify!($arg), " = {:?}  ",)*),
                                $($arg),*
                            ),
                            msg,
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), left
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..10,
            b in -4i64..4,
            c in 1u32..=5,
            f in -1.5f64..1.5,
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-4..4).contains(&b));
            prop_assert!((1..=5).contains(&c));
            prop_assert!((-1.5..1.5).contains(&f), "f out of range: {f}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (0u8..4, 10u32..20),
            seq in crate::collection::vec((0u8..4, 0i16..3), 1..9),
        ) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert!((1..9).contains(&seq.len()));
            prop_assert!(seq.iter().all(|(a, b)| *a < 4 && (0..3).contains(b)));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
