//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — a seeded
//! [`rngs::StdRng`] built through [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges — on top of a
//! splitmix64 generator. The value streams differ from crates.io
//! `rand`, but every consumer in the repo only relies on determinism
//! per seed, never on specific values.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a 64-bit output per step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng::gen_range`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform value in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (self.start as f64 + u * (self.end as f64 - self.start as f64)) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator under the familiar name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate tiny seeds.
            StdRng {
                state: seed ^ 0x5bf0_3635_d1f8_4d4d,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let f: f32 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_range_hits_both_halves() {
        let mut r = StdRng::seed_from_u64(1);
        let vals: Vec<f64> = (0..64).map(|_| r.gen_range(0.0f64..1.0)).collect();
        assert!(vals.iter().any(|v| *v < 0.5));
        assert!(vals.iter().any(|v| *v >= 0.5));
    }
}
