//! Offline stand-in for the `serde` facade.
//!
//! The repository uses serde exclusively for `#[derive(Serialize,
//! Deserialize)]` markers on plain data types; no code serializes
//! anything (there is no `serde_json` call site and no `T: Serialize`
//! bound). This shim keeps those derive attributes compiling without
//! network access by re-exporting no-op derive macros, plus empty
//! marker traits under the usual names so `impl` blocks would still
//! resolve if anyone writes one.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the no-op derive does not implement it (nothing in
/// the workspace requires the implementation).
pub trait SerializeMarker {}

/// Marker trait counterpart for deserialization.
pub trait DeserializeMarker {}
